//! Request-scoped structured tracing with a Chrome-trace-event exporter.
//!
//! A [`TraceId`] is stamped once at admission (`run_direct`, or the serve
//! front door when the caller supplied `X-Askit-Trace-Id`) and rides the
//! request's *service advice* — never its identity — through every layer.
//! Instrumented code opens [`SpanGuard`]s around phases (gate wait, cache
//! probe, wire attempt, …) and fires [`EventBuilder`] instants at state
//! transitions (breaker trips, AIMD width moves, hedge wins).
//!
//! Parentage is structural: each thread keeps a stack of open span ids,
//! so a span's parent is simply whatever span was open on that thread
//! when it began. Spans that hop threads (pool workers, hedge racers)
//! start a fresh stack there — the trace id still ties them together,
//! and Chrome's timeline groups them by thread track.
//!
//! Everything is **off until a sink is installed**: the disabled fast
//! path is a single relaxed atomic load, so leaving instrumentation in
//! production code is free. [`TraceSink::install`] turns collection on;
//! sampling (`sample_one_in`) keeps high-throughput runs cheap by
//! recording every Nth trace (trace ids are sequential from a random
//! seed, so modulo sampling is exact).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::clock::{ObsClock, SystemClock};

/// A request-scoped trace identity.
///
/// Stamped once at admission and carried as service advice: two requests
/// that differ only in trace id are the *same request* to the cache, the
/// coalescer, and the speculation ledger. Displayed as 16 lowercase hex
/// digits (the wire form of `X-Askit-Trace-Id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

/// Sequential id allocator, seeded once per process from wall-clock and
/// process entropy so concurrent processes do not collide in merged
/// trace files.
static NEXT_TRACE: OnceLock<AtomicU64> = OnceLock::new();

impl TraceId {
    /// Allocates a fresh process-unique id. Ids are sequential from a
    /// random per-process seed — uniqueness within the process is
    /// guaranteed, and `id % n` sampling selects exactly one in `n`.
    pub fn generate() -> TraceId {
        let next = NEXT_TRACE.get_or_init(|| {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0);
            let seed = crate::fnv1a(&nanos.to_le_bytes()) ^ (u64::from(std::process::id()) << 32);
            AtomicU64::new(seed)
        });
        let raw = next.fetch_add(1, Ordering::Relaxed);
        TraceId(if raw == 0 { 1 } else { raw })
    }

    /// Wraps a raw id (tests; propagation from a parsed header).
    pub fn from_raw(raw: u64) -> Option<TraceId> {
        (raw != 0).then_some(TraceId(raw))
    }

    /// The raw 64-bit value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Parses the 16-hex-digit wire form (as sent in
    /// `X-Askit-Trace-Id`). Rejects empty, oversized, non-hex, and
    /// all-zero inputs.
    pub fn parse(text: &str) -> Option<TraceId> {
        let text = text.trim();
        if text.is_empty() || text.len() > 16 {
            return None;
        }
        u64::from_str_radix(text, 16)
            .ok()
            .and_then(TraceId::from_raw)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One recorded trace event: a completed span or an instant.
///
/// Timestamps are microseconds since the sink's epoch (its moment of
/// construction), which is exactly the `ts` Chrome trace events want.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A completed duration span.
    Span {
        /// Owning trace (`None` never occurs for spans — untraced spans
        /// are simply not recorded — but the field keeps the two
        /// variants symmetric for consumers).
        trace: Option<TraceId>,
        /// Span name (`wire_attempt`, `gate_wait`, …).
        name: &'static str,
        /// Sink-relative start, microseconds.
        start_us: u64,
        /// Duration, microseconds.
        dur_us: u64,
        /// Small per-process thread ordinal (Chrome `tid`).
        tid: u64,
        /// This span's id (process-unique, for parent links).
        span_id: u64,
        /// The span open on this thread when this one began; 0 = root.
        parent_id: u64,
        /// Key/value annotations (endpoint, retry ordinal, hit/miss…).
        args: Vec<(&'static str, String)>,
    },
    /// An instant event (state transition).
    Instant {
        /// Owning trace; `None` marks a process-scope transition such as
        /// a breaker trip or an AIMD width move.
        trace: Option<TraceId>,
        /// Event name (`breaker_open`, `hedge_win`, …).
        name: &'static str,
        /// Sink-relative timestamp, microseconds.
        ts_us: u64,
        /// Small per-process thread ordinal.
        tid: u64,
        /// Key/value annotations.
        args: Vec<(&'static str, String)>,
    },
}

impl TraceEvent {
    /// The event name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Span { name, .. } | TraceEvent::Instant { name, .. } => name,
        }
    }

    /// The owning trace, if any.
    pub fn trace(&self) -> Option<TraceId> {
        match self {
            TraceEvent::Span { trace, .. } | TraceEvent::Instant { trace, .. } => *trace,
        }
    }

    /// Looks up an annotation by key.
    pub fn arg(&self, key: &str) -> Option<&str> {
        let args = match self {
            TraceEvent::Span { args, .. } | TraceEvent::Instant { args, .. } => args,
        };
        args.iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Collects trace events and renders them as Chrome trace JSON.
///
/// Install one globally with [`TraceSink::install`]; until then every
/// span/event call is a no-op costing one atomic load. The sink buffers
/// in memory — traces here are bounded CI runs and operator debugging
/// sessions, not an unbounded firehose (sampling caps the rate for the
/// latter).
pub struct TraceSink {
    clock: Arc<dyn ObsClock>,
    epoch: Instant,
    sample_one_in: u64,
    events: Mutex<Vec<TraceEvent>>,
    next_span: AtomicU64,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("sample_one_in", &self.sample_one_in)
            .field("events", &crate::lock(&self.events).len())
            .finish()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// A sink on the system clock recording every trace.
    pub fn new() -> TraceSink {
        TraceSink::with_clock(Arc::new(SystemClock))
    }

    /// A sink on an injected clock (deterministic tests).
    pub fn with_clock(clock: Arc<dyn ObsClock>) -> TraceSink {
        let epoch = clock.now();
        TraceSink {
            clock,
            epoch,
            sample_one_in: 1,
            events: Mutex::new(Vec::new()),
            next_span: AtomicU64::new(1),
        }
    }

    /// Records only traces whose id is divisible by `n` (exactly one in
    /// `n`, since ids are sequential). Process-scope instants are always
    /// recorded. `n == 0` is treated as 1.
    pub fn with_sample_one_in(mut self, n: u64) -> TraceSink {
        self.sample_one_in = n.max(1);
        self
    }

    /// Whether this sink records events for `trace`.
    pub fn samples(&self, trace: TraceId) -> bool {
        trace.0.is_multiple_of(self.sample_one_in)
    }

    /// Installs the sink as the process-global collector, replacing any
    /// previous one. Returns the installed handle for later inspection.
    pub fn install(self) -> Arc<TraceSink> {
        let sink = Arc::new(self);
        *global_slot().write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&sink));
        SAMPLE_REJECT_MASK.store(sample_reject_mask(sink.sample_one_in), Ordering::Release);
        ENABLED.store(true, Ordering::Release);
        sink
    }

    /// Microseconds since the sink's epoch, by its own clock.
    fn now_us(&self) -> u64 {
        self.clock
            .now()
            .saturating_duration_since(self.epoch)
            .as_micros() as u64
    }

    fn push(&self, event: TraceEvent) {
        crate::lock(&self.events).push(event);
    }

    /// A snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        crate::lock(&self.events).clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        crate::lock(&self.events).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the buffer as Chrome trace JSON (the
    /// `{"traceEvents": [...]}` object format), loadable in Perfetto or
    /// `chrome://tracing`. Spans become `ph: "X"` complete events;
    /// instants become `ph: "i"`.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 128 + 64);
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_event(&mut out, event);
        }
        out.push_str("]}");
        out
    }

    /// Writes the Chrome trace JSON to `path`.
    pub fn write_chrome_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

fn render_event(out: &mut String, event: &TraceEvent) {
    use std::fmt::Write as _;
    match event {
        TraceEvent::Span {
            trace,
            name,
            start_us,
            dur_us,
            tid,
            span_id,
            parent_id,
            args,
        } => {
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"cat\": \"askit\", \"ph\": \"X\", \
                 \"ts\": {start_us}, \"dur\": {dur_us}, \"pid\": 1, \"tid\": {tid}, \"args\": {{",
                escape_json(name)
            );
            let _ = write!(out, "\"span\": \"{span_id}\", \"parent\": \"{parent_id}\"");
            if let Some(trace) = trace {
                let _ = write!(out, ", \"trace\": \"{trace}\"");
            }
            for (key, value) in args {
                let _ = write!(
                    out,
                    ", \"{}\": \"{}\"",
                    escape_json(key),
                    escape_json(value)
                );
            }
            out.push_str("}}");
        }
        TraceEvent::Instant {
            trace,
            name,
            ts_us,
            tid,
            args,
        } => {
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"cat\": \"askit\", \"ph\": \"i\", \"s\": \"p\", \
                 \"ts\": {ts_us}, \"pid\": 1, \"tid\": {tid}, \"args\": {{",
                escape_json(name)
            );
            let mut first = true;
            if let Some(trace) = trace {
                let _ = write!(out, "\"trace\": \"{trace}\"");
                first = false;
            }
            for (key, value) in args {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "\"{}\": \"{}\"", escape_json(key), escape_json(value));
            }
            out.push_str("}}");
        }
    }
}

fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Fast-path switch: false ⇒ span()/event() return disabled guards after
/// one relaxed load, touching no locks.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Fast-reject mask derived from the installed sink's `sample_one_in`:
/// the largest `2^k - 1` such that `2^k` divides it. `id % n == 0`
/// requires `id & mask == 0`, so a nonzero AND rejects a sampled-out
/// trace with two atomic loads — no division, no slot lock. Traces that
/// pass still go through [`TraceSink::samples`] for the exact check
/// (the mask is the whole story only when `n` is a power of two).
static SAMPLE_REJECT_MASK: AtomicU64 = AtomicU64::new(0);

fn sample_reject_mask(sample_one_in: u64) -> u64 {
    (1u64 << sample_one_in.max(1).trailing_zeros()) - 1
}

fn global_slot() -> &'static RwLock<Option<Arc<TraceSink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<TraceSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// The installed sink, if any.
pub fn installed() -> Option<Arc<TraceSink>> {
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    global_slot()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Removes the global sink; collection stops immediately. (Primarily for
/// tests — production sinks live for the process.)
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    SAMPLE_REJECT_MASK.store(0, Ordering::Release);
    *global_slot().write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Small stable per-thread ordinal for Chrome `tid` fields.
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|tid| *tid)
}

thread_local! {
    /// Open span ids on this thread, innermost last. RAII guards keep it
    /// strictly LIFO.
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };

    /// A trace id handed down from an outer layer (e.g. the serve front
    /// door propagating an inbound `X-Askit-Trace-Id`) for admission
    /// points on this thread to adopt instead of generating fresh.
    static PROPAGATED: std::cell::Cell<Option<TraceId>> = const { std::cell::Cell::new(None) };
}

/// Installs `id` as the thread's propagated trace id for the guard's
/// lifetime (the previous value is restored on drop). An admission point
/// that stamps trace ids (`run_direct` is the one in this workspace)
/// adopts [`propagated()`] when present, so a front end can thread an
/// inbound id through code it does not own.
pub fn propagate(id: Option<TraceId>) -> PropagationGuard {
    let previous = PROPAGATED.with(|cell| cell.replace(id));
    PropagationGuard { previous }
}

/// The thread's propagated trace id, if an enclosing [`propagate`] guard
/// installed one.
pub fn propagated() -> Option<TraceId> {
    PROPAGATED.with(std::cell::Cell::get)
}

/// Restores the previously propagated trace id on drop. See [`propagate`].
#[must_use = "dropping the guard immediately un-propagates the id"]
pub struct PropagationGuard {
    previous: Option<TraceId>,
}

impl Drop for PropagationGuard {
    fn drop(&mut self) {
        PROPAGATED.with(|cell| cell.set(self.previous));
    }
}

/// Opens a span. Disabled (a free no-op) unless a sink is installed,
/// `trace` is `Some`, and the sink samples that trace. The span records
/// itself when the guard drops; annotate it with [`SpanGuard::arg`] /
/// [`SpanGuard::set_arg`].
pub fn span(trace: Option<TraceId>, name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { active: None };
    }
    let Some(trace) = trace else {
        return SpanGuard { active: None };
    };
    if trace.0 & SAMPLE_REJECT_MASK.load(Ordering::Relaxed) != 0 {
        return SpanGuard { active: None };
    }
    let Some(sink) = installed() else {
        return SpanGuard { active: None };
    };
    if !sink.samples(trace) {
        return SpanGuard { active: None };
    }
    let span_id = sink.next_span.fetch_add(1, Ordering::Relaxed);
    let parent_id = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(span_id);
        parent
    });
    let start_us = sink.now_us();
    SpanGuard {
        active: Some(Box::new(ActiveSpan {
            sink,
            trace,
            name,
            start_us,
            span_id,
            parent_id,
            args: Vec::new(),
        })),
    }
}

struct ActiveSpan {
    sink: Arc<TraceSink>,
    trace: TraceId,
    name: &'static str,
    start_us: u64,
    span_id: u64,
    parent_id: u64,
    args: Vec<(&'static str, String)>,
}

/// RAII span handle: the span covers the guard's lifetime and records on
/// drop. A disabled guard (tracing off / unsampled) is a no-op whose
/// annotation methods discard their input.
#[must_use = "a span covers the guard's lifetime; dropping it immediately records an empty span"]
pub struct SpanGuard {
    active: Option<Box<ActiveSpan>>,
}

impl SpanGuard {
    /// Builder-style annotation: `span(...).arg("endpoint", base)`.
    pub fn arg(mut self, key: &'static str, value: impl fmt::Display) -> SpanGuard {
        self.set_arg(key, value);
        self
    }

    /// Annotates after creation (e.g. recording hit/miss once known).
    pub fn set_arg(&mut self, key: &'static str, value: impl fmt::Display) {
        if let Some(active) = self.active.as_mut() {
            active.args.push((key, value.to_string()));
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.last() == Some(&active.span_id) {
                stack.pop();
            } else {
                // Out-of-order drop (moved guard): excise rather than
                // corrupt the stack for sibling spans.
                stack.retain(|id| *id != active.span_id);
            }
        });
        let end_us = active.sink.now_us();
        let event = TraceEvent::Span {
            trace: Some(active.trace),
            name: active.name,
            start_us: active.start_us,
            dur_us: end_us.saturating_sub(active.start_us),
            tid: current_tid(),
            span_id: active.span_id,
            parent_id: active.parent_id,
            args: active.args,
        };
        active.sink.push(event);
    }
}

/// Builds an instant event; records on drop. Disabled when no sink is
/// installed, or when `trace` is `Some` but unsampled. `trace: None`
/// events are process-scope and always recorded while a sink is up.
pub fn event(trace: Option<TraceId>, name: &'static str) -> EventBuilder {
    if !ENABLED.load(Ordering::Relaxed) {
        return EventBuilder { active: None };
    }
    if let Some(trace) = trace {
        if trace.0 & SAMPLE_REJECT_MASK.load(Ordering::Relaxed) != 0 {
            return EventBuilder { active: None };
        }
    }
    let Some(sink) = installed() else {
        return EventBuilder { active: None };
    };
    if let Some(trace) = trace {
        if !sink.samples(trace) {
            return EventBuilder { active: None };
        }
    }
    EventBuilder {
        active: Some(Box::new(ActiveEvent {
            sink,
            trace,
            name,
            args: Vec::new(),
        })),
    }
}

struct ActiveEvent {
    sink: Arc<TraceSink>,
    trace: Option<TraceId>,
    name: &'static str,
    args: Vec<(&'static str, String)>,
}

/// Pending instant event; annotate with [`EventBuilder::arg`] and let it
/// drop to record.
pub struct EventBuilder {
    active: Option<Box<ActiveEvent>>,
}

impl EventBuilder {
    /// Builder-style annotation.
    pub fn arg(mut self, key: &'static str, value: impl fmt::Display) -> EventBuilder {
        if let Some(active) = self.active.as_mut() {
            active.args.push((key, value.to_string()));
        }
        self
    }
}

impl Drop for EventBuilder {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let event = TraceEvent::Instant {
            trace: active.trace,
            name: active.name,
            ts_us: active.sink.now_us(),
            tid: current_tid(),
            args: active.args,
        };
        active.sink.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::time::Duration;

    /// Global-sink tests share process state; serialize them.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn trace_id_round_trips_through_wire_form() {
        let id = TraceId::generate();
        assert_eq!(TraceId::parse(&id.to_string()), Some(id));
        assert_eq!(
            TraceId::parse("00000000deadbeef"),
            TraceId::from_raw(0xdead_beef)
        );
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("0000000000000000"), None, "zero is reserved");
        assert_eq!(TraceId::parse("not-hex"), None);
        assert_eq!(TraceId::parse("11112222333344445"), None, "over 16 digits");
    }

    #[test]
    fn trace_ids_are_unique_and_sequential() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a, b);
    }

    #[test]
    fn spans_nest_by_scope_and_time_deterministically() {
        let _guard = test_lock();
        let clock = Arc::new(ManualClock::new());
        let sink = TraceSink::with_clock(Arc::<ManualClock>::clone(&clock)).install();
        let trace = TraceId::generate();
        {
            let _outer = span(Some(trace), "outer").arg("model", "gpt4");
            clock.advance(Duration::from_micros(100));
            {
                let mut inner = span(Some(trace), "inner");
                inner.set_arg("hit", true);
                clock.advance(Duration::from_micros(40));
            }
            clock.advance(Duration::from_micros(10));
        }
        event(None, "breaker_open").arg("endpoint", "http://primary");
        uninstall();

        let events = sink.events();
        assert_eq!(events.len(), 3);
        // Inner drops first.
        let TraceEvent::Span {
            name: inner_name,
            start_us,
            dur_us,
            parent_id,
            ..
        } = &events[0]
        else {
            panic!("expected span, got {:?}", events[0]);
        };
        assert_eq!(*inner_name, "inner");
        assert_eq!((*start_us, *dur_us), (100, 40));
        let TraceEvent::Span {
            name: outer_name,
            dur_us: outer_dur,
            span_id: outer_id,
            parent_id: outer_parent,
            ..
        } = &events[1]
        else {
            panic!("expected span, got {:?}", events[1]);
        };
        assert_eq!(*outer_name, "outer");
        assert_eq!(*outer_dur, 150);
        assert_eq!(*outer_parent, 0, "outer is a root span");
        assert_eq!(parent_id, outer_id, "inner's parent is outer");
        assert_eq!(events[0].arg("hit"), Some("true"));
        assert_eq!(events[1].arg("model"), Some("gpt4"));
        assert_eq!(events[2].name(), "breaker_open");
        assert_eq!(events[2].trace(), None, "process-scope instant");
    }

    #[test]
    fn disabled_paths_record_nothing() {
        let _guard = test_lock();
        uninstall();
        let trace = TraceId::generate();
        {
            let span = span(Some(trace), "ghost");
            assert!(!span.is_recording());
        }
        event(Some(trace), "ghost_event").arg("k", "v");
        // Sink installed but the request is untraced:
        let sink = TraceSink::new().install();
        {
            let span = span(None, "untraced");
            assert!(!span.is_recording());
        }
        uninstall();
        assert!(sink.is_empty());
    }

    #[test]
    fn sampling_records_exactly_divisible_traces() {
        let _guard = test_lock();
        let sink = TraceSink::new().with_sample_one_in(4);
        let sampled = TraceId::from_raw(8).unwrap();
        let skipped = TraceId::from_raw(9).unwrap();
        assert!(sink.samples(sampled));
        assert!(!sink.samples(skipped));
        let sink = sink.install();
        drop(span(Some(sampled), "kept"));
        drop(span(Some(skipped), "dropped"));
        uninstall();
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name(), "kept");
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let _guard = test_lock();
        let clock = Arc::new(ManualClock::new());
        let sink = TraceSink::with_clock(Arc::<ManualClock>::clone(&clock)).install();
        let trace = TraceId::from_raw(0xabc).unwrap();
        {
            let _span = span(Some(trace), "wire_attempt")
                .arg("endpoint", "http://127.0.0.1:1")
                .arg("quote", "say \"hi\"\n");
            clock.advance(Duration::from_micros(7));
        }
        event(Some(trace), "hedge_win").arg("endpoint", "http://127.0.0.1:2");
        uninstall();
        let json = sink.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 7"));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"trace\": \"0000000000000abc\""));
        assert!(
            json.contains("say \\\"hi\\\"\\n"),
            "strings are escaped: {json}"
        );
        // No raw control characters survive.
        assert!(!json.bytes().any(|b| b < 0x20));
    }
}
