//! Server-side request coalescing.
//!
//! The HTTP backend already coalesces identical in-flight *completions* on
//! the client side; this is the same leader/follower pattern one layer up,
//! at the service boundary. When two users POST the same function with the
//! same arguments (and the same option overrides) concurrently, the first
//! becomes the **leader** and submits one engine call; everyone else is a
//! **follower** parked on the leader's [`Flight`] until the outcome is
//! published. One prompt, one cache entry, one scheduler admission — no
//! matter how many clients pile onto a hot query at once.
//!
//! Flights are keyed by an FNV-1a hash over route name, canonical argument
//! JSON (post-coercion, declared parameter order — so client key order
//! does not split flights) and the option overrides. Only *concurrent*
//! duplicates share: the leader removes its flight before waking
//! followers, so a later identical request starts a fresh flight (which
//! the completion cache then answers without a model round trip).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use askit_core::runtime::DirectOutcome;

use crate::lock;

/// An error outcome a flight can publish: the HTTP status the leader would
/// answer with, plus a message for the body.
#[derive(Debug, Clone)]
pub struct CallError {
    /// HTTP status code (e.g. 500 for an engine failure).
    pub status: u16,
    /// Human-readable description for the `{"error": …}` body.
    pub message: String,
}

/// What a flight resolves to: one shared outcome or one shared error.
pub type FlightResult = Result<Arc<DirectOutcome>, CallError>;

/// One in-flight engine submission, shared between its leader and any
/// followers that arrived while it was still running.
pub struct Flight {
    slot: Mutex<Option<FlightResult>>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, result: FlightResult) {
        *lock(&self.slot) = Some(result);
        self.ready.notify_all();
    }

    /// Blocks until the outcome is published.
    pub fn wait(&self) -> FlightResult {
        let mut slot = lock(&self.slot);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self
                .ready
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Waits up to `timeout` for the outcome; `None` means still running
    /// (the SSE path emits a heartbeat and waits again).
    pub fn wait_for(&self, timeout: Duration) -> Option<FlightResult> {
        let slot = lock(&self.slot);
        if let Some(result) = slot.as_ref() {
            return Some(result.clone());
        }
        let (slot, _timed_out) = self
            .ready
            .wait_timeout(slot, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        slot.as_ref().cloned()
    }

    /// Whether the outcome has been published (non-blocking).
    pub fn is_done(&self) -> bool {
        lock(&self.slot).is_some()
    }
}

/// How [`FlightTable::admit`] classified a request.
pub enum Admission {
    /// First with this key: caller must run the call and
    /// [`FlightTable::publish`] the outcome (see [`PublishGuard`]).
    Leader(Arc<Flight>),
    /// Identical request already in flight: caller just waits on it.
    Follower(Arc<Flight>),
}

/// The table of in-flight submissions, plus the counters `/stats` exposes.
#[derive(Default)]
pub struct FlightTable {
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
    leaders: AtomicU64,
    followers: AtomicU64,
}

impl FlightTable {
    /// An empty table.
    pub fn new() -> Self {
        FlightTable::default()
    }

    /// Joins or starts the flight for `key`.
    pub fn admit(&self, key: u64) -> Admission {
        let mut flights = lock(&self.flights);
        if let Some(flight) = flights.get(&key) {
            self.followers.fetch_add(1, Ordering::Relaxed);
            return Admission::Follower(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        flights.insert(key, Arc::clone(&flight));
        self.leaders.fetch_add(1, Ordering::Relaxed);
        Admission::Leader(flight)
    }

    /// Publishes the leader's result: removes the key (so later identical
    /// requests start fresh flights) *then* wakes every waiter.
    pub fn publish(&self, key: u64, flight: &Flight, result: FlightResult) {
        lock(&self.flights).remove(&key);
        flight.publish(result);
    }

    /// Engine submissions started (leaders admitted).
    pub fn leaders(&self) -> u64 {
        self.leaders.load(Ordering::Relaxed)
    }

    /// Requests answered by piggybacking on another's flight.
    pub fn followers(&self) -> u64 {
        self.followers.load(Ordering::Relaxed)
    }

    /// Flights currently in the table (running submissions).
    pub fn in_flight(&self) -> usize {
        lock(&self.flights).len()
    }
}

/// Drop guard ensuring a leader always publishes. The worker job holds one
/// while the engine call runs; if the job is discarded without running
/// (pool teardown) or unwinds, the guard's `Drop` publishes an error so
/// followers wake with a `500` instead of hanging forever.
pub struct PublishGuard {
    table: Arc<FlightTable>,
    flight: Arc<Flight>,
    key: u64,
    done: bool,
}

impl PublishGuard {
    /// Arms a guard for the flight the caller just became leader of.
    pub fn new(table: Arc<FlightTable>, flight: Arc<Flight>, key: u64) -> Self {
        PublishGuard {
            table,
            flight,
            key,
            done: false,
        }
    }

    /// Publishes the real result and disarms the guard.
    pub fn publish(mut self, result: FlightResult) {
        self.table.publish(self.key, &self.flight, result);
        self.done = true;
    }
}

impl Drop for PublishGuard {
    fn drop(&mut self) {
        if !self.done {
            self.table.publish(
                self.key,
                &self.flight,
                Err(CallError {
                    status: 500,
                    message: "request aborted before completion".to_owned(),
                }),
            );
        }
    }
}

/// FNV-1a over `bytes` — the same deterministic fingerprint the rest of
/// the workspace keys caches with.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use askit_json::Json;

    fn outcome(n: i64) -> Arc<DirectOutcome> {
        Arc::new(DirectOutcome {
            value: Json::Int(n),
            reason: None,
            attempts: 1,
            usage: Default::default(),
            latency: Duration::ZERO,
            model: Default::default(),
            escalations: 0,
        })
    }

    #[test]
    fn concurrent_duplicates_share_one_flight() {
        let table = Arc::new(FlightTable::new());
        let Admission::Leader(leader) = table.admit(7) else {
            panic!("first admit must lead");
        };
        let Admission::Follower(follower) = table.admit(7) else {
            panic!("second admit must follow");
        };
        assert!(Arc::ptr_eq(&leader, &follower));
        assert_eq!(table.in_flight(), 1);

        let waiter = {
            let follower = Arc::clone(&follower);
            std::thread::spawn(move || follower.wait())
        };
        table.publish(7, &leader, Ok(outcome(42)));
        assert_eq!(waiter.join().unwrap().unwrap().value, Json::Int(42));
        assert_eq!((table.leaders(), table.followers()), (1, 1));

        // The key was retired: the next identical request leads anew.
        assert!(matches!(table.admit(7), Admission::Leader(_)));
        assert_eq!(table.leaders(), 2);
    }

    #[test]
    fn wait_for_times_out_then_delivers() {
        let table = Arc::new(FlightTable::new());
        let Admission::Leader(flight) = table.admit(1) else {
            panic!("must lead");
        };
        assert!(flight.wait_for(Duration::from_millis(5)).is_none());
        assert!(!flight.is_done());
        table.publish(1, &flight, Ok(outcome(6)));
        let delivered = flight.wait_for(Duration::from_millis(5)).unwrap();
        assert_eq!(delivered.unwrap().value, Json::Int(6));
        assert!(flight.is_done());
    }

    #[test]
    fn dropped_guard_publishes_an_error() {
        let table = Arc::new(FlightTable::new());
        let Admission::Leader(flight) = table.admit(3) else {
            panic!("must lead");
        };
        let guard = PublishGuard::new(Arc::clone(&table), Arc::clone(&flight), 3);
        drop(guard); // job discarded without running
        let error = flight.wait().unwrap_err();
        assert_eq!(error.status, 500);
        assert_eq!(table.in_flight(), 0);
    }

    #[test]
    fn fnv_distinguishes_routes_and_args() {
        assert_ne!(fnv1a(b"add\0{\"x\":1}"), fnv1a(b"add\0{\"x\":2}"));
        assert_ne!(fnv1a(b"add\0{\"x\":1}"), fnv1a(b"mul\0{\"x\":1}"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
