//! # askit-serve
//!
//! An HTTP/SSE front-end that serves registered AskIt functions as a
//! typed network service — the paper's `define`d task functions, reachable
//! by anything that can speak HTTP, with the whole engine (completion
//! cache, scheduler admission gates, tiered escalation) shared behind one
//! process.
//!
//! Hand-rolled HTTP/1.1 over [`std::net::TcpListener`], like the rest of
//! the workspace: zero new dependencies, and both wire directions reuse
//! `askit-llm-http`'s shared implementations (response writers, SSE
//! framing, client-side readers), so the serving format and the consuming
//! parser cannot drift apart.
//!
//! ## Routes
//!
//! | Route | Answers |
//! |---|---|
//! | `POST /call/{name}` | run the function; JSON result, or SSE progress stream with `Accept: text/event-stream` |
//! | `GET /functions` | registered signatures (name, typed params, return type) |
//! | `GET /healthz` | liveness: `200` while the process serves, even mid-drain |
//! | `GET /readyz` | readiness: `503` + reasons when draining or every backend endpoint's circuit breaker is open |
//! | `GET /stats` | server counters, coalescing, and engine cache/scheduler stats |
//!
//! Call bodies are the bare argument object (`{"x": 1, "y": 2}`), or an
//! envelope `{"args": {…}, "options": {"model": "gpt4", "cache":
//! "bypass"}}` layering per-call overrides — exactly [`QueryBuilder`]'s
//! knobs, over the wire. Arguments are validated against the function's
//! declared parameter types *before* any prompt is rendered: a `422`
//! names the offending argument, the same type-language contract the
//! engine applies to model outputs, applied to callers.
//!
//! Identical concurrent requests **coalesce** server-side: one engine
//! submission, one cache entry, every caller answered from the shared
//! outcome (see [`coalesce`]). Connections are budgeted — past
//! [`ServeConfig::max_connections`], arrivals get `503` + `Retry-After`,
//! which the `askit-llm-http` client backoff already honors. Shutdown
//! drains: accepted requests finish, idle keep-alive connections close.
//!
//! ```no_run
//! use std::sync::Arc;
//! use askit_core::{Askit, FunctionRegistry, ServedTask};
//! use askit_llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
//! use askit_serve::{ServeConfig, Server};
//!
//! let askit = Arc::new(Askit::new(MockLlm::new(
//!     MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
//!     Oracle::standard(),
//! )));
//! let registry = Arc::new(FunctionRegistry::new());
//! registry.register(ServedTask::new(
//!     Arc::clone(&askit),
//!     "add",
//!     askit_types::int(),
//!     "What is {{x}} plus {{y}}?",
//! )?);
//! let server = Server::start(registry, askit, ServeConfig::default())?;
//! println!("serving on {}", server.base_url());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`QueryBuilder`]: askit_core::QueryBuilder

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod coalesce;
pub mod http;
pub mod server;

pub use client::{decode_stream, ClientResponse, ServeClient};
pub use coalesce::{CallError, FlightTable};
pub use http::Request;
pub use server::{EngineStatus, ServeConfig, Server};

/// Locks a mutex, riding through poisoning: a panicking holder is a bug in
/// *that* request's path, not a reason to wedge every other connection.
pub(crate) fn lock<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
