//! The serving front-end: accept loop, routing, and the call path.
//!
//! Architecture: one OS thread per live connection does the socket I/O
//! (parse requests, write responses — cheap, mostly blocked), while the
//! **engine calls** run on a bounded [`WorkerPool`] — the same pool type
//! the engine fans batches out on — so the number of concurrent model
//! submissions is a server knob independent of how many sockets are open.
//! Between the two sits the [`FlightTable`]: identical concurrent calls
//! collapse into one pool job whose outcome every waiter shares.
//!
//! The connection budget is enforced at accept time: past
//! [`ServeConfig::max_connections`] live connections, new arrivals get an
//! immediate `503` with `Retry-After` and are closed — the client backoff
//! in `askit-llm-http` already honors exactly that header. Shutdown is a
//! **drain**: the listener stops accepting, idle keep-alive connections
//! close at the next poll quantum, in-flight requests (including
//! half-received ones) complete and are answered before their threads
//! exit, and only then are the workers joined.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use askit_core::registry::{FunctionRegistry, ServableFunction};
use askit_core::{Askit, CachePolicy, ModelChoice, QueryOptions};
use askit_exec::{resolve_workers, WorkerPool};
use askit_json::{Json, Map};
use askit_llm::LanguageModel;
use askit_llm_http::sse::{encode_data, SseEvent};
use askit_llm_http::wire::{
    write_chunk, write_json_response, write_last_chunk, write_response_head,
    write_sse_response_head,
};
use askit_obs::TraceId;

use crate::coalesce::{Admission, CallError, FlightResult, FlightTable, PublishGuard};
use crate::http::{poll_quantum, read_request, ReadOutcome, Request};

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` by default — loopback, ephemeral
    /// port, read back via [`Server::addr`]).
    pub bind: String,
    /// Worker threads executing engine calls; `0` resolves like the
    /// engine's own width (`ASKIT_WORKERS`, then available parallelism).
    pub workers: usize,
    /// Live-connection budget; arrivals past it are answered `503` and
    /// closed immediately.
    pub max_connections: usize,
    /// The `Retry-After` hint (seconds) on budget rejections.
    pub retry_after_secs: u64,
    /// Largest accepted request body; larger declared bodies answer `413`.
    pub max_body_bytes: usize,
    /// Cadence of `running` heartbeat events on SSE streams.
    pub heartbeat: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_owned(),
            workers: 0,
            max_connections: 64,
            retry_after_secs: 1,
            max_body_bytes: 1024 * 1024,
            heartbeat: Duration::from_millis(25),
        }
    }
}

impl ServeConfig {
    /// Sets the bind address.
    #[must_use]
    pub fn with_bind(mut self, bind: impl Into<String>) -> Self {
        self.bind = bind.into();
        self
    }

    /// Sets the engine-call worker width.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the live-connection budget.
    #[must_use]
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Sets the SSE heartbeat cadence.
    #[must_use]
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat;
        self
    }
}

/// What `/stats` reports about the engine behind the functions. Local
/// trait so the server can stay generic over the backend: [`Askit`]
/// implements it by exposing its completion-cache counters and scheduler
/// widths.
pub trait EngineStatus: Send + Sync {
    /// Engine-side counters as a JSON object.
    fn status_json(&self) -> Json;

    /// Whether the engine can currently make progress, plus a JSON object
    /// explaining why (per-endpoint circuit-breaker states, scheduler
    /// widths). `false` means every known backend endpoint's breaker is
    /// open — no wire attempt can be admitted — and `/readyz` answers
    /// `503`. The default is unconditionally ready, for backends without a
    /// breaker table.
    fn readiness_json(&self) -> (bool, Json) {
        (true, Json::Object(Map::new()))
    }
}

impl<L: LanguageModel + 'static> EngineStatus for Askit<L> {
    fn status_json(&self) -> Json {
        let engine = self.engine();
        let stats = engine.cache_stats();
        let mut cache = Map::new();
        cache.insert("hits", Json::Int(int(stats.hits)));
        cache.insert("misses", Json::Int(int(stats.misses)));
        cache.insert("insertions", Json::Int(int(stats.insertions)));
        cache.insert("evictions", Json::Int(int(stats.evictions)));
        cache.insert("invalidations", Json::Int(int(stats.invalidations)));
        cache.insert("expired", Json::Int(int(stats.expired)));
        cache.insert("entries", Json::Int(int(stats.entries as u64)));
        cache.insert("hit_rate", Json::Float(stats.hit_rate()));
        let mut widths = Map::new();
        for (model, width) in engine.scheduler().widths() {
            widths.insert(model.tag(), Json::Int(int(width as u64)));
        }
        let breakers: Vec<Json> = engine
            .scheduler()
            .breaker_states()
            .iter()
            .map(|state| Json::Str(state.tag().to_owned()))
            .collect();
        let mut scheduler = Map::new();
        scheduler.insert("adaptive", Json::Bool(engine.scheduler().adaptive()));
        scheduler.insert("widths", Json::Object(widths));
        scheduler.insert("endpoint_breakers", Json::Array(breakers));
        scheduler.insert("description", Json::Str(engine.describe_widths()));
        let mut object = Map::new();
        object.insert("model", Json::Str(engine.model().model_name().to_owned()));
        object.insert("workers", Json::Int(int(engine.workers() as u64)));
        object.insert("cache", Json::Object(cache));
        object.insert("scheduler", Json::Object(scheduler));
        Json::Object(object)
    }

    fn readiness_json(&self) -> (bool, Json) {
        let engine = self.engine();
        let scheduler = engine.scheduler();
        let breakers: Vec<Json> = scheduler
            .breaker_states()
            .iter()
            .map(|state| Json::Str(state.tag().to_owned()))
            .collect();
        let all_open = scheduler.all_endpoints_open();
        let mut widths = Map::new();
        for (model, width) in scheduler.widths() {
            widths.insert(model.tag(), Json::Int(int(width as u64)));
        }
        let mut object = Map::new();
        object.insert("endpoint_breakers", Json::Array(breakers));
        object.insert("all_endpoints_open", Json::Bool(all_open));
        object.insert("widths", Json::Object(widths));
        (!all_open, Json::Object(object))
    }
}

fn int(n: u64) -> i64 {
    i64::try_from(n).unwrap_or(i64::MAX)
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    sse_streams: AtomicU64,
}

struct ServerState {
    registry: Arc<FunctionRegistry>,
    status: Arc<dyn EngineStatus>,
    flights: Arc<FlightTable>,
    pool: WorkerPool,
    config: ServeConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    counters: Counters,
    started: Instant,
}

/// A running AskIt function service. Dropping it drains: stops accepting,
/// finishes in-flight requests, joins every thread.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `registry` with `status` answering
    /// `/stats`.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener or spawning the accept thread.
    pub fn start(
        registry: Arc<FunctionRegistry>,
        status: Arc<dyn EngineStatus>,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(config.bind.as_str())?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            registry,
            status,
            flights: Arc::new(FlightTable::new()),
            pool: WorkerPool::new(resolve_workers(config.workers)),
            config,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            counters: Counters::default(),
            started: Instant::now(),
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("askit-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        Ok(Server {
            addr,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://host:port` for clients.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Requests answered so far (all routes, including errors; excludes
    /// budget rejections, which never reach routing).
    pub fn requests_served(&self) -> u64 {
        self.state.counters.requests.load(Ordering::Relaxed)
    }

    /// Connections rejected over budget with a `503`.
    pub fn rejected_connections(&self) -> u64 {
        self.state.counters.rejected.load(Ordering::Relaxed)
    }

    /// Engine submissions started / requests that piggybacked on another's
    /// in-flight submission.
    pub fn coalescing(&self) -> (u64, u64) {
        (self.state.flights.leaders(), self.state.flights.followers())
    }

    /// Begins the drain: stop accepting, let idle connections close and
    /// in-flight requests finish. Returns immediately; dropping the server
    /// (or [`Server::join`]) waits for the drain to complete.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Drains and waits until every connection thread has exited.
    pub fn join(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("routes", &self.state.registry.names())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for incoming in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut conn) = incoming else { continue };
        // Small JSON exchanges lose badly to Nagle + delayed ACK; every
        // response should hit the wire the moment it is written.
        let _ = conn.set_nodelay(true);
        if state.active.load(Ordering::SeqCst) >= state.config.max_connections {
            // Over budget: immediate 503 + Retry-After, written from the
            // accept thread (cheap — no routing, no body read) so a spike
            // cannot pile up threads.
            state.counters.rejected.fetch_add(1, Ordering::Relaxed);
            // No request was read, so there is no inbound id to honor;
            // generate one so even rejections are quotable.
            let trace = TraceId::generate();
            let headers = [
                ("Retry-After", state.config.retry_after_secs.to_string()),
                ("Connection", "close".to_owned()),
                ("X-Askit-Trace-Id", trace.to_string()),
            ];
            let _ = write_json_response(
                &mut conn,
                503,
                &error_body_traced("connection budget exhausted, retry shortly", trace),
                &headers,
            );
            continue;
        }
        state.active.fetch_add(1, Ordering::SeqCst);
        state.counters.accepted.fetch_add(1, Ordering::Relaxed);
        let conn_state = Arc::clone(state);
        match std::thread::Builder::new()
            .name("askit-serve-conn".to_owned())
            .spawn(move || {
                serve_connection(conn, &conn_state);
                conn_state.active.fetch_sub(1, Ordering::SeqCst);
            }) {
            Ok(handle) => workers.push(handle),
            Err(_) => {
                state.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
        workers.retain(|w| !w.is_finished());
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// Keep-alive loop over one connection: read → route → answer, until the
/// peer leaves, an answer requires closing, or drain catches the
/// connection idle.
fn serve_connection(mut conn: TcpStream, state: &Arc<ServerState>) {
    let _ = conn.set_read_timeout(Some(poll_quantum()));
    let mut pending: Vec<u8> = Vec::new();
    loop {
        let request = match read_request(
            &mut conn,
            &mut pending,
            &state.shutdown,
            state.config.max_body_bytes,
        ) {
            ReadOutcome::Request(request) => request,
            ReadOutcome::Closed => return,
            ReadOutcome::TooLarge => {
                let trace = TraceId::generate();
                let _ = write_json_response(
                    &mut conn,
                    413,
                    &error_body_traced("request body exceeds the configured limit", trace),
                    &close_headers(trace),
                );
                return;
            }
            ReadOutcome::Malformed(reason) => {
                let trace = TraceId::generate();
                let _ = write_json_response(
                    &mut conn,
                    400,
                    &error_body_traced(reason, trace),
                    &close_headers(trace),
                );
                return;
            }
        };
        state.counters.requests.fetch_add(1, Ordering::Relaxed);
        let keep_going = dispatch(&mut conn, state, &request);
        if !keep_going || request.wants_close() || state.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn close_headers(trace: TraceId) -> [(&'static str, String); 2] {
    [
        ("Connection", "close".to_owned()),
        ("X-Askit-Trace-Id", trace.to_string()),
    ]
}

/// Routes one request; returns whether the connection may serve another.
/// Every route runs under a request-scoped trace id — inbound
/// `X-Askit-Trace-Id` when the client sent a valid one (so one id follows
/// a request across service hops), freshly generated otherwise — and every
/// response echoes it back in the same header.
fn dispatch(conn: &mut TcpStream, state: &Arc<ServerState>, request: &Request) -> bool {
    let trace = request
        .header("x-askit-trace-id")
        .and_then(TraceId::parse)
        .unwrap_or_else(TraceId::generate);
    let route = request.route();
    let mut span = askit_obs::span(Some(trace), "serve_request");
    span.set_arg("method", &request.method);
    span.set_arg("route", route);
    match (request.method.as_str(), route) {
        ("GET", "/healthz") => respond(conn, 200, &health_json(state), trace),
        ("GET", "/readyz") => {
            let (status, body) = readiness_json(state);
            respond(conn, status, &body, trace)
        }
        ("GET", "/stats") => respond(conn, 200, &stats_json(state), trace),
        ("GET", "/metrics") => respond_metrics(conn, trace),
        ("GET", "/functions") => respond(conn, 200, &functions_json(state), trace),
        ("POST", _) if route.starts_with("/call/") => {
            let name = &route["/call/".len()..];
            handle_call(conn, state, request, name, trace)
        }
        (_, "/healthz" | "/readyz" | "/stats" | "/metrics" | "/functions") => respond(
            conn,
            405,
            &error_body_traced("method not allowed", trace),
            trace,
        ),
        (_, _) if route.starts_with("/call/") => respond(
            conn,
            405,
            &error_body_traced("use POST to call a function", trace),
            trace,
        ),
        _ => respond(conn, 404, &error_body_traced("no such route", trace), trace),
    }
}

fn trace_header(trace: TraceId) -> [(&'static str, String); 1] {
    [("X-Askit-Trace-Id", trace.to_string())]
}

fn respond(conn: &mut TcpStream, status: u16, body: &str, trace: TraceId) -> bool {
    write_json_response(conn, status, body, &trace_header(trace)).is_ok()
}

/// `GET /metrics`: the process-wide registry rendered as Prometheus text
/// exposition (format version 0.0.4), the one route on this server that
/// does not answer JSON.
fn respond_metrics(conn: &mut TcpStream, trace: TraceId) -> bool {
    use std::io::Write as _;
    let body = askit_obs::metrics::global().render_prometheus();
    let headers = [
        ("X-Askit-Trace-Id", trace.to_string()),
        (
            "Content-Type",
            "text/plain; version=0.0.4; charset=utf-8".to_owned(),
        ),
        ("Content-Length", body.len().to_string()),
    ];
    let written = write_response_head(conn, 200, &headers)
        .and_then(|()| conn.write_all(body.as_bytes()))
        .and_then(|()| conn.flush());
    written.is_ok()
}

/// Liveness: `200` as long as the process is serving, even mid-drain (a
/// draining server is alive — it just should not receive new traffic,
/// which is readiness's call).
fn health_json(state: &ServerState) -> String {
    let mut object = Map::new();
    object.insert(
        "status",
        Json::Str(
            if state.shutdown.load(Ordering::SeqCst) {
                "draining"
            } else {
                "ok"
            }
            .to_owned(),
        ),
    );
    object.insert("functions", Json::Int(int(state.registry.len() as u64)));
    object.insert(
        "uptime_ms",
        Json::Int(int(state
            .started
            .elapsed()
            .as_millis()
            .min(u128::from(u64::MAX)) as u64)),
    );
    Json::Object(object).to_compact_string()
}

/// Readiness: `200` only when the server should receive new traffic.
/// Draining, or every backend endpoint's circuit breaker open, answers
/// `503` with a body explaining which condition tripped — load balancers
/// route around the instance while liveness keeps reporting the process
/// healthy.
fn readiness_json(state: &ServerState) -> (u16, String) {
    let draining = state.shutdown.load(Ordering::SeqCst);
    let (engine_ready, engine) = state.status.readiness_json();
    let ready = engine_ready && !draining;
    let mut object = Map::new();
    object.insert("ready", Json::Bool(ready));
    object.insert(
        "status",
        Json::Str(
            if draining {
                "draining"
            } else if engine_ready {
                "ok"
            } else {
                "all endpoints open"
            }
            .to_owned(),
        ),
    );
    object.insert("draining", Json::Bool(draining));
    object.insert("engine", engine);
    let status = if ready { 200 } else { 503 };
    (status, Json::Object(object).to_compact_string())
}

fn stats_json(state: &ServerState) -> String {
    let counters = &state.counters;
    let mut server = Map::new();
    server.insert(
        "active_connections",
        Json::Int(int(state.active.load(Ordering::SeqCst) as u64)),
    );
    server.insert(
        "accepted_connections",
        Json::Int(int(counters.accepted.load(Ordering::Relaxed))),
    );
    server.insert(
        "rejected_connections",
        Json::Int(int(counters.rejected.load(Ordering::Relaxed))),
    );
    server.insert(
        "requests",
        Json::Int(int(counters.requests.load(Ordering::Relaxed))),
    );
    server.insert(
        "sse_streams",
        Json::Int(int(counters.sse_streams.load(Ordering::Relaxed))),
    );
    server.insert("workers", Json::Int(int(state.pool.width() as u64)));
    server.insert(
        "draining",
        Json::Bool(state.shutdown.load(Ordering::SeqCst)),
    );
    let mut coalescing = Map::new();
    coalescing.insert(
        "engine_submissions",
        Json::Int(int(state.flights.leaders())),
    );
    coalescing.insert("coalesced", Json::Int(int(state.flights.followers())));
    coalescing.insert(
        "in_flight",
        Json::Int(int(state.flights.in_flight() as u64)),
    );
    // The HTTP client's resilience counters live in the global metrics
    // registry (the server is generic over the backend, so it cannot reach
    // `HttpStats` directly); read-only lookups never create series, so a
    // non-HTTP backend simply reports zeros.
    let registry = askit_obs::metrics::global();
    let mut http = Map::new();
    for (key, series) in [
        ("retries", "askit_http_retries_total"),
        ("throttles", "askit_http_throttles_total"),
        ("failovers", "askit_http_failovers_total"),
        ("hedges", "askit_http_hedges_total"),
        ("hedge_wins", "askit_http_hedge_wins_total"),
        ("breaker_trips", "askit_http_breaker_trips_total"),
        ("deadline_sheds", "askit_http_deadline_sheds_total"),
    ] {
        http.insert(key, Json::Int(int(registry.counter_value(series, &[]))));
    }
    let mut object = Map::new();
    object.insert("server", Json::Object(server));
    object.insert("coalescing", Json::Object(coalescing));
    object.insert("http", Json::Object(http));
    object.insert("engine", state.status.status_json());
    Json::Object(object).to_compact_string()
}

fn functions_json(state: &ServerState) -> String {
    let signatures: Vec<Json> = state
        .registry
        .signatures()
        .iter()
        .map(|signature| signature.to_json())
        .collect();
    let mut object = Map::new();
    object.insert("functions", Json::Array(signatures));
    Json::Object(object).to_compact_string()
}

/// The call path: resolve → parse body → validate args → coalesce →
/// execute on the pool → answer (JSON or SSE).
fn handle_call(
    conn: &mut TcpStream,
    state: &Arc<ServerState>,
    request: &Request,
    name: &str,
    trace: TraceId,
) -> bool {
    let Some(function) = state.registry.get(name) else {
        return respond(
            conn,
            404,
            &error_body_traced(&format!("no function named {name:?}"), trace),
            trace,
        );
    };
    let parsed = match parse_call_body(&request.body, function.as_ref()) {
        Ok(parsed) => parsed,
        Err((status, message)) => {
            return respond(conn, status, &error_body_traced(&message, trace), trace)
        }
    };
    let (args, options) = parsed;

    // Canonical flight identity: route, coerced args (declared parameter
    // order — client key order cannot split a flight), option overrides.
    let canonical = format!(
        "{name}\0{}\0{options:?}",
        Json::Object(args.clone()).to_compact_string()
    );
    let key = crate::coalesce::fnv1a(canonical.as_bytes());

    let flight = match state.flights.admit(key) {
        Admission::Leader(flight) => {
            let guard = PublishGuard::new(Arc::clone(&state.flights), Arc::clone(&flight), key);
            let job_function: Arc<dyn ServableFunction> = Arc::clone(&function);
            state.pool.submit(Box::new(move || {
                // Hand the request's trace id to the engine: `run_direct`
                // adopts a propagated id instead of generating its own, so
                // the wire-attempt spans land under this request's trace.
                let _propagated = askit_obs::trace::propagate(Some(trace));
                let result = job_function
                    .call_with(args, &options)
                    .map(Arc::new)
                    .map_err(|e| CallError {
                        status: 500,
                        message: e.to_string(),
                    });
                guard.publish(result);
            }));
            flight
        }
        Admission::Follower(flight) => flight,
    };

    if request.accepts_sse() {
        state.counters.sse_streams.fetch_add(1, Ordering::Relaxed);
        stream_call(conn, state, name, &flight, trace)
    } else {
        match flight.wait() {
            Ok(outcome) => respond(
                conn,
                200,
                &outcome_json(name, &outcome).to_compact_string(),
                trace,
            ),
            Err(error) => respond(
                conn,
                error.status,
                &error_body_traced(&error.message, trace),
                trace,
            ),
        }
    }
}

/// Streams one call's lifecycle as SSE: `accepted`, `running` heartbeats
/// at the configured cadence while the engine works, then `result` (or
/// `error`), then `[DONE]`. Every frame goes through the shared encoder
/// that the workspace's own `SseParser` is property-tested against.
fn stream_call(
    conn: &mut TcpStream,
    state: &Arc<ServerState>,
    name: &str,
    flight: &crate::coalesce::Flight,
    trace: TraceId,
) -> bool {
    if write_sse_response_head(conn, &trace_header(trace)).is_err() {
        return false;
    }
    let mut accepted = Map::new();
    accepted.insert("event", Json::Str("accepted".to_owned()));
    accepted.insert("function", Json::Str(name.to_owned()));
    accepted.insert("trace_id", Json::Str(trace.to_string()));
    if emit(conn, &Json::Object(accepted)).is_err() {
        return false;
    }
    let started = Instant::now();
    let result: FlightResult = loop {
        match flight.wait_for(state.config.heartbeat) {
            Some(result) => break result,
            None => {
                let mut running = Map::new();
                running.insert("event", Json::Str("running".to_owned()));
                running.insert(
                    "waited_ms",
                    Json::Int(int(
                        started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
                    )),
                );
                if emit(conn, &Json::Object(running)).is_err() {
                    // Client went away; the flight still completes for any
                    // coalesced followers.
                    return false;
                }
            }
        }
    };
    let terminal = match result {
        Ok(outcome) => {
            let mut event = outcome_json(name, &outcome);
            if let Some(object) = event.as_object_mut() {
                object.insert("event", Json::Str("result".to_owned()));
            }
            event
        }
        Err(error) => {
            let mut event = Map::new();
            event.insert("event", Json::Str("error".to_owned()));
            event.insert("status", Json::Int(i64::from(error.status)));
            event.insert("error", Json::Str(error.message));
            event.insert("trace_id", Json::Str(trace.to_string()));
            Json::Object(event)
        }
    };
    if emit(conn, &terminal).is_err() {
        return false;
    }
    if write_chunk(conn, &SseEvent::Done.encode()).is_err() {
        return false;
    }
    write_last_chunk(conn).is_ok()
}

fn emit(conn: &mut TcpStream, event: &Json) -> std::io::Result<()> {
    write_chunk(conn, &encode_data(&event.to_compact_string()))
}

type ParsedCall = (Map, QueryOptions);

/// Parses a call body: either the bare argument object, or the
/// `{"args": {…}, "options": {…}}` envelope (recognized only when the
/// function does not itself declare a parameter named `args`). Arguments
/// are validated and coerced against the declared signature.
fn parse_call_body(body: &[u8], function: &dyn ServableFunction) -> Result<ParsedCall, Problem> {
    let Ok(text) = std::str::from_utf8(body) else {
        return Err((400, "request body is not UTF-8".to_owned()));
    };
    let parsed = Json::parse(text).map_err(|e| (400, format!("request body is not JSON: {e}")))?;
    let Some(object) = parsed.as_object() else {
        return Err((400, "request body must be a JSON object".to_owned()));
    };
    let signature = function.signature();
    let takes_args_param = signature.params.iter().any(|(name, _)| name == "args");
    let (raw_args, options) = match object.get("args").and_then(Json::as_object) {
        Some(inner) if !takes_args_param => {
            for key in object.keys() {
                if key != "args" && key != "options" {
                    return Err((
                        400,
                        format!("unknown envelope key {key:?} (expected \"args\", \"options\")"),
                    ));
                }
            }
            (inner, parse_options(object.get("options"))?)
        }
        _ => (object, QueryOptions::default()),
    };
    let args = signature
        .validate_args(raw_args)
        .map_err(|message| (422, message))?;
    Ok((args, options))
}

type Problem = (u16, String);

/// Parses the per-call option overrides from the envelope.
fn parse_options(options: Option<&Json>) -> Result<QueryOptions, Problem> {
    let Some(options) = options else {
        return Ok(QueryOptions::default());
    };
    let Some(object) = options.as_object() else {
        return Err((400, "\"options\" must be a JSON object".to_owned()));
    };
    let mut parsed = QueryOptions::default();
    for (key, value) in object.iter() {
        match key {
            "model" => {
                parsed.model = Some(match value.as_str() {
                    Some("default") => ModelChoice::Default,
                    Some("gpt35") => ModelChoice::Gpt35,
                    Some("gpt4") => ModelChoice::Gpt4,
                    _ => {
                        return Err((
                            400,
                            "option \"model\" must be \"default\", \"gpt35\" or \"gpt4\""
                                .to_owned(),
                        ))
                    }
                });
            }
            "cache" => {
                parsed.cache = Some(match value.as_str() {
                    Some("use") => CachePolicy::Use,
                    Some("bypass") => CachePolicy::Bypass,
                    _ => {
                        return Err((
                            400,
                            "option \"cache\" must be \"use\" or \"bypass\"".to_owned(),
                        ))
                    }
                });
            }
            "temperature" => {
                let Some(t) = value.as_f64() else {
                    return Err((400, "option \"temperature\" must be a number".to_owned()));
                };
                parsed.temperature = Some(t);
            }
            "max_retries" => {
                let Some(n) = value.as_i64().filter(|&n| n >= 0) else {
                    return Err((
                        400,
                        "option \"max_retries\" must be a non-negative integer".to_owned(),
                    ));
                };
                parsed.max_retries = Some(n as usize);
            }
            "timeout_ms" => {
                let Some(ms) = value.as_i64().filter(|&n| n > 0) else {
                    return Err((
                        400,
                        "option \"timeout_ms\" must be a positive integer".to_owned(),
                    ));
                };
                parsed.timeout = Some(Duration::from_millis(ms as u64));
            }
            "speculate" => {
                let Some(flag) = value.as_bool() else {
                    return Err((400, "option \"speculate\" must be a boolean".to_owned()));
                };
                parsed.speculate = Some(flag);
            }
            "hedge" => {
                let Some(flag) = value.as_bool() else {
                    return Err((400, "option \"hedge\" must be a boolean".to_owned()));
                };
                parsed.hedge = Some(flag);
            }
            _ => {
                return Err((
                    400,
                    format!(
                        "unknown option {key:?} (expected model, cache, temperature, \
                         max_retries, timeout_ms, speculate, hedge)"
                    ),
                ));
            }
        }
    }
    Ok(parsed)
}

/// The success body for a call: the typed result plus the execution
/// metadata [`DirectOutcome`] carries.
fn outcome_json(name: &str, outcome: &askit_core::runtime::DirectOutcome) -> Json {
    let mut usage = Map::new();
    usage.insert(
        "prompt_tokens",
        Json::Int(int(outcome.usage.prompt_tokens as u64)),
    );
    usage.insert(
        "completion_tokens",
        Json::Int(int(outcome.usage.completion_tokens as u64)),
    );
    let mut object = Map::new();
    object.insert("function", Json::Str(name.to_owned()));
    object.insert("result", outcome.value.clone());
    object.insert(
        "reason",
        outcome
            .reason
            .as_ref()
            .map_or(Json::Null, |r| Json::Str(r.clone())),
    );
    object.insert("attempts", Json::Int(int(outcome.attempts as u64)));
    object.insert("escalations", Json::Int(int(outcome.escalations as u64)));
    object.insert("model", Json::Str(outcome.model.tag().to_owned()));
    object.insert(
        "latency_ms",
        Json::Float(outcome.latency.as_secs_f64() * 1000.0),
    );
    object.insert("usage", Json::Object(usage));
    Json::Object(object)
}

/// An `{"error": …, "trace_id": …}` body with proper JSON escaping: every
/// 4xx/5xx names the trace id it ran under, so a client reporting a
/// failure can quote the id the server's trace export is indexed by.
pub(crate) fn error_body_traced(message: &str, trace: TraceId) -> String {
    let mut object = Map::new();
    object.insert("error", Json::Str(message.to_owned()));
    object.insert("trace_id", Json::Str(trace.to_string()));
    Json::Object(object).to_compact_string()
}
