//! A minimal blocking client for an `askit-serve` endpoint.
//!
//! Built from the same wire pieces the backend client uses —
//! `askit-llm-http`'s [`WireReader`] for response framing and
//! [`SseParser`] for event streams — so the integration tests and the
//! load test exercise the served wire format with the workspace's own
//! battle-tested parsers rather than a second ad-hoc reader.
//!
//! One [`ServeClient`] holds one keep-alive connection (reconnecting
//! transparently when the server closed it between requests) — a
//! load-test thread maps onto exactly one client.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};

use std::time::Duration;

use askit_json::Json;
use askit_llm_http::sse::{SseEvent, SseParser};
use askit_llm_http::wire::{BodyFraming, ResponseHead, WireReader};

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// The response body, parsed as JSON.
    pub body: Json,
    /// The `Retry-After` header, when the server sent one (budget
    /// rejections do).
    pub retry_after: Option<Duration>,
    /// The echoed `X-Askit-Trace-Id` header (the server stamps one on
    /// every response it routes).
    pub trace_id: Option<String>,
}

impl ClientResponse {
    /// The body's `key` field as a string, when present.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.body.get_key(key).and_then(Json::as_str)
    }
}

/// A blocking HTTP client pinned to one server address, holding one
/// keep-alive connection.
#[derive(Debug)]
pub struct ServeClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    trace: Option<String>,
}

impl ServeClient {
    /// A client for the server at `addr` (connects lazily).
    pub fn new(addr: SocketAddr) -> Self {
        ServeClient {
            addr,
            stream: None,
            trace: None,
        }
    }

    /// Sets an `X-Askit-Trace-Id` header sent on every subsequent request
    /// (`None` clears it). The server adopts a valid inbound id instead of
    /// generating one, so a caller can follow its own id end to end.
    pub fn set_trace(&mut self, trace: Option<String>) {
        self.trace = trace;
    }

    /// `GET path` → status + JSON body.
    ///
    /// # Errors
    ///
    /// Transport failures, or a body that is not JSON.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        let (head, body) = self.roundtrip("GET", path, None, false)?;
        parse_response(&head, &body)
    }

    /// `GET path` → status + the raw body as text (for non-JSON routes:
    /// the Prometheus exposition at `/metrics`).
    ///
    /// # Errors
    ///
    /// Transport failures, or a body that is not UTF-8.
    pub fn get_text(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        let (head, body) = self.roundtrip("GET", path, None, false)?;
        let text = String::from_utf8(body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        Ok((head.status, text))
    }

    /// `POST path` with a JSON body → status + JSON body.
    ///
    /// # Errors
    ///
    /// Transport failures, or a response body that is not JSON.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        let (head, reply) = self.roundtrip("POST", path, Some(body), false)?;
        parse_response(&head, &reply)
    }

    /// `POST path` asking for SSE → status + the decoded event stream
    /// (empty when the server answered with a plain body, e.g. an error).
    ///
    /// # Errors
    ///
    /// Transport failures, or an SSE payload that is not JSON where one is
    /// expected.
    pub fn post_sse(&mut self, path: &str, body: &str) -> std::io::Result<(u16, Vec<SseEvent>)> {
        let (head, reply) = self.roundtrip("POST", path, Some(body), true)?;
        let mut parser = SseParser::new();
        let events = parser.feed(&reply);
        Ok((head.status, events))
    }

    /// One request/response over the held connection, reconnecting once if
    /// a previously-kept-alive connection turns out to be dead.
    fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        sse: bool,
    ) -> std::io::Result<(ResponseHead, Vec<u8>)> {
        let reused = self.stream.is_some();
        match self.try_roundtrip(method, path, body, sse) {
            Ok(done) => Ok(done),
            Err(e) if reused => {
                // The server may have closed the idle connection (drain,
                // budget, timeout). One fresh connection, one retry.
                self.stream = None;
                let _ = e;
                self.try_roundtrip(method, path, body, sse)
            }
            Err(e) => Err(e),
        }
    }

    fn try_roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        sse: bool,
    ) -> std::io::Result<(ResponseHead, Vec<u8>)> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            // Requests are written head-then-body; without nodelay the
            // second write can stall behind Nagle + delayed ACK.
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("just connected");
        let mut head = String::with_capacity(160);
        head.push_str(&format!("{method} {path} HTTP/1.1\r\n"));
        head.push_str(&format!("Host: {}\r\n", self.addr));
        if sse {
            head.push_str("Accept: text/event-stream\r\n");
        } else {
            head.push_str("Accept: application/json\r\n");
        }
        if let Some(trace) = &self.trace {
            head.push_str(&format!("X-Askit-Trace-Id: {trace}\r\n"));
        }
        if let Some(body) = body {
            head.push_str("Content-Type: application/json\r\n");
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("Connection: keep-alive\r\n\r\n");
        match exchange(stream, &head, body) {
            Ok((response_head, payload, close)) => {
                if close {
                    self.stream = None;
                }
                Ok((response_head, payload))
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Writes one request and reads one complete response; the `bool` is
/// whether the connection must not be reused.
fn exchange(
    stream: &mut TcpStream,
    head: &str,
    body: Option<&str>,
) -> std::io::Result<(ResponseHead, Vec<u8>, bool)> {
    stream.write_all(head.as_bytes())?;
    if let Some(body) = body {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()?;
    let mut reader = WireReader::new();
    let response_head = reader.read_head(stream)?;
    let framing = BodyFraming::of(&response_head);
    let payload = match framing {
        BodyFraming::Length(n) => reader.read_exact_body(stream, n)?,
        BodyFraming::Chunked => {
            let mut decoded = Vec::new();
            reader.read_chunked_body(stream, |bytes| decoded.extend_from_slice(bytes))?;
            decoded
        }
        BodyFraming::UntilClose => reader.read_to_close(stream)?,
    };
    let close = response_head.wants_close() || matches!(framing, BodyFraming::UntilClose);
    Ok((response_head, payload, close))
}

fn parse_response(head: &ResponseHead, body: &[u8]) -> std::io::Result<ClientResponse> {
    let text = std::str::from_utf8(body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let body = Json::parse(text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(ClientResponse {
        status: head.status,
        body,
        retry_after: head.retry_after(),
        trace_id: head.header("x-askit-trace-id").map(str::to_owned),
    })
}

/// Decodes the JSON payloads of an SSE stream's `Data` events, checking
/// the stream is `[DONE]`-terminated. Test helper used by the integration
/// suite and the load test.
///
/// # Errors
///
/// A description of the malformation, when the stream is not a well-formed
/// serve stream.
pub fn decode_stream(events: &[SseEvent]) -> Result<Vec<Json>, String> {
    let Some((SseEvent::Done, data)) = events.split_last() else {
        return Err("stream must end with [DONE]".to_owned());
    };
    data.iter()
        .map(|event| match event {
            SseEvent::Data(payload) => {
                Json::parse(payload).map_err(|e| format!("non-JSON event payload: {e}"))
            }
            SseEvent::Done => Err("[DONE] before the end of the stream".to_owned()),
        })
        .collect()
}
