//! Server-side HTTP/1.1 request parsing.
//!
//! The mirror image of `askit-llm-http`'s client-side `WireReader`: a
//! keep-alive loop of head + `Content-Length` body reads over a plain
//! [`TcpStream`], with two serving-specific twists. Reads are **polled**
//! against a short socket timeout so an idle connection notices server
//! drain within one quantum instead of holding a thread until its client
//! goes away, and body size is **capped** so an abusive `Content-Length`
//! answers `413` instead of ballooning memory.

use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Largest request head (request line + headers) accepted.
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// How many consecutive empty read quanta a *partially received* request
/// survives once drain starts before the connection is abandoned — a
/// client that stalls mid-request cannot hold shutdown hostage.
const DRAIN_GRACE_POLLS: u32 = 100;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// HTTP method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, query string included.
    pub path: String,
    /// Headers in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close after this response.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Whether the client asked for a streamed (SSE) response.
    pub fn accepts_sse(&self) -> bool {
        self.header("accept")
            .is_some_and(|v| v.to_ascii_lowercase().contains("text/event-stream"))
    }

    /// The path without its query string.
    pub fn route(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }
}

/// What one request-read attempt produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The connection is over: client EOF/reset, or server drain caught it
    /// idle. Nothing to answer.
    Closed,
    /// The head parsed but the declared body exceeds the cap — answer
    /// `413` and close.
    TooLarge,
    /// Bytes arrived that do not parse as an HTTP request — answer `400`
    /// and close.
    Malformed(&'static str),
}

/// Reads one request from `conn`. `pending` carries surplus bytes between
/// keep-alive requests; the socket's read timeout is the poll quantum (the
/// caller sets it once per connection).
///
/// While `shutdown` is clear, an idle connection waits indefinitely (that
/// is what keep-alive means). Once `shutdown` is set: an idle connection
/// closes at the next quantum, while a request already partially received
/// is still read to completion (bounded by `DRAIN_GRACE_POLLS`) — drain
/// finishes accepted work, it does not drop it.
pub fn read_request(
    conn: &mut TcpStream,
    pending: &mut Vec<u8>,
    shutdown: &AtomicBool,
    max_body_bytes: usize,
) -> ReadOutcome {
    let mut started = !pending.is_empty();
    let mut drain_polls: u32 = 0;

    // Accumulate until the head terminator.
    let head_end = loop {
        if let Some(pos) = find_subsequence(pending, b"\r\n\r\n") {
            break pos;
        }
        if pending.len() > MAX_HEAD_BYTES {
            return ReadOutcome::Malformed("request head too large");
        }
        match poll_read(conn, pending) {
            Poll::Bytes => started = true,
            Poll::Eof => return ReadOutcome::Closed,
            Poll::Empty => {
                if shutdown.load(Ordering::SeqCst) {
                    if !started {
                        return ReadOutcome::Closed;
                    }
                    drain_polls += 1;
                    if drain_polls > DRAIN_GRACE_POLLS {
                        return ReadOutcome::Closed;
                    }
                }
            }
        }
    };

    let head_bytes: Vec<u8> = pending.drain(..head_end + 4).collect();
    let Ok(head) = std::str::from_utf8(&head_bytes) else {
        return ReadOutcome::Malformed("request head is not UTF-8");
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::Malformed("malformed request line");
    };
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Malformed("unsupported HTTP version");
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return ReadOutcome::Malformed("malformed header line");
        };
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .map_or(Some(0), |(_, v)| v.parse::<usize>().ok());
    let Some(content_length) = content_length else {
        return ReadOutcome::Malformed("unparseable Content-Length");
    };
    if content_length > max_body_bytes {
        return ReadOutcome::TooLarge;
    }

    // Accumulate the body. The request is necessarily `started` now, so
    // drain only abandons it after the grace budget.
    while pending.len() < content_length {
        match poll_read(conn, pending) {
            Poll::Bytes => {}
            Poll::Eof => return ReadOutcome::Closed,
            Poll::Empty => {
                if shutdown.load(Ordering::SeqCst) {
                    drain_polls += 1;
                    if drain_polls > DRAIN_GRACE_POLLS {
                        return ReadOutcome::Closed;
                    }
                }
            }
        }
    }
    let body: Vec<u8> = pending.drain(..content_length).collect();

    ReadOutcome::Request(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
    })
}

enum Poll {
    /// Bytes were appended to the buffer.
    Bytes,
    /// Clean EOF or hard error: the connection is finished.
    Eof,
    /// The poll quantum elapsed without data.
    Empty,
}

fn poll_read(conn: &mut TcpStream, pending: &mut Vec<u8>) -> Poll {
    let mut chunk = [0u8; 4096];
    match conn.read(&mut chunk) {
        Ok(0) => Poll::Eof,
        Ok(n) => {
            pending.extend_from_slice(&chunk[..n]);
            Poll::Bytes
        }
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Poll::Empty
        }
        Err(_) => Poll::Eof,
    }
}

/// First offset of `needle` in `haystack`.
pub(crate) fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// The poll quantum connections arm their socket with (also how quickly an
/// idle connection notices drain).
pub(crate) fn poll_quantum() -> Duration {
    Duration::from_millis(50)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8]) -> ReadOutcome {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_read_timeout(Some(poll_quantum())).unwrap();
        let shutdown = AtomicBool::new(false);
        read_request(&mut server_side, &mut Vec::new(), &shutdown, 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /call/add?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 7\r\nAccept: text/event-stream\r\n\r\n{\"x\":1}";
        let ReadOutcome::Request(request) = roundtrip(raw) else {
            panic!("must parse");
        };
        assert_eq!(request.method, "POST");
        assert_eq!(request.route(), "/call/add");
        assert_eq!(request.body, b"{\"x\":1}");
        assert!(request.accepts_sse());
        assert!(!request.wants_close());
        assert_eq!(request.header("HOST"), Some("h"));
    }

    #[test]
    fn oversized_bodies_and_garbage_are_rejected() {
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            ReadOutcome::TooLarge
        ));
        assert!(matches!(
            roundtrip(b"not an http request at all\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(
            roundtrip(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn shutdown_closes_idle_but_finishes_partial() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        let shutdown = AtomicBool::new(true);

        // Idle at shutdown: closes without waiting for the client.
        assert!(matches!(
            read_request(&mut server_side, &mut Vec::new(), &shutdown, 1024),
            ReadOutcome::Closed
        ));

        // Half a request already on the wire at shutdown: the rest is
        // still read and the request served.
        client.write_all(b"GET /healthz HT").unwrap();
        client.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            client.write_all(b"TP/1.1\r\n\r\n").unwrap();
            client
        });
        let outcome = read_request(&mut server_side, &mut Vec::new(), &shutdown, 1024);
        let ReadOutcome::Request(request) = outcome else {
            panic!("partial request must complete during drain, got {outcome:?}");
        };
        assert_eq!(request.route(), "/healthz");
        drop(writer.join().unwrap());
    }
}
