//! End-to-end tests over a real listening [`Server`]: typed results, SSE
//! streams decoded by the workspace's own parser, server-side coalescing,
//! the connection budget, keep-alive reuse, the stats surface, and a
//! graceful drain that answers every accepted request.

use std::sync::Arc;
use std::time::Duration;

use askit_core::{Askit, FunctionRegistry, QueryOptions, ServedTask};
use askit_json::Json;
use askit_llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
use askit_llm_http::sse::SseEvent;
use askit_serve::{decode_stream, ServeClient, ServeConfig, Server};

/// An Askit over the simulated model; `wall_clock_scale` > 0 makes each
/// completion really sleep (~2 s nominal × scale), so tests can hold
/// requests in flight long enough to overlap.
fn shared_askit(wall_clock_scale: f64) -> Arc<Askit<MockLlm>> {
    Arc::new(Askit::new(MockLlm::new(
        MockLlmConfig::gpt4()
            .with_faults(FaultConfig::none())
            .with_wall_clock_scale(wall_clock_scale),
        Oracle::standard(),
    )))
}

fn registry_with_add(askit: &Arc<Askit<MockLlm>>) -> Arc<FunctionRegistry> {
    let registry = Arc::new(FunctionRegistry::new());
    registry.register(
        ServedTask::new(
            Arc::clone(askit),
            "add",
            askit_types::int(),
            "What is {{x}} plus {{y}}?",
        )
        .unwrap()
        .with_param_types([("x", askit_types::int()), ("y", askit_types::int())]),
    );
    registry
}

fn start(
    askit: &Arc<Askit<MockLlm>>,
    registry: Arc<FunctionRegistry>,
    config: ServeConfig,
) -> Server {
    Server::start(registry, Arc::clone(askit) as _, config).expect("bind loopback")
}

#[test]
fn typed_calls_roundtrip_with_metadata() {
    let askit = shared_askit(0.0);
    let server = start(&askit, registry_with_add(&askit), ServeConfig::default());
    let mut client = ServeClient::new(server.addr());

    let response = client
        .post("/call/add", r#"{"x": 19, "y": 23}"#)
        .expect("call add");
    assert_eq!(response.status, 200, "{:?}", response.body);
    assert_eq!(response.body.get_key("result"), Some(&Json::Int(42)));
    assert_eq!(response.str_field("function"), Some("add"));
    assert_eq!(response.str_field("model"), Some("default"));
    assert!(response.body.get_key("attempts").and_then(Json::as_i64) >= Some(1));
    assert!(response
        .body
        .pointer("/usage/completion_tokens")
        .and_then(Json::as_i64)
        .is_some());

    // The envelope form layers per-call option overrides.
    let enveloped = client
        .post(
            "/call/add",
            r#"{"args": {"x": 1, "y": 2}, "options": {"cache": "bypass", "model": "gpt4"}}"#,
        )
        .expect("enveloped call");
    assert_eq!(enveloped.status, 200, "{:?}", enveloped.body);
    assert_eq!(enveloped.body.get_key("result"), Some(&Json::Int(3)));
    assert_eq!(enveloped.str_field("model"), Some("gpt4"));

    // The signature listing renders the typed contract.
    let functions = client.get("/functions").expect("listing");
    assert_eq!(functions.status, 200);
    assert_eq!(
        functions.body.pointer("/functions/0/name"),
        Some(&Json::Str("add".to_owned()))
    );
    assert_eq!(
        functions
            .body
            .pointer("/functions/0/params/x")
            .and_then(Json::as_str),
        Some("number")
    );

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.str_field("status"), Some("ok"));

    // Readiness is the routing signal: ready while no breaker table says
    // otherwise, with the scheduler widths attached for dashboards.
    let ready = client.get("/readyz").expect("readyz");
    assert_eq!(ready.status, 200, "{:?}", ready.body);
    assert_eq!(ready.body.get_key("ready"), Some(&Json::Bool(true)));
    assert_eq!(ready.str_field("status"), Some("ok"));
    assert!(
        ready.body.pointer("/engine/widths").is_some(),
        "{:?}",
        ready.body
    );

    // The hedge override parses; an in-process backend simply ignores it.
    let hedged = client
        .post(
            "/call/add",
            r#"{"args": {"x": 20, "y": 22}, "options": {"hedge": true}}"#,
        )
        .expect("hedged call");
    assert_eq!(hedged.status, 200, "{:?}", hedged.body);
    assert_eq!(hedged.body.get_key("result"), Some(&Json::Int(42)));
}

#[test]
fn client_errors_name_the_problem() {
    let askit = shared_askit(0.0);
    let server = start(&askit, registry_with_add(&askit), ServeConfig::default());
    let mut client = ServeClient::new(server.addr());

    let cases: &[(&str, &str, u16, &str)] = &[
        ("/call/missing", r#"{"x": 1}"#, 404, "no function named"),
        ("/call/add", "not json", 400, "not JSON"),
        ("/call/add", "[1, 2]", 400, "must be a JSON object"),
        ("/call/add", r#"{"x": 1}"#, 422, "missing argument"),
        (
            "/call/add",
            r#"{"x": 1, "y": 2, "z": 3}"#,
            422,
            "unknown argument",
        ),
        (
            "/call/add",
            r#"{"x": "one", "y": 2}"#,
            422,
            "does not inhabit",
        ),
        (
            "/call/add",
            r#"{"args": {"x": 1, "y": 2}, "options": {"model": "gpt5"}}"#,
            400,
            "\"model\" must be",
        ),
        (
            "/call/add",
            r#"{"args": {"x": 1, "y": 2}, "options": {"bogus": true}}"#,
            400,
            "unknown option",
        ),
        (
            "/call/add",
            r#"{"args": {"x": 1, "y": 2}, "options": {"hedge": "yes"}}"#,
            400,
            "\"hedge\" must be a boolean",
        ),
        (
            "/call/add",
            r#"{"args": {"x": 1, "y": 2}, "extra": 1}"#,
            400,
            "unknown envelope key",
        ),
    ];
    for (path, body, status, needle) in cases {
        let response = client.post(path, body).expect("roundtrip");
        assert_eq!(response.status, *status, "{path} {body}");
        let error = response.str_field("error").unwrap_or_default();
        assert!(error.contains(needle), "{path} {body} → {error:?}");
    }

    let wrong_method = client.get("/call/add").expect("GET on call route");
    assert_eq!(wrong_method.status, 405);
    let nowhere = client.get("/nowhere").expect("unknown route");
    assert_eq!(nowhere.status, 404);
}

#[test]
fn sse_stream_is_parseable_and_ordered() {
    // Real sleeping (~100 ms/completion) so heartbeats have time to fire
    // between `accepted` and `result`.
    let askit = shared_askit(0.05);
    let server = start(
        &askit,
        registry_with_add(&askit),
        ServeConfig::default().with_heartbeat(Duration::from_millis(10)),
    );
    let mut client = ServeClient::new(server.addr());

    let (status, events) = client
        .post_sse("/call/add", r#"{"x": 20, "y": 22}"#)
        .expect("SSE call");
    assert_eq!(status, 200);
    assert_eq!(events.last(), Some(&SseEvent::Done));
    let frames = decode_stream(&events).expect("well-formed serve stream");
    assert!(
        frames.len() >= 2,
        "accepted + result at minimum: {frames:?}"
    );
    assert_eq!(
        frames[0].get_key("event").and_then(Json::as_str),
        Some("accepted")
    );
    for frame in &frames[1..frames.len() - 1] {
        assert_eq!(
            frame.get_key("event").and_then(Json::as_str),
            Some("running")
        );
        assert!(frame.get_key("waited_ms").and_then(Json::as_i64).is_some());
    }
    let result = frames.last().unwrap();
    assert_eq!(
        result.get_key("event").and_then(Json::as_str),
        Some("result")
    );
    assert_eq!(result.get_key("result"), Some(&Json::Int(42)));

    // Streaming an invalid call reports the error as an event, then DONE.
    let (status, events) = client
        .post_sse("/call/add", r#"{"x": 1}"#)
        .expect("SSE validation error");
    assert_eq!(status, 422);
    let _ = events;
}

#[test]
fn identical_concurrent_calls_coalesce_into_one_submission() {
    let askit = shared_askit(0.05);
    let server = start(&askit, registry_with_add(&askit), ServeConfig::default());
    let addr = server.addr();

    // Warm nothing: every thread fires the same body while the first
    // leader's ~100 ms engine call is still in flight.
    let threads: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = ServeClient::new(addr);
                client
                    .post("/call/add", r#"{"x": 7, "y": 35}"#)
                    .expect("coalesced call")
            })
        })
        .collect();
    let responses: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for response in &responses {
        assert_eq!(response.status, 200);
        assert_eq!(response.body.get_key("result"), Some(&Json::Int(42)));
    }
    let (leaders, followers) = server.coalescing();
    assert_eq!(leaders + followers, 6, "every request admitted");
    assert!(
        followers >= 1,
        "concurrent duplicates must share a flight (leaders={leaders})"
    );

    // Different argument *values* must not share.
    let mut client = ServeClient::new(addr);
    let other = client
        .post("/call/add", r#"{"x": 1, "y": 5}"#)
        .expect("distinct call");
    assert_eq!(other.body.get_key("result"), Some(&Json::Int(6)));
}

#[test]
fn connection_budget_rejects_with_retry_after() {
    let askit = shared_askit(0.0);
    let server = start(
        &askit,
        registry_with_add(&askit),
        ServeConfig::default().with_max_connections(2),
    );

    // Two live keep-alive connections occupy the whole budget.
    let mut first = ServeClient::new(server.addr());
    let mut second = ServeClient::new(server.addr());
    assert_eq!(first.get("/healthz").expect("first").status, 200);
    assert_eq!(second.get("/healthz").expect("second").status, 200);

    // The third arrival is turned away at accept time.
    let mut third = ServeClient::new(server.addr());
    let rejected = third.get("/healthz").expect("rejection still answers");
    assert_eq!(rejected.status, 503);
    assert_eq!(rejected.retry_after, Some(Duration::from_secs(1)));
    assert!(rejected
        .str_field("error")
        .unwrap_or_default()
        .contains("budget"));
    assert!(server.rejected_connections() >= 1);

    // Budget frees as connections close: drop one holder, retry.
    drop(first);
    std::thread::sleep(Duration::from_millis(150));
    let accepted = third.get("/healthz").expect("after a slot freed");
    assert_eq!(accepted.status, 200);
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let askit = shared_askit(0.0);
    let server = start(&askit, registry_with_add(&askit), ServeConfig::default());
    let mut client = ServeClient::new(server.addr());

    for n in 0..5 {
        let body = format!("{{\"x\": {n}, \"y\": 1}}");
        let response = client.post("/call/add", &body).expect("sequential call");
        assert_eq!(response.body.get_key("result"), Some(&Json::Int(n + 1)));
    }
    let stats = client.get("/stats").expect("stats");
    assert_eq!(
        stats
            .body
            .pointer("/server/accepted_connections")
            .and_then(Json::as_i64),
        Some(1),
        "all requests rode one connection: {:?}",
        stats.body
    );
    assert_eq!(
        stats
            .body
            .pointer("/server/requests")
            .and_then(Json::as_i64),
        Some(6)
    );
}

#[test]
fn stats_expose_cache_and_scheduler() {
    let askit = shared_askit(0.0);
    let server = start(&askit, registry_with_add(&askit), ServeConfig::default());
    let mut client = ServeClient::new(server.addr());

    // Same call twice: the second must be a completion-cache hit.
    for _ in 0..2 {
        let response = client
            .post("/call/add", r#"{"x": 2, "y": 2}"#)
            .expect("cached call");
        assert_eq!(response.status, 200);
    }
    let stats = client.get("/stats").expect("stats");
    assert_eq!(stats.status, 200);
    let hits = stats
        .body
        .pointer("/engine/cache/hits")
        .and_then(Json::as_i64)
        .expect("cache hits present");
    assert!(
        hits >= 1,
        "second identical call must hit: {:?}",
        stats.body
    );
    let description = stats
        .body
        .pointer("/engine/scheduler/description")
        .and_then(Json::as_str)
        .expect("width description present");
    // Every model tier is named with its resolved width; the `widths`
    // object itself lists only *gated* models (none on a default engine).
    assert!(description.contains("gpt4="), "{description:?}");
    assert!(stats
        .body
        .pointer("/engine/scheduler/widths")
        .and_then(Json::as_object)
        .is_some());
    assert_eq!(
        stats
            .body
            .pointer("/coalescing/engine_submissions")
            .and_then(Json::as_i64),
        Some(2),
        "sequential identical calls are separate submissions (cache, not \
         coalescing, deduplicates them)"
    );
}

#[test]
fn drain_answers_inflight_requests_before_exiting() {
    let askit = shared_askit(0.05);
    let server = start(&askit, registry_with_add(&askit), ServeConfig::default());
    let addr = server.addr();

    // A slow call takes off…
    let inflight = std::thread::spawn(move || {
        let mut client = ServeClient::new(addr);
        client.post("/call/add", r#"{"x": 40, "y": 2}"#)
    });
    std::thread::sleep(Duration::from_millis(30));

    // …then the server drains. `join` returns only after every connection
    // thread exited, so the in-flight response must already be written.
    server.join();
    let response = inflight
        .join()
        .unwrap()
        .expect("in-flight request answered during drain");
    assert_eq!(response.status, 200);
    assert_eq!(response.body.get_key("result"), Some(&Json::Int(42)));

    // The port no longer accepts.
    let mut late = ServeClient::new(addr);
    assert!(late.get("/healthz").is_err(), "listener must be gone");
}

#[test]
fn trace_ids_echo_on_every_route() {
    let askit = shared_askit(0.0);
    let server = start(&askit, registry_with_add(&askit), ServeConfig::default());
    let mut client = ServeClient::new(server.addr());

    // Without an inbound id the server mints one per request.
    let first = client.get("/healthz").expect("healthz");
    let minted = first.trace_id.expect("every response carries a trace id");
    assert!(
        askit_obs::TraceId::parse(&minted).is_some(),
        "{minted:?} must be a valid trace id"
    );
    let second = client.get("/healthz").expect("healthz again");
    assert_ne!(
        second.trace_id.as_deref(),
        Some(minted.as_str()),
        "distinct requests get distinct ids"
    );

    // A valid inbound id is adopted and echoed verbatim…
    client.set_trace(Some("00000000deadbeef".to_owned()));
    let adopted = client
        .post("/call/add", r#"{"x": 1, "y": 2}"#)
        .expect("traced call");
    assert_eq!(adopted.trace_id.as_deref(), Some("00000000deadbeef"));

    // …including on error responses, where the body names it too.
    let failed = client
        .post("/call/add", r#"{"x": 1}"#)
        .expect("validation error");
    assert_eq!(failed.status, 422);
    assert_eq!(failed.trace_id.as_deref(), Some("00000000deadbeef"));
    assert_eq!(failed.str_field("trace_id"), Some("00000000deadbeef"));

    // Garbage inbound ids are replaced, not parroted back.
    client.set_trace(Some("not-a-trace-id".to_owned()));
    let replaced = client.get("/healthz").expect("garbage trace header");
    let replacement = replaced.trace_id.expect("id still present");
    assert_ne!(replacement, "not-a-trace-id");
    assert!(askit_obs::TraceId::parse(&replacement).is_some());

    // The SSE `accepted` event carries the id in-band.
    client.set_trace(Some("0000000000abc123".to_owned()));
    let (status, events) = client
        .post_sse("/call/add", r#"{"x": 2, "y": 3}"#)
        .expect("SSE call");
    assert_eq!(status, 200);
    let frames = decode_stream(&events).expect("well-formed stream");
    assert_eq!(
        frames[0].get_key("trace_id").and_then(Json::as_str),
        Some("0000000000abc123"),
        "{frames:?}"
    );
}

#[test]
fn metrics_route_serves_valid_exposition() {
    let askit = shared_askit(0.0);
    let server = start(&askit, registry_with_add(&askit), ServeConfig::default());
    let mut client = ServeClient::new(server.addr());

    // Drive some traffic so the engine-side series exist.
    for n in 0..3 {
        let body = format!("{{\"x\": {n}, \"y\": 1}}");
        assert_eq!(client.post("/call/add", &body).expect("call").status, 200);
    }

    let (status, text) = client.get_text("/metrics").expect("metrics scrape");
    assert_eq!(status, 200);
    let samples = askit_obs::metrics::parse_exposition(&text).expect("valid exposition");
    assert!(!samples.is_empty(), "exposition must carry samples");
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing {name} in:\n{text}"))
            .value
    };
    // Cache counters moved (mock backend: no wire series, but the cache
    // and scheduler instrumentation is backend-independent).
    assert!(find("askit_cache_misses_total") >= 3.0);
    assert!(
        find("askit_request_latency_us_count") >= 3.0,
        "latency histogram observed each completion"
    );
    assert!(
        samples.iter().any(|s| s.name == "askit_request_latency_us"
            && s.label("quantile").is_some()
            && s.label("model").is_some()),
        "per-model quantile samples present in:\n{text}"
    );

    // The wrong method gets the standard 405 treatment.
    let rejected = client.post("/metrics", "{}").expect("POST /metrics");
    assert_eq!(rejected.status, 405);

    // /stats exposes the registry-backed http counter mirror (all zeros
    // with an in-process backend) and the breaker table.
    let stats = client.get("/stats").expect("stats");
    assert_eq!(
        stats.body.pointer("/http/retries").and_then(Json::as_i64),
        Some(0)
    );
    assert!(stats.body.pointer("/http/failovers").is_some());
    assert!(
        stats
            .body
            .pointer("/engine/scheduler/endpoint_breakers")
            .is_some(),
        "{:?}",
        stats.body
    );
}

#[test]
fn options_reach_the_engine() {
    let askit = shared_askit(0.0);
    let registry = registry_with_add(&askit);
    let server = start(&askit, Arc::clone(&registry), ServeConfig::default());
    let mut client = ServeClient::new(server.addr());

    // cache bypass: two identical calls, zero hits.
    for _ in 0..2 {
        let response = client
            .post(
                "/call/add",
                r#"{"args": {"x": 3, "y": 4}, "options": {"cache": "bypass"}}"#,
            )
            .expect("bypass call");
        assert_eq!(response.status, 200);
        assert_eq!(response.body.get_key("result"), Some(&Json::Int(7)));
    }
    let stats = client.get("/stats").expect("stats");
    assert_eq!(
        stats
            .body
            .pointer("/engine/cache/hits")
            .and_then(Json::as_i64),
        Some(0),
        "bypass must not touch the cache: {:?}",
        stats.body
    );

    // A default-options call through the registry object directly agrees
    // with the served result (same engine underneath).
    let direct = registry
        .get("add")
        .unwrap()
        .call_with(askit_core::args! { x: 3, y: 4 }, &QueryOptions::default())
        .unwrap();
    assert_eq!(direct.value, Json::Int(7));
}
