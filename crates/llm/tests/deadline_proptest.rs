//! Property tests for the deadline arithmetic on [`RequestOptions`]: the
//! invariants every layer of the stack leans on when it clips sleeps and
//! per-attempt timeouts to a request's remaining budget. Clipping must
//! never *extend* a wait (no sleep past the deadline), never underflow
//! (saturate at zero, not panic), and never manufacture budget a
//! re-stamp didn't have.

use std::time::{Duration, Instant};

use askit_llm::RequestOptions;
use proptest::prelude::*;

/// Millisecond ranges wide enough to cover sub-quantum sleeps, realistic
/// request timeouts, and absurdly long candidates in one sweep.
fn arb_ms() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..50, 0u64..5_000, 0u64..10_000_000]
}

fn with_timeout(timeout_ms: u64) -> RequestOptions {
    RequestOptions {
        timeout: Some(Duration::from_millis(timeout_ms)),
        ..RequestOptions::default()
    }
}

proptest! {
    /// The clipped value never exceeds the candidate, never exceeds the
    /// original timeout budget, and reaches zero exactly when the
    /// deadline has passed — regardless of how far into the budget the
    /// clip happens.
    #[test]
    fn clipping_never_underflows_or_exceeds_the_original_budget(
        timeout_ms in arb_ms(),
        candidate_ms in arb_ms(),
        elapsed_ms in arb_ms(),
    ) {
        let stamped_at = Instant::now();
        let options = with_timeout(timeout_ms).stamp_deadline(stamped_at);
        let later = stamped_at + Duration::from_millis(elapsed_ms);
        let candidate = Duration::from_millis(candidate_ms);

        let clipped = options.clip_to_deadline(candidate, later);
        prop_assert!(clipped <= candidate, "clip must never extend a wait");
        prop_assert!(
            clipped <= Duration::from_millis(timeout_ms),
            "clip must never exceed the original timeout budget"
        );
        if elapsed_ms >= timeout_ms {
            prop_assert_eq!(clipped, Duration::ZERO);
            prop_assert!(options.deadline_expired(later));
            prop_assert_eq!(options.remaining_budget(later), Some(Duration::ZERO));
        } else {
            // Inside the budget the clip is exactly min(candidate, rest).
            let rest = Duration::from_millis(timeout_ms - elapsed_ms);
            prop_assert_eq!(clipped, candidate.min(rest));
        }
    }

    /// Re-stamping at an inner layer is a no-op: the deadline an outer
    /// layer stamped survives, so budgets shrink monotonically down the
    /// stack instead of resetting at every hop.
    #[test]
    fn restamping_never_extends_the_deadline(
        timeout_ms in arb_ms(),
        inner_delay_ms in arb_ms(),
    ) {
        let stamped_at = Instant::now();
        let options = with_timeout(timeout_ms).stamp_deadline(stamped_at);
        let original = options.deadline;
        prop_assert!(original.is_some());

        // An inner layer re-stamps later, as if it owned the request.
        let inner_now = stamped_at + Duration::from_millis(inner_delay_ms);
        let restamped = options.stamp_deadline(inner_now);
        prop_assert_eq!(restamped.deadline, original);
    }

    /// Without a timeout there is no deadline: nothing expires, nothing
    /// clips, the candidate passes through untouched.
    #[test]
    fn no_timeout_means_no_deadline(
        candidate_ms in arb_ms(),
        elapsed_ms in arb_ms(),
    ) {
        let now = Instant::now();
        let options = RequestOptions::default().stamp_deadline(now);
        prop_assert!(options.deadline.is_none());
        let later = now + Duration::from_millis(elapsed_ms);
        let candidate = Duration::from_millis(candidate_ms);
        prop_assert!(!options.deadline_expired(later));
        prop_assert_eq!(options.remaining_budget(later), None);
        prop_assert_eq!(options.clip_to_deadline(candidate, later), candidate);
    }
}
