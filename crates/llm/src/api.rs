//! The language-model interface: chat messages, requests, completions.
//!
//! This is the "low-level API provided by the LLM" the paper's Step 2 calls
//! into (§III-D, §III-E) — the shape mirrors a chat-completion API, minus the
//! network.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Who authored a chat message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The system preamble.
    System,
    /// The application (AskIt compiler/runtime).
    User,
    /// The model.
    Assistant,
}

impl Role {
    /// The stable wire tag for the role (also what request hashing mixes).
    pub fn as_str(&self) -> &'static str {
        match self {
            Role::System => "system",
            Role::User => "user",
            Role::Assistant => "assistant",
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One chat message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatMessage {
    /// Message author.
    pub role: Role,
    /// Message text.
    pub content: String,
}

impl ChatMessage {
    /// A user message.
    pub fn user(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::User,
            content: content.into(),
        }
    }

    /// An assistant message.
    pub fn assistant(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::Assistant,
            content: content.into(),
        }
    }

    /// A system message.
    pub fn system(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::System,
            content: content.into(),
        }
    }
}

/// Which model a request should be served by.
///
/// The unit of AskIt's cost/accuracy trade-off (paper Table III): route
/// cheap tasks to a fast model and hard ones to a strong model, per request.
/// Backends that serve only one model ignore the choice; [`crate::MockLlm`]
/// serves the request under the routed model's latency/cost profile (fault
/// rates stay as configured), which is the same hook a network backend uses
/// to pick the wire model name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelChoice {
    /// Whatever model the backend was configured with.
    #[default]
    Default,
    /// A GPT-3.5-turbo-class model: fast, cheap, sloppier.
    Gpt35,
    /// A GPT-4-class model: slow, expensive, accurate.
    Gpt4,
}

impl ModelChoice {
    /// A stable tag naming the choice (used in cache keys and reports).
    pub fn tag(&self) -> &'static str {
        match self {
            ModelChoice::Default => "default",
            ModelChoice::Gpt35 => "gpt35",
            ModelChoice::Gpt4 => "gpt4",
        }
    }
}

impl fmt::Display for ModelChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// An ordered model-escalation ladder (cheap → expensive).
///
/// The retry loop already knows each attempt's validation verdict; an
/// escalation ladder turns that verdict into a routing decision — a failed
/// attempt re-prepares the conversation against the *next* tier instead of
/// re-asking the model that just failed. Because the routed model is part of
/// request identity (see [`CompletionRequest::fingerprint`]), every tier
/// keys its own cache entries and draws its own simulated response stream by
/// construction.
///
/// `Copy` on purpose: the ladder rides inside per-call option structs. It
/// holds at most one tier per [`ModelChoice`] variant, which is exactly as
/// long as a ladder over this model set can usefully be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Escalation {
    tiers: [ModelChoice; 3],
    len: u8,
}

impl Escalation {
    /// No escalation: every attempt stays on the originally routed model.
    pub const OFF: Escalation = Escalation {
        tiers: [ModelChoice::Default; 3],
        len: 0,
    };

    /// A ladder over the given tiers, in escalation order (index 0 is tried
    /// first). Truncates past one tier per model variant; an empty slice is
    /// [`Escalation::OFF`].
    pub fn ladder(tiers: &[ModelChoice]) -> Self {
        let mut out = Escalation::OFF;
        for &tier in tiers.iter().take(out.tiers.len()) {
            out.tiers[out.len as usize] = tier;
            out.len += 1;
        }
        out
    }

    /// The canonical cost ladder: try the cheap model first, escalate to the
    /// strong one when validation rejects the cheap answer.
    pub fn cheap_first() -> Self {
        Escalation::ladder(&[ModelChoice::Gpt35, ModelChoice::Gpt4])
    }

    /// The tiers in escalation order (empty when off).
    pub fn tiers(&self) -> &[ModelChoice] {
        &self.tiers[..self.len as usize]
    }

    /// Whether the ladder is empty (no escalation).
    pub fn is_off(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Display for Escalation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_off() {
            return f.write_str("off");
        }
        for (i, tier) in self.tiers().iter().enumerate() {
            if i > 0 {
                f.write_str("→")?;
            }
            f.write_str(tier.tag())?;
        }
        Ok(())
    }
}

/// The observable state of a circuit breaker guarding one backend endpoint.
///
/// The breaker machine itself lives in the network backend
/// (`askit-llm-http`); this enum is the shared vocabulary it exports through
/// [`LoadSignal::Breaker`] so schedulers and health endpoints can reason
/// about endpoint availability without depending on the backend crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Requests flow normally; failures are being counted.
    Closed,
    /// The endpoint is presumed down: requests are refused without a round
    /// trip until a cooldown elapses.
    Open,
    /// The cooldown elapsed: exactly one trial request probes the endpoint;
    /// everyone else is still refused until the probe settles.
    HalfOpen,
}

impl BreakerState {
    /// A stable lowercase tag naming the state (used in health reports).
    pub fn tag(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One backend load observation, as seen at the wire (or simulated-wire)
/// level.
///
/// These are *scheduling* signals, not results: they tell an admission
/// controller how the provider is coping, including events a retrying
/// backend absorbs before any caller sees them (a 429 that a later attempt
/// clears still cost a round trip and signals provider pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSignal {
    /// A request completed; `latency` is the backend-reported round trip.
    Completed {
        /// The (possibly simulated) round-trip latency.
        latency: Duration,
    },
    /// The provider shed load (HTTP 429 or an equivalent throttle).
    Throttled,
    /// A round trip timed out.
    TimedOut,
    /// A circuit breaker guarding one backend endpoint changed state (also
    /// emitted once per endpoint, in its initial state, when an observer
    /// subscribes — so observers always know the full endpoint set).
    Breaker {
        /// The endpoint's index in the backend's failover order (0 is the
        /// primary).
        endpoint: usize,
        /// The breaker's new state.
        state: BreakerState,
    },
}

/// An observer of per-model [`LoadSignal`]s.
///
/// Implemented by scheduling layers (the execution engine's per-model
/// sub-pools) and fed by backends via
/// [`LanguageModel::subscribe_load`]. Callbacks run on the backend's request
/// threads and must be cheap and non-blocking.
pub trait LoadObserver: Send + Sync {
    /// Reports one observation for the given routed model.
    fn observed(&self, model: ModelChoice, signal: LoadSignal);
}

/// How caching layers may treat a request.
///
/// Advisory: plain backends ignore it; the execution engine's completion
/// cache honors it. Not part of request identity — a `Bypass` request can
/// still *populate* nothing, but it never changes what a `Use` request keys
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CachePolicy {
    /// Serve from / store into completion caches (the default).
    #[default]
    Use,
    /// Skip caches entirely: always reach the backend, store nothing.
    Bypass,
}

/// Per-request options riding on a [`CompletionRequest`].
///
/// This is the carrier every layer shares: the `Query` builder in
/// `askit-core` fills it, the execution engine reads `cache` and keys on
/// `model`, and backends read `model` to route. New per-call knobs land here
/// once and flow through the whole stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RequestOptions {
    /// Which model should serve the request.
    pub model: ModelChoice,
    /// How caching layers may treat the request.
    pub cache: CachePolicy,
    /// Time-to-live for any cache entry this request creates. `None` defers
    /// to the caching layer's default. Like `cache`, this is service advice,
    /// not request identity: it never changes what the request keys to (see
    /// [`CompletionRequest::same_identity`]).
    pub ttl: Option<Duration>,
    /// How long a network backend may spend on this request's round trip
    /// before giving up with [`LlmError::Transport`]. `None` defers to the
    /// backend's configured default; in-process backends ignore it. Service
    /// advice, not identity — it is excluded from fingerprints and
    /// [`CompletionRequest::same_identity`], so changing the timeout still
    /// warm-starts from cached completions.
    pub timeout: Option<Duration>,
    /// The monotonic instant by which the *whole* request — every retry,
    /// every backoff sleep, every failover attempt — must have settled.
    ///
    /// Stamped once at admission (the serve route or the `Query` run) from
    /// `timeout`, then threaded unchanged through every layer: schedulers
    /// refuse to dispatch work whose deadline already passed (shedding with
    /// [`LlmError::DeadlineExceeded`]), retry loops clip their sleeps to the
    /// remaining budget, and network backends derive per-attempt socket
    /// timeouts from what's left. Unlike `timeout` (a per-hop advisory
    /// duration), the deadline is an absolute point in time, so it cannot
    /// silently re-arm across hops. Service advice, not identity — excluded
    /// from fingerprints and [`CompletionRequest::same_identity`].
    pub deadline: Option<Instant>,
    /// Opt-in request hedging: a multi-endpoint network backend may race a
    /// second attempt on its next healthy endpoint after a latency-
    /// percentile delay, first success wins. Costs up to one extra round
    /// trip per hedged attempt; pointless (and ignored) on single-endpoint
    /// or in-process backends. Service advice, not identity.
    pub hedge: bool,
    /// The request's trace identity for the observability layer, stamped
    /// once at admission (`run_direct`, or the serve front door when the
    /// caller propagated an `X-Askit-Trace-Id`) via
    /// [`RequestOptions::stamp_trace`]. Every layer annotates its spans
    /// and events with it. Service advice, not identity: two requests
    /// differing only in trace id share fingerprints, cache entries, and
    /// coalesced flights — tracing a request must never change how it is
    /// served.
    pub trace: Option<askit_obs::TraceId>,
}

impl RequestOptions {
    /// Options selecting a model with default cache behaviour.
    pub fn for_model(model: ModelChoice) -> Self {
        RequestOptions {
            model,
            ..RequestOptions::default()
        }
    }

    /// Stamps `deadline` as `now + timeout`, when a timeout is set and no
    /// deadline was stamped yet (re-stamping at an inner layer would extend
    /// the budget, which is exactly what deadline propagation forbids).
    #[must_use]
    pub fn stamp_deadline(mut self, now: Instant) -> Self {
        if self.deadline.is_none() {
            if let Some(timeout) = self.timeout {
                self.deadline = Some(now + timeout);
            }
        }
        self
    }

    /// Stamps the trace identity, when none was stamped yet. Idempotent
    /// like [`RequestOptions::stamp_deadline`]: an id propagated from an
    /// upstream caller (the serve front door) survives re-admission at
    /// inner layers, so one trace follows the request end to end.
    #[must_use]
    pub fn stamp_trace(mut self, id: askit_obs::TraceId) -> Self {
        if self.trace.is_none() {
            self.trace = Some(id);
        }
        self
    }

    /// The budget remaining until the deadline, saturating at zero once the
    /// deadline has passed. `None` when no deadline is stamped (the request
    /// may take as long as per-hop timeouts allow).
    pub fn remaining_budget(&self, now: Instant) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(now))
    }

    /// Whether the stamped deadline has passed. Requests without a deadline
    /// never expire.
    pub fn deadline_expired(&self, now: Instant) -> bool {
        matches!(self.deadline, Some(d) if d <= now)
    }

    /// Clips a candidate sleep or per-attempt timeout to the remaining
    /// deadline budget: the result never exceeds `candidate` and reaches
    /// zero exactly when the deadline has passed. Without a deadline the
    /// candidate passes through untouched.
    pub fn clip_to_deadline(&self, candidate: Duration, now: Instant) -> Duration {
        match self.remaining_budget(now) {
            Some(remaining) => candidate.min(remaining),
            None => candidate,
        }
    }
}

/// A completion request.
///
/// `temperature` matters to the mock the way it matters to the paper's
/// pipeline: "We use the default value of 1.0 … as we seek a certain level of
/// randomness in the responses to ensure a unique response for each retry"
/// (§III-D). At 0.0 the mock answers deterministically per conversation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionRequest {
    /// The conversation so far; the last message must be from the user.
    pub messages: Vec<ChatMessage>,
    /// Sampling temperature in `[0.0, 2.0]`.
    pub temperature: f64,
    /// Per-request options (model routing, cache policy).
    pub options: RequestOptions,
}

impl CompletionRequest {
    /// A single-turn request at the paper's default temperature (1.0).
    pub fn from_prompt(prompt: impl Into<String>) -> Self {
        CompletionRequest {
            messages: vec![ChatMessage::user(prompt)],
            temperature: 1.0,
            options: RequestOptions::default(),
        }
    }

    /// Replaces the per-request options.
    #[must_use]
    pub fn with_options(mut self, options: RequestOptions) -> Self {
        self.options = options;
        self
    }

    /// Total characters of prompt content (for token accounting).
    pub fn prompt_chars(&self) -> usize {
        self.messages.iter().map(|m| m.content.len()).sum()
    }

    /// The 64-bit FNV-1a hash of the request content (temperature, model
    /// choice, and the full conversation) — the salt-free core of
    /// [`CompletionRequest::fingerprint`].
    ///
    /// Callers on a hot path compute this once (or grow it incrementally
    /// with a [`RequestHasher`] as a retry conversation extends) and carry
    /// it on a [`PreparedRequest`]; deriving a salted fingerprint from it is
    /// then eight mixed bytes instead of a full conversation re-hash.
    pub fn content_hash(&self) -> u64 {
        RequestHasher::of(self).content_hash()
    }

    /// A stable 64-bit FNV-1a fingerprint of the request content
    /// (temperature, model choice, and the full conversation), extended
    /// with `salt`.
    ///
    /// This is the single definition of request identity: the execution
    /// engine's completion cache keys on it, and the simulated model derives
    /// its per-request randomness from it (salting with its seed). Keeping
    /// both behind one helper guarantees they stay in lockstep when the
    /// request shape grows. The cache policy is deliberately *not* mixed in:
    /// it changes how a request is served, not what it asks. The salt is
    /// mixed **after** the content so one memoized [`content_hash`] serves
    /// every salt (see [`RequestHasher::fingerprint`]).
    ///
    /// [`content_hash`]: CompletionRequest::content_hash
    pub fn fingerprint(&self, salt: u64) -> u64 {
        RequestHasher::of(self).fingerprint(salt)
    }

    /// Whether `other` names the same cacheable task as `self`.
    ///
    /// This is the collision-disambiguation counterpart of
    /// [`CompletionRequest::fingerprint`]: it compares exactly what the
    /// fingerprint hashes (conversation, temperature, routed model) and
    /// deliberately ignores the service-advice options (cache policy, TTL).
    /// Caches use it instead of `==` so that, e.g., a warm-start lookup made
    /// with a different TTL setting still finds the persisted entry.
    pub fn same_identity(&self, other: &CompletionRequest) -> bool {
        self.temperature == other.temperature
            && self.options.model == other.options.model
            && self.messages == other.messages
    }

    /// The exact byte stream [`CompletionRequest::fingerprint`] folds into
    /// its 64-bit hash: temperature bits, routed model (when not
    /// [`ModelChoice::Default`]), each message as role tag + content +
    /// separator, and finally `salt`.
    ///
    /// This is the bridge to *wider* identities: content-addressed storage
    /// (`askit-exec`'s shared store) hashes these same bytes with a 128-bit
    /// function, so a store CID and a cache fingerprint are two hashes of
    /// one preimage and can never disagree about what a request *is*. The
    /// unit test `identity_bytes_are_the_fingerprint_preimage` pins the
    /// equivalence: FNV-1a-64 over this buffer equals
    /// [`CompletionRequest::fingerprint`] for every request and salt.
    pub fn identity_bytes(&self, salt: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.prompt_chars() + 16 * self.messages.len() + 32);
        out.extend_from_slice(&self.temperature.to_bits().to_le_bytes());
        // `Default` contributes no bytes; see `RequestHasher::new`.
        if self.options.model != ModelChoice::Default {
            out.extend_from_slice(self.options.model.tag().as_bytes());
        }
        for message in &self.messages {
            out.extend_from_slice(message.role.as_str().as_bytes());
            out.extend_from_slice(message.content.as_bytes());
            out.push(0xFF); // message separator, as in `RequestHasher::push`
        }
        out.extend_from_slice(&salt.to_le_bytes());
        out
    }

    /// The most recent user message, if any.
    pub fn last_user(&self) -> Option<&str> {
        self.messages
            .iter()
            .rev()
            .find(|m| m.role == Role::User)
            .map(|m| m.content.as_str())
    }

    /// The first user message (the original task prompt in a feedback
    /// conversation).
    pub fn first_user(&self) -> Option<&str> {
        self.messages
            .iter()
            .find(|m| m.role == Role::User)
            .map(|m| m.content.as_str())
    }

    /// How many assistant turns are already in the conversation — i.e. how
    /// many failed attempts preceded this request.
    pub fn attempt(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.role == Role::Assistant)
            .count()
    }
}

/// Incremental FNV-1a hasher over request identity.
///
/// A feedback conversation grows append-only: each retry adds the model's
/// failed response and a corrective instruction to the *end* of the message
/// list. FNV-1a is a strictly left-to-right byte fold, so the hash of the
/// grown conversation is the hash of the prefix folded over the new bytes —
/// no part of the prefix is ever re-read. The `run_direct` retry loop keeps
/// one `RequestHasher` in lockstep with its message vector and derives every
/// attempt's cache key from it in O(new bytes), where re-hashing from
/// scratch would be O(whole conversation) per attempt.
///
/// The absorbed identity is exactly what
/// [`CompletionRequest::fingerprint`] hashes: temperature, routed model,
/// then each message (role tag, content, separator). Salts are mixed last,
/// by [`RequestHasher::fingerprint`], so one content hash serves every salt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestHasher {
    h: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl RequestHasher {
    /// Starts a hasher over the conversation-independent header: the
    /// temperature and the routed model. Messages are then absorbed in
    /// order with [`RequestHasher::push`].
    pub fn new(temperature: f64, model: ModelChoice) -> Self {
        let mut hasher = RequestHasher { h: FNV_OFFSET };
        hasher.mix(&temperature.to_bits().to_le_bytes());
        // `Default` contributes no bytes, so requests that predate routing
        // keep their fingerprints (and the simulated responses derived from
        // them) bit-for-bit.
        if model != ModelChoice::Default {
            hasher.mix(model.tag().as_bytes());
        }
        hasher
    }

    /// A hasher that has absorbed `request` whole.
    pub fn of(request: &CompletionRequest) -> Self {
        let mut hasher = RequestHasher::new(request.temperature, request.options.model);
        for message in &request.messages {
            hasher.push(message);
        }
        hasher
    }

    fn mix(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one more conversation turn.
    pub fn push(&mut self, message: &ChatMessage) {
        self.mix(message.role.as_str().as_bytes());
        self.mix(message.content.as_bytes());
        self.mix(&[0xFF]); // message separator
    }

    /// The hash of everything absorbed so far (salt-free).
    pub fn content_hash(&self) -> u64 {
        self.h
    }

    /// Extends the content hash with `salt` (without consuming the hasher,
    /// so the conversation can keep growing). This is the cheap tail of
    /// [`CompletionRequest::fingerprint`]: eight bytes, whatever the
    /// conversation length.
    pub fn fingerprint(&self, salt: u64) -> u64 {
        let mut tail = *self;
        tail.mix(&salt.to_le_bytes());
        tail.h
    }
}

/// A [`CompletionRequest`] paired with its memoized content hash.
///
/// Hot paths prepare a request once and submit it (possibly many times,
/// under many salts: retry samples, cache probes, the simulated model's RNG
/// derivation) without ever re-hashing the conversation. Constructing one
/// from a live [`RequestHasher`] via [`PreparedRequest::from_parts`] makes
/// the whole retry loop re-hash-free; see
/// [`LanguageModel::complete_prepared`].
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedRequest {
    request: CompletionRequest,
    content_hash: u64,
}

impl PreparedRequest {
    /// Prepares a request, hashing its full content once.
    pub fn new(request: CompletionRequest) -> Self {
        let content_hash = request.content_hash();
        PreparedRequest {
            request,
            content_hash,
        }
    }

    /// Pairs a request with a hash computed incrementally by the caller.
    ///
    /// The caller must have kept the hasher in lockstep with the request's
    /// content (debug builds verify this; release builds trust it — that
    /// trust is the whole point of the type).
    pub fn from_parts(request: CompletionRequest, content_hash: u64) -> Self {
        debug_assert_eq!(
            content_hash,
            request.content_hash(),
            "PreparedRequest hash out of lockstep with its request"
        );
        PreparedRequest {
            request,
            content_hash,
        }
    }

    /// The request itself.
    pub fn request(&self) -> &CompletionRequest {
        &self.request
    }

    /// The memoized salt-free content hash.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// The salted fingerprint — identical to
    /// `self.request().fingerprint(salt)`, at eight mixed bytes instead of a
    /// conversation re-hash.
    pub fn fingerprint(&self, salt: u64) -> u64 {
        let mut tail = RequestHasher {
            h: self.content_hash,
        };
        tail.mix(&salt.to_le_bytes());
        tail.h
    }

    /// Unwraps the request (e.g. to reclaim its message vector after a
    /// submission, avoiding a conversation clone per retry turn).
    pub fn into_request(self) -> CompletionRequest {
        self.request
    }
}

/// Token accounting for one completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TokenUsage {
    /// Tokens in the prompt.
    pub prompt_tokens: usize,
    /// Tokens in the completion.
    pub completion_tokens: usize,
}

impl TokenUsage {
    /// Prompt + completion tokens.
    pub fn total(&self) -> usize {
        self.prompt_tokens + self.completion_tokens
    }
}

/// A model response.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The response text.
    pub text: String,
    /// Token accounting.
    pub usage: TokenUsage,
    /// The (simulated) wall-clock latency of the round trip. The Table III
    /// experiment reads this instead of sleeping.
    pub latency: Duration,
}

/// An error from a language-model backend.
///
/// Network backends (`askit-llm-http`) must never embed credentials in the
/// `message` payloads here: these strings surface in logs, reports, and
/// test output. The HTTP client builds them exclusively from response
/// status lines and (truncated) response bodies, never from request
/// headers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LlmError {
    /// The backend has no response for this request (scripted backends).
    Exhausted,
    /// The request was malformed (e.g. empty conversation).
    InvalidRequest(String),
    /// The remote service answered with a non-success HTTP status that
    /// retrying did not (or could not) clear — e.g. a 401, a 404, or a
    /// 429/5xx that outlived the retry budget.
    Http {
        /// The HTTP status code of the final attempt.
        status: u16,
        /// A short, credential-free description (status text plus a
        /// truncated response-body snippet).
        message: String,
    },
    /// The request never produced a well-formed response: connect/read
    /// failures, timeouts, torn frames, mid-stream disconnects, or a body
    /// that did not parse as a chat completion.
    Transport(String),
    /// The request's end-to-end deadline (see [`RequestOptions::deadline`])
    /// passed before a result was available. Distinct from
    /// [`LlmError::Transport`] timeouts: a deadline miss is the *caller's*
    /// budget running out, so retrying on the same budget cannot help —
    /// schedulers shed such work instead of dispatching it.
    DeadlineExceeded,
}

impl LlmError {
    /// Whether another attempt at the same request could plausibly succeed.
    ///
    /// This is the single home of retry classification: backends' retry
    /// loops, the scheduler's load accounting, and callers deciding whether
    /// to fail over all consult it instead of matching status classes
    /// themselves.
    ///
    /// * Throttles (HTTP 429) and server-side failures (5xx) are retryable —
    ///   the provider may recover.
    /// * Transport faults (connect/read failures, timeouts, torn frames) are
    ///   retryable — another attempt may take a healthier path.
    /// * Client-side errors (other 4xx, malformed requests), exhausted
    ///   scripts, and deadline misses are not: resending the same bytes (or
    ///   spending a budget that is already gone) cannot change the answer.
    pub fn is_retryable(&self) -> bool {
        match self {
            LlmError::Http { status, .. } => *status == 429 || (500..=599).contains(status),
            LlmError::Transport(_) => true,
            LlmError::Exhausted | LlmError::InvalidRequest(_) | LlmError::DeadlineExceeded => false,
        }
    }
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::Exhausted => f.write_str("no scripted response left"),
            LlmError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            LlmError::Http { status, message } => write!(f, "http status {status}: {message}"),
            LlmError::Transport(m) => write!(f, "transport error: {m}"),
            LlmError::DeadlineExceeded => f.write_str("request deadline exceeded"),
        }
    }
}

impl Error for LlmError {}

/// A language model backend.
///
/// Implementations in this workspace: [`crate::MockLlm`] (the simulated
/// GPT), [`crate::ScriptedLlm`] (canned responses for unit tests), and
/// [`crate::RecordingLlm`] (a logging wrapper).
pub trait LanguageModel: Send + Sync {
    /// Produces a completion for the conversation.
    ///
    /// # Errors
    ///
    /// Backend-specific; see [`LlmError`].
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError>;

    /// Produces a completion for the `sample`-th resend of an otherwise
    /// identical conversation.
    ///
    /// Retry loops that resend a byte-identical prompt (the codegen pipeline,
    /// §III-D) pass the attempt ordinal here so backends and caches can
    /// distinguish "the same query again" (cacheable) from "a fresh sample of
    /// the same prompt" (must re-draw). The default ignores the ordinal.
    ///
    /// # Errors
    ///
    /// Backend-specific; see [`LlmError`].
    fn complete_tagged(
        &self,
        request: &CompletionRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        let _ = sample;
        self.complete(request)
    }

    /// Produces a completion for a request whose content hash the caller
    /// has already computed (or grown incrementally across retry turns).
    ///
    /// Semantically identical to
    /// [`complete_tagged`](LanguageModel::complete_tagged) on
    /// `prepared.request()`; the prepared hash only removes redundant work.
    /// Caching layers key on [`PreparedRequest::fingerprint`] and simulated
    /// backends derive their RNG from it — both are guaranteed equal to the
    /// plain request's fingerprint, so mixing prepared and unprepared
    /// submission of the same conversation is always coherent.
    ///
    /// # Errors
    ///
    /// Backend-specific; see [`LlmError`].
    fn complete_prepared(
        &self,
        prepared: &PreparedRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        self.complete_tagged(prepared.request(), sample)
    }

    /// Hints that the caller will *probably* submit `prepared` shortly —
    /// the speculative-prefetch hook.
    ///
    /// The `run_direct` retry loop calls this with the predicted feedback
    /// turn before validating a response, so a memoizing, pooled layer (the
    /// execution engine) can fetch the completion in the background while
    /// validation runs. Returns whether the speculation was accepted;
    /// backends with nothing to gain (no cache, no concurrency) return
    /// `false` and do no work — the default. A speculation that turns out
    /// to be wrong is withdrawn through
    /// [`reject_completion`](LanguageModel::reject_completion), so accepted
    /// prefetches never change observable results, only timing.
    fn prefetch(&self, prepared: &PreparedRequest) -> bool {
        let _ = prepared;
        false
    }

    /// [`reject_completion`](LanguageModel::reject_completion) for a
    /// request whose content hash the caller already holds — memoizing
    /// layers drop the entry without re-hashing the conversation. The
    /// default forwards to `reject_completion`.
    fn reject_prepared(&self, prepared: &PreparedRequest, sample: u64) {
        self.reject_completion(prepared.request(), sample);
    }

    /// Produces completions for a batch of independent requests, one result
    /// per request, in order.
    ///
    /// The default implementation loops over [`LanguageModel::complete`];
    /// backends with a cheaper batched path (or an execution engine fronting
    /// one) override it. Implementations must behave as if each request were
    /// completed individually — callers rely on per-request determinism.
    fn complete_batch(&self, requests: &[CompletionRequest]) -> Vec<Result<Completion, LlmError>> {
        requests
            .iter()
            .map(|request| self.complete(request))
            .collect()
    }

    /// Signals that the caller *rejected* the completion previously served
    /// for `(request, sample)` — it failed downstream validation.
    ///
    /// Memoizing layers use this to evict the entry so a temperature-sampled
    /// backend is re-asked instead of replaying a known-bad answer (the
    /// execution engine's completion cache does exactly that). Plain
    /// backends have nothing to forget; the default is a no-op.
    fn reject_completion(&self, request: &CompletionRequest, sample: u64) {
        let _ = (request, sample);
    }

    /// Registers an observer for backend load signals (completions,
    /// throttles, timeouts), keyed by routed model.
    ///
    /// Returns whether the backend will push signals. Backends that answer
    /// `false` (the default) report nothing at the wire level; a scheduling
    /// layer sitting above such a backend should classify the results it
    /// sees itself. Backends that answer `true` report *every* wire-level
    /// event, including throttles their own retry loop absorbs — the
    /// observer must not double-count by also classifying returned errors.
    fn subscribe_load(&self, observer: std::sync::Arc<dyn LoadObserver>) -> bool {
        let _ = observer;
        false
    }

    /// The model identifier (e.g. `sim-gpt-4`).
    fn model_name(&self) -> &str;
}

impl<L: LanguageModel + ?Sized> LanguageModel for &L {
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        (**self).complete(request)
    }

    fn complete_tagged(
        &self,
        request: &CompletionRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        (**self).complete_tagged(request, sample)
    }

    fn complete_prepared(
        &self,
        prepared: &PreparedRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        (**self).complete_prepared(prepared, sample)
    }

    fn prefetch(&self, prepared: &PreparedRequest) -> bool {
        (**self).prefetch(prepared)
    }

    fn reject_prepared(&self, prepared: &PreparedRequest, sample: u64) {
        (**self).reject_prepared(prepared, sample);
    }

    fn complete_batch(&self, requests: &[CompletionRequest]) -> Vec<Result<Completion, LlmError>> {
        (**self).complete_batch(requests)
    }

    fn reject_completion(&self, request: &CompletionRequest, sample: u64) {
        (**self).reject_completion(request, sample);
    }

    fn subscribe_load(&self, observer: std::sync::Arc<dyn LoadObserver>) -> bool {
        (**self).subscribe_load(observer)
    }

    fn model_name(&self) -> &str {
        (**self).model_name()
    }
}

impl<L: LanguageModel + ?Sized> LanguageModel for std::sync::Arc<L> {
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        (**self).complete(request)
    }

    fn complete_tagged(
        &self,
        request: &CompletionRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        (**self).complete_tagged(request, sample)
    }

    fn complete_prepared(
        &self,
        prepared: &PreparedRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        (**self).complete_prepared(prepared, sample)
    }

    fn prefetch(&self, prepared: &PreparedRequest) -> bool {
        (**self).prefetch(prepared)
    }

    fn reject_prepared(&self, prepared: &PreparedRequest, sample: u64) {
        (**self).reject_prepared(prepared, sample);
    }

    fn complete_batch(&self, requests: &[CompletionRequest]) -> Vec<Result<Completion, LlmError>> {
        (**self).complete_batch(requests)
    }

    fn reject_completion(&self, request: &CompletionRequest, sample: u64) {
        (**self).reject_completion(request, sample);
    }

    fn subscribe_load(&self, observer: std::sync::Arc<dyn LoadObserver>) -> bool {
        (**self).subscribe_load(observer)
    }

    fn model_name(&self) -> &str {
        (**self).model_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_choice_keys_the_fingerprint() {
        let base = CompletionRequest::from_prompt("q");
        let gpt35 = base
            .clone()
            .with_options(RequestOptions::for_model(ModelChoice::Gpt35));
        let gpt4 = base
            .clone()
            .with_options(RequestOptions::for_model(ModelChoice::Gpt4));
        assert_ne!(base.fingerprint(0), gpt35.fingerprint(0));
        assert_ne!(gpt35.fingerprint(0), gpt4.fingerprint(0));
        // The cache policy is service advice, not identity.
        let bypass = base.clone().with_options(RequestOptions {
            cache: CachePolicy::Bypass,
            ..RequestOptions::default()
        });
        assert_eq!(base.fingerprint(0), bypass.fingerprint(0));
    }

    #[test]
    fn identity_ignores_service_advice_but_not_routing() {
        let base = CompletionRequest::from_prompt("q");
        let advised = base.clone().with_options(RequestOptions {
            cache: CachePolicy::Bypass,
            ttl: Some(Duration::from_secs(60)),
            trace: askit_obs::TraceId::from_raw(0xfeed),
            ..RequestOptions::default()
        });
        // TTL, cache policy, and trace id change neither the fingerprint
        // nor identity.
        assert_eq!(base.fingerprint(7), advised.fingerprint(7));
        assert!(base.same_identity(&advised));
        assert_ne!(base, advised, "full equality does see the options");
        // Routing and temperature *are* identity.
        let routed = base
            .clone()
            .with_options(RequestOptions::for_model(ModelChoice::Gpt4));
        assert!(!base.same_identity(&routed));
        let mut cooled = base.clone();
        cooled.temperature = 0.0;
        assert!(!base.same_identity(&cooled));
    }

    #[test]
    fn request_helpers() {
        let mut req = CompletionRequest::from_prompt("solve this");
        assert_eq!(req.attempt(), 0);
        assert_eq!(req.last_user(), Some("solve this"));
        req.messages.push(ChatMessage::assistant("bad answer"));
        req.messages.push(ChatMessage::user("try again"));
        assert_eq!(req.attempt(), 1);
        assert_eq!(req.first_user(), Some("solve this"));
        assert_eq!(req.last_user(), Some("try again"));
        assert_eq!(
            req.prompt_chars(),
            "solve this".len() + "bad answer".len() + "try again".len()
        );
    }

    #[test]
    fn incremental_hasher_matches_scratch_hashing() {
        // Grow a conversation turn by turn; the incremental hasher must
        // agree with the from-scratch fingerprint at every prefix and salt.
        let mut req = CompletionRequest::from_prompt("solve this");
        req.options.model = ModelChoice::Gpt4;
        let mut hasher = RequestHasher::new(req.temperature, req.options.model);
        hasher.push(&req.messages[0]);
        for turn in 0..3 {
            assert_eq!(hasher.content_hash(), req.content_hash(), "turn {turn}");
            for salt in [0u64, 1, 0xDEAD_BEEF] {
                assert_eq!(hasher.fingerprint(salt), req.fingerprint(salt));
            }
            let bad = ChatMessage::assistant(format!("wrong answer {turn}"));
            let fix = ChatMessage::user("try again");
            hasher.push(&bad);
            hasher.push(&fix);
            req.messages.push(bad);
            req.messages.push(fix);
        }
    }

    #[test]
    fn prepared_requests_agree_with_plain_fingerprints() {
        let req = CompletionRequest::from_prompt("q");
        let prepared = PreparedRequest::new(req.clone());
        assert_eq!(prepared.content_hash(), req.content_hash());
        for salt in [0u64, 7, u64::MAX] {
            assert_eq!(prepared.fingerprint(salt), req.fingerprint(salt));
        }
        assert_eq!(prepared.into_request(), req);
    }

    #[test]
    fn identity_bytes_are_the_fingerprint_preimage() {
        // FNV-1a-64 over `identity_bytes` must equal `fingerprint` for any
        // request shape and salt — the contract that lets wider hashes
        // (content-addressed store CIDs) share the 64-bit key's preimage.
        let fnv64 = |bytes: &[u8]| {
            let mut h = FNV_OFFSET;
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
            h
        };
        let mut req = CompletionRequest::from_prompt("solve this");
        for salt in [0u64, 1, 0xDEAD_BEEF] {
            assert_eq!(fnv64(&req.identity_bytes(salt)), req.fingerprint(salt));
        }
        req.options.model = ModelChoice::Gpt4;
        req.temperature = 0.25;
        req.messages.push(ChatMessage::assistant("bad answer"));
        req.messages.push(ChatMessage::user("try again"));
        for salt in [0u64, 42] {
            assert_eq!(fnv64(&req.identity_bytes(salt)), req.fingerprint(salt));
        }
        // Service advice (cache policy, TTL, timeout, deadline, trace)
        // stays out of the preimage.
        let advised = req.clone().with_options(RequestOptions {
            model: ModelChoice::Gpt4,
            cache: CachePolicy::Bypass,
            ttl: Some(Duration::from_secs(60)),
            timeout: Some(Duration::from_secs(5)),
            deadline: Some(Instant::now()),
            hedge: true,
            trace: askit_obs::TraceId::from_raw(9),
        });
        assert_eq!(req.identity_bytes(3), advised.identity_bytes(3));
    }

    #[test]
    fn deadline_is_service_advice_not_identity() {
        let base = CompletionRequest::from_prompt("q");
        let mut dated = base.clone();
        dated.options.timeout = Some(Duration::from_secs(3));
        dated.options = dated.options.stamp_deadline(Instant::now());
        assert!(dated.options.deadline.is_some());
        assert_eq!(base.fingerprint(11), dated.fingerprint(11));
        assert!(base.same_identity(&dated));
    }

    #[test]
    fn deadline_stamping_and_budget_arithmetic() {
        let now = Instant::now();
        // No timeout → no deadline, no expiry, clipping passes through.
        let bare = RequestOptions::default().stamp_deadline(now);
        assert_eq!(bare.deadline, None);
        assert!(!bare.deadline_expired(now));
        assert_eq!(bare.remaining_budget(now), None);
        let candidate = Duration::from_millis(250);
        assert_eq!(bare.clip_to_deadline(candidate, now), candidate);

        // A timeout stamps now + timeout, once.
        let mut timed = RequestOptions {
            timeout: Some(Duration::from_secs(2)),
            ..RequestOptions::default()
        }
        .stamp_deadline(now);
        assert_eq!(timed.deadline, Some(now + Duration::from_secs(2)));
        // Re-stamping later must NOT extend the budget.
        let restamped = timed.stamp_deadline(now + Duration::from_secs(1));
        assert_eq!(restamped.deadline, timed.deadline);

        // Mid-budget: remaining shrinks, clipping caps at the remainder.
        let mid = now + Duration::from_millis(1500);
        assert_eq!(
            timed.remaining_budget(mid),
            Some(Duration::from_millis(500))
        );
        assert_eq!(
            timed.clip_to_deadline(Duration::from_secs(10), mid),
            Duration::from_millis(500)
        );
        assert_eq!(
            timed.clip_to_deadline(Duration::from_millis(100), mid),
            Duration::from_millis(100),
            "clipping never lengthens a short candidate"
        );

        // Past the deadline: expired, zero budget, zero clip — never an
        // underflow panic.
        let late = now + Duration::from_secs(5);
        assert!(timed.deadline_expired(late));
        assert_eq!(timed.remaining_budget(late), Some(Duration::ZERO));
        assert_eq!(timed.clip_to_deadline(candidate, late), Duration::ZERO);

        // The exact deadline instant counts as expired (a zero budget is no
        // budget).
        timed.deadline = Some(mid);
        assert!(timed.deadline_expired(mid));
    }

    #[test]
    fn retryability_classification() {
        assert!(LlmError::Http {
            status: 429,
            message: String::new()
        }
        .is_retryable());
        assert!(LlmError::Http {
            status: 503,
            message: String::new()
        }
        .is_retryable());
        assert!(LlmError::Transport("connection reset".into()).is_retryable());
        assert!(!LlmError::Http {
            status: 401,
            message: String::new()
        }
        .is_retryable());
        assert!(!LlmError::Http {
            status: 404,
            message: String::new()
        }
        .is_retryable());
        assert!(!LlmError::InvalidRequest("empty".into()).is_retryable());
        assert!(!LlmError::Exhausted.is_retryable());
        assert!(!LlmError::DeadlineExceeded.is_retryable());
        assert_eq!(
            LlmError::DeadlineExceeded.to_string(),
            "request deadline exceeded"
        );
    }

    #[test]
    fn salt_is_mixed_after_content() {
        // Different salts over the same content must still diverge...
        let req = CompletionRequest::from_prompt("q");
        assert_ne!(req.fingerprint(0), req.fingerprint(1));
        // ...and different content under the same salt too.
        let other = CompletionRequest::from_prompt("r");
        assert_ne!(req.fingerprint(0), other.fingerprint(0));
    }

    #[test]
    fn escalation_ladders() {
        assert!(Escalation::OFF.is_off());
        assert_eq!(Escalation::default(), Escalation::OFF);
        assert_eq!(Escalation::OFF.tiers(), &[] as &[ModelChoice]);
        assert_eq!(format!("{}", Escalation::OFF), "off");

        let ladder = Escalation::cheap_first();
        assert!(!ladder.is_off());
        assert_eq!(ladder.tiers(), &[ModelChoice::Gpt35, ModelChoice::Gpt4]);
        assert_eq!(format!("{ladder}"), "gpt35→gpt4");

        // Over-long input truncates at one tier per variant.
        let long = Escalation::ladder(&[
            ModelChoice::Default,
            ModelChoice::Gpt35,
            ModelChoice::Gpt4,
            ModelChoice::Gpt4,
        ]);
        assert_eq!(long.tiers().len(), 3);
    }

    #[test]
    fn usage_totals() {
        let u = TokenUsage {
            prompt_tokens: 10,
            completion_tokens: 5,
        };
        assert_eq!(u.total(), 15);
    }
}
