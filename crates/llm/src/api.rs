//! The language-model interface: chat messages, requests, completions.
//!
//! This is the "low-level API provided by the LLM" the paper's Step 2 calls
//! into (§III-D, §III-E) — the shape mirrors a chat-completion API, minus the
//! network.

use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Who authored a chat message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The system preamble.
    System,
    /// The application (AskIt compiler/runtime).
    User,
    /// The model.
    Assistant,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::System => "system",
            Role::User => "user",
            Role::Assistant => "assistant",
        })
    }
}

/// One chat message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatMessage {
    /// Message author.
    pub role: Role,
    /// Message text.
    pub content: String,
}

impl ChatMessage {
    /// A user message.
    pub fn user(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::User,
            content: content.into(),
        }
    }

    /// An assistant message.
    pub fn assistant(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::Assistant,
            content: content.into(),
        }
    }

    /// A system message.
    pub fn system(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::System,
            content: content.into(),
        }
    }
}

/// Which model a request should be served by.
///
/// The unit of AskIt's cost/accuracy trade-off (paper Table III): route
/// cheap tasks to a fast model and hard ones to a strong model, per request.
/// Backends that serve only one model ignore the choice; [`crate::MockLlm`]
/// serves the request under the routed model's latency/cost profile (fault
/// rates stay as configured), which is the same hook a network backend uses
/// to pick the wire model name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelChoice {
    /// Whatever model the backend was configured with.
    #[default]
    Default,
    /// A GPT-3.5-turbo-class model: fast, cheap, sloppier.
    Gpt35,
    /// A GPT-4-class model: slow, expensive, accurate.
    Gpt4,
}

impl ModelChoice {
    /// A stable tag naming the choice (used in cache keys and reports).
    pub fn tag(&self) -> &'static str {
        match self {
            ModelChoice::Default => "default",
            ModelChoice::Gpt35 => "gpt35",
            ModelChoice::Gpt4 => "gpt4",
        }
    }
}

impl fmt::Display for ModelChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// How caching layers may treat a request.
///
/// Advisory: plain backends ignore it; the execution engine's completion
/// cache honors it. Not part of request identity — a `Bypass` request can
/// still *populate* nothing, but it never changes what a `Use` request keys
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CachePolicy {
    /// Serve from / store into completion caches (the default).
    #[default]
    Use,
    /// Skip caches entirely: always reach the backend, store nothing.
    Bypass,
}

/// Per-request options riding on a [`CompletionRequest`].
///
/// This is the carrier every layer shares: the `Query` builder in
/// `askit-core` fills it, the execution engine reads `cache` and keys on
/// `model`, and backends read `model` to route. New per-call knobs land here
/// once and flow through the whole stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RequestOptions {
    /// Which model should serve the request.
    pub model: ModelChoice,
    /// How caching layers may treat the request.
    pub cache: CachePolicy,
    /// Time-to-live for any cache entry this request creates. `None` defers
    /// to the caching layer's default. Like `cache`, this is service advice,
    /// not request identity: it never changes what the request keys to (see
    /// [`CompletionRequest::same_identity`]).
    pub ttl: Option<Duration>,
}

impl RequestOptions {
    /// Options selecting a model with default cache behaviour.
    pub fn for_model(model: ModelChoice) -> Self {
        RequestOptions {
            model,
            ..RequestOptions::default()
        }
    }
}

/// A completion request.
///
/// `temperature` matters to the mock the way it matters to the paper's
/// pipeline: "We use the default value of 1.0 … as we seek a certain level of
/// randomness in the responses to ensure a unique response for each retry"
/// (§III-D). At 0.0 the mock answers deterministically per conversation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionRequest {
    /// The conversation so far; the last message must be from the user.
    pub messages: Vec<ChatMessage>,
    /// Sampling temperature in `[0.0, 2.0]`.
    pub temperature: f64,
    /// Per-request options (model routing, cache policy).
    pub options: RequestOptions,
}

impl CompletionRequest {
    /// A single-turn request at the paper's default temperature (1.0).
    pub fn from_prompt(prompt: impl Into<String>) -> Self {
        CompletionRequest {
            messages: vec![ChatMessage::user(prompt)],
            temperature: 1.0,
            options: RequestOptions::default(),
        }
    }

    /// Replaces the per-request options.
    #[must_use]
    pub fn with_options(mut self, options: RequestOptions) -> Self {
        self.options = options;
        self
    }

    /// Total characters of prompt content (for token accounting).
    pub fn prompt_chars(&self) -> usize {
        self.messages.iter().map(|m| m.content.len()).sum()
    }

    /// A stable 64-bit FNV-1a fingerprint of the request content
    /// (temperature, model choice, and the full conversation), mixed with
    /// `salt`.
    ///
    /// This is the single definition of request identity: the execution
    /// engine's completion cache keys on it, and the simulated model derives
    /// its per-request randomness from it (salting with its seed). Keeping
    /// both behind one helper guarantees they stay in lockstep when the
    /// request shape grows. The cache policy is deliberately *not* mixed in:
    /// it changes how a request is served, not what it asks.
    pub fn fingerprint(&self, salt: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(&salt.to_le_bytes());
        mix(&self.temperature.to_bits().to_le_bytes());
        // `Default` contributes no bytes, so requests that predate routing
        // keep their fingerprints (and the simulated responses derived from
        // them) bit-for-bit.
        if self.options.model != ModelChoice::Default {
            mix(self.options.model.tag().as_bytes());
        }
        for message in &self.messages {
            mix(message.role.to_string().as_bytes());
            mix(message.content.as_bytes());
            mix(&[0xFF]); // message separator
        }
        h
    }

    /// Whether `other` names the same cacheable task as `self`.
    ///
    /// This is the collision-disambiguation counterpart of
    /// [`CompletionRequest::fingerprint`]: it compares exactly what the
    /// fingerprint hashes (conversation, temperature, routed model) and
    /// deliberately ignores the service-advice options (cache policy, TTL).
    /// Caches use it instead of `==` so that, e.g., a warm-start lookup made
    /// with a different TTL setting still finds the persisted entry.
    pub fn same_identity(&self, other: &CompletionRequest) -> bool {
        self.temperature == other.temperature
            && self.options.model == other.options.model
            && self.messages == other.messages
    }

    /// The most recent user message, if any.
    pub fn last_user(&self) -> Option<&str> {
        self.messages
            .iter()
            .rev()
            .find(|m| m.role == Role::User)
            .map(|m| m.content.as_str())
    }

    /// The first user message (the original task prompt in a feedback
    /// conversation).
    pub fn first_user(&self) -> Option<&str> {
        self.messages
            .iter()
            .find(|m| m.role == Role::User)
            .map(|m| m.content.as_str())
    }

    /// How many assistant turns are already in the conversation — i.e. how
    /// many failed attempts preceded this request.
    pub fn attempt(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.role == Role::Assistant)
            .count()
    }
}

/// Token accounting for one completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TokenUsage {
    /// Tokens in the prompt.
    pub prompt_tokens: usize,
    /// Tokens in the completion.
    pub completion_tokens: usize,
}

impl TokenUsage {
    /// Prompt + completion tokens.
    pub fn total(&self) -> usize {
        self.prompt_tokens + self.completion_tokens
    }
}

/// A model response.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The response text.
    pub text: String,
    /// Token accounting.
    pub usage: TokenUsage,
    /// The (simulated) wall-clock latency of the round trip. The Table III
    /// experiment reads this instead of sleeping.
    pub latency: Duration,
}

/// An error from a language-model backend.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LlmError {
    /// The backend has no response for this request (scripted backends).
    Exhausted,
    /// The request was malformed (e.g. empty conversation).
    InvalidRequest(String),
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::Exhausted => f.write_str("no scripted response left"),
            LlmError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl Error for LlmError {}

/// A language model backend.
///
/// Implementations in this workspace: [`crate::MockLlm`] (the simulated
/// GPT), [`crate::ScriptedLlm`] (canned responses for unit tests), and
/// [`crate::RecordingLlm`] (a logging wrapper).
pub trait LanguageModel: Send + Sync {
    /// Produces a completion for the conversation.
    ///
    /// # Errors
    ///
    /// Backend-specific; see [`LlmError`].
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError>;

    /// Produces a completion for the `sample`-th resend of an otherwise
    /// identical conversation.
    ///
    /// Retry loops that resend a byte-identical prompt (the codegen pipeline,
    /// §III-D) pass the attempt ordinal here so backends and caches can
    /// distinguish "the same query again" (cacheable) from "a fresh sample of
    /// the same prompt" (must re-draw). The default ignores the ordinal.
    ///
    /// # Errors
    ///
    /// Backend-specific; see [`LlmError`].
    fn complete_tagged(
        &self,
        request: &CompletionRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        let _ = sample;
        self.complete(request)
    }

    /// Produces completions for a batch of independent requests, one result
    /// per request, in order.
    ///
    /// The default implementation loops over [`LanguageModel::complete`];
    /// backends with a cheaper batched path (or an execution engine fronting
    /// one) override it. Implementations must behave as if each request were
    /// completed individually — callers rely on per-request determinism.
    fn complete_batch(&self, requests: &[CompletionRequest]) -> Vec<Result<Completion, LlmError>> {
        requests
            .iter()
            .map(|request| self.complete(request))
            .collect()
    }

    /// Signals that the caller *rejected* the completion previously served
    /// for `(request, sample)` — it failed downstream validation.
    ///
    /// Memoizing layers use this to evict the entry so a temperature-sampled
    /// backend is re-asked instead of replaying a known-bad answer (the
    /// execution engine's completion cache does exactly that). Plain
    /// backends have nothing to forget; the default is a no-op.
    fn reject_completion(&self, request: &CompletionRequest, sample: u64) {
        let _ = (request, sample);
    }

    /// The model identifier (e.g. `sim-gpt-4`).
    fn model_name(&self) -> &str;
}

impl<L: LanguageModel + ?Sized> LanguageModel for &L {
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        (**self).complete(request)
    }

    fn complete_tagged(
        &self,
        request: &CompletionRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        (**self).complete_tagged(request, sample)
    }

    fn complete_batch(&self, requests: &[CompletionRequest]) -> Vec<Result<Completion, LlmError>> {
        (**self).complete_batch(requests)
    }

    fn reject_completion(&self, request: &CompletionRequest, sample: u64) {
        (**self).reject_completion(request, sample);
    }

    fn model_name(&self) -> &str {
        (**self).model_name()
    }
}

impl<L: LanguageModel + ?Sized> LanguageModel for std::sync::Arc<L> {
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        (**self).complete(request)
    }

    fn complete_tagged(
        &self,
        request: &CompletionRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        (**self).complete_tagged(request, sample)
    }

    fn complete_batch(&self, requests: &[CompletionRequest]) -> Vec<Result<Completion, LlmError>> {
        (**self).complete_batch(requests)
    }

    fn reject_completion(&self, request: &CompletionRequest, sample: u64) {
        (**self).reject_completion(request, sample);
    }

    fn model_name(&self) -> &str {
        (**self).model_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_choice_keys_the_fingerprint() {
        let base = CompletionRequest::from_prompt("q");
        let gpt35 = base
            .clone()
            .with_options(RequestOptions::for_model(ModelChoice::Gpt35));
        let gpt4 = base
            .clone()
            .with_options(RequestOptions::for_model(ModelChoice::Gpt4));
        assert_ne!(base.fingerprint(0), gpt35.fingerprint(0));
        assert_ne!(gpt35.fingerprint(0), gpt4.fingerprint(0));
        // The cache policy is service advice, not identity.
        let bypass = base.clone().with_options(RequestOptions {
            cache: CachePolicy::Bypass,
            ..RequestOptions::default()
        });
        assert_eq!(base.fingerprint(0), bypass.fingerprint(0));
    }

    #[test]
    fn identity_ignores_service_advice_but_not_routing() {
        let base = CompletionRequest::from_prompt("q");
        let advised = base.clone().with_options(RequestOptions {
            cache: CachePolicy::Bypass,
            ttl: Some(Duration::from_secs(60)),
            ..RequestOptions::default()
        });
        // TTL and cache policy change neither the fingerprint nor identity.
        assert_eq!(base.fingerprint(7), advised.fingerprint(7));
        assert!(base.same_identity(&advised));
        assert_ne!(base, advised, "full equality does see the options");
        // Routing and temperature *are* identity.
        let routed = base
            .clone()
            .with_options(RequestOptions::for_model(ModelChoice::Gpt4));
        assert!(!base.same_identity(&routed));
        let mut cooled = base.clone();
        cooled.temperature = 0.0;
        assert!(!base.same_identity(&cooled));
    }

    #[test]
    fn request_helpers() {
        let mut req = CompletionRequest::from_prompt("solve this");
        assert_eq!(req.attempt(), 0);
        assert_eq!(req.last_user(), Some("solve this"));
        req.messages.push(ChatMessage::assistant("bad answer"));
        req.messages.push(ChatMessage::user("try again"));
        assert_eq!(req.attempt(), 1);
        assert_eq!(req.first_user(), Some("solve this"));
        assert_eq!(req.last_user(), Some("try again"));
        assert_eq!(
            req.prompt_chars(),
            "solve this".len() + "bad answer".len() + "try again".len()
        );
    }

    #[test]
    fn usage_totals() {
        let u = TokenUsage {
            prompt_tokens: 10,
            completion_tokens: 5,
        };
        assert_eq!(u.total(), 15);
    }
}
