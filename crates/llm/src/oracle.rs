//! The oracle: the mock model's stand-in for pretraining knowledge.
//!
//! A real LLM answers tasks because it has absorbed the world; the simulated
//! one answers because datasets *register* knowledge here. That makes the
//! knowledge boundary explicit and auditable: everything the mock can do is
//! an [`AnswerSkill`] or a [`CodeSkill`] in this registry, plus the two
//! generic skills every GPT-class model clearly has (small arithmetic and
//! sentiment words).

use askit_json::{Json, Map};
use askit_types::Type;
use minilang::pretty::Syntax;
use minilang::{FuncDecl, Param};

/// A directly answerable task, as the mock model understands it after
/// reading the runtime prompt (paper Listing 2).
#[derive(Debug)]
pub struct AnswerTask<'a> {
    /// The task template with quoted parameter names (Listing 2 line 11),
    /// e.g. `List 'n' classic books on 'subject'.`
    pub template: &'a str,
    /// The parameter bindings (Listing 2 line 12).
    pub bindings: &'a Map,
    /// The expected type of the `answer` field.
    pub answer_type: &'a Type,
}

/// What a skill produces for a direct task.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerOutcome {
    /// The answer value (should conform to the requested type).
    pub answer: Json,
    /// The chain-of-thought the model narrates in the `reason` field.
    pub reason: String,
}

impl AnswerOutcome {
    /// Convenience constructor.
    pub fn new(answer: Json, reason: impl Into<String>) -> Self {
        AnswerOutcome {
            answer,
            reason: reason.into(),
        }
    }
}

/// Knowledge for directly answerable tasks.
pub trait AnswerSkill: Send + Sync {
    /// Skill name (diagnostics only).
    fn name(&self) -> &str;

    /// Attempts the task; `None` means "this skill doesn't know".
    fn try_answer(&self, task: &AnswerTask<'_>) -> Option<AnswerOutcome>;
}

/// A codable task, as the mock model understands it after reading the
/// Figure 4 prompt: the empty function's signature plus the instruction
/// comment in its body.
#[derive(Debug)]
pub struct CodeTask<'a> {
    /// The instruction comment, e.g. `Calculate the factorial of 'n'`.
    pub instruction: &'a str,
    /// The function name the compiler chose.
    pub name: &'a str,
    /// The declared parameters. In the Python pipeline these arrive untyped
    /// (`any`), which is exactly the information loss behind the paper's
    /// Python failures on Table II tasks #11 and #21–24.
    pub params: &'a [Param],
    /// The declared return type.
    pub ret: &'a Type,
    /// The surface syntax the reply must be written in.
    pub syntax: Syntax,
}

/// Knowledge for codable tasks.
pub trait CodeSkill: Send + Sync {
    /// Skill name (diagnostics only).
    fn name(&self) -> &str;

    /// Attempts an implementation; `None` means "this skill doesn't know".
    /// The returned declaration's name/params/ret are overwritten with the
    /// requested signature by the mock before printing.
    fn try_implement(&self, task: &CodeTask<'_>) -> Option<FuncDecl>;
}

/// The registry of everything the mock model knows.
pub struct Oracle {
    answers: Vec<Box<dyn AnswerSkill>>,
    code: Vec<Box<dyn CodeSkill>>,
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle")
            .field(
                "answer_skills",
                &self.answers.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field(
                "code_skills",
                &self.code.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle::standard()
    }
}

impl Oracle {
    /// An oracle with no knowledge at all.
    pub fn empty() -> Self {
        Oracle {
            answers: Vec::new(),
            code: Vec::new(),
        }
    }

    /// An oracle with the generic skills: small arithmetic and sentiment.
    pub fn standard() -> Self {
        let mut o = Oracle::empty();
        o.add_answer(ArithmeticSkill);
        o.add_answer(SentimentSkill);
        o
    }

    /// Registers an answer skill (later registrations are consulted first,
    /// so datasets can override the generic skills).
    pub fn add_answer(&mut self, skill: impl AnswerSkill + 'static) {
        self.answers.insert(0, Box::new(skill));
    }

    /// Registers a code skill (later registrations are consulted first).
    pub fn add_code(&mut self, skill: impl CodeSkill + 'static) {
        self.code.insert(0, Box::new(skill));
    }

    /// Registers an answer skill from a closure.
    pub fn add_answer_fn<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&AnswerTask<'_>) -> Option<AnswerOutcome> + Send + Sync + 'static,
    {
        self.add_answer(FnAnswerSkill {
            name: name.to_owned(),
            f,
        });
    }

    /// Registers a code skill from a closure.
    pub fn add_code_fn<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&CodeTask<'_>) -> Option<FuncDecl> + Send + Sync + 'static,
    {
        self.add_code(FnCodeSkill {
            name: name.to_owned(),
            f,
        });
    }

    /// Consults the answer skills in order.
    pub fn answer(&self, task: &AnswerTask<'_>) -> Option<AnswerOutcome> {
        self.answers.iter().find_map(|s| s.try_answer(task))
    }

    /// Consults the code skills in order.
    pub fn implement(&self, task: &CodeTask<'_>) -> Option<FuncDecl> {
        self.code.iter().find_map(|s| s.try_implement(task))
    }

    /// Number of registered skills `(answer, code)`.
    pub fn skill_counts(&self) -> (usize, usize) {
        (self.answers.len(), self.code.len())
    }
}

struct FnAnswerSkill<F> {
    name: String,
    f: F,
}

impl<F> AnswerSkill for FnAnswerSkill<F>
where
    F: Fn(&AnswerTask<'_>) -> Option<AnswerOutcome> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn try_answer(&self, task: &AnswerTask<'_>) -> Option<AnswerOutcome> {
        (self.f)(task)
    }
}

struct FnCodeSkill<F> {
    name: String,
    f: F,
}

impl<F> CodeSkill for FnCodeSkill<F>
where
    F: Fn(&CodeTask<'_>) -> Option<FuncDecl> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn try_implement(&self, task: &CodeTask<'_>) -> Option<FuncDecl> {
        (self.f)(task)
    }
}

// ---------------------------------------------------------------------------
// Generic skills
// ---------------------------------------------------------------------------

/// Small natural-language arithmetic: "What is 7 times 8?",
/// "What is 'x' plus 'y'?" with bound variables.
struct ArithmeticSkill;

/// A binary arithmetic operation over two operands.
type BinaryOp = fn(f64, f64) -> f64;

impl AnswerSkill for ArithmeticSkill {
    fn name(&self) -> &str {
        "arithmetic"
    }

    fn try_answer(&self, task: &AnswerTask<'_>) -> Option<AnswerOutcome> {
        let text = task.template.to_lowercase();
        let rest = text.strip_prefix("what is ")?;
        let rest = rest.trim_end_matches(['?', '.', ' ']);
        let ops: [(&str, BinaryOp); 5] = [
            (" times ", |a, b| a * b),
            (" multiplied by ", |a, b| a * b),
            (" plus ", |a, b| a + b),
            (" minus ", |a, b| a - b),
            (" divided by ", |a, b| a / b),
        ];
        for (word, op) in ops {
            if let Some((lhs, rhs)) = rest.split_once(word) {
                let a = resolve_operand(lhs, task.bindings)?;
                let b = resolve_operand(rhs, task.bindings)?;
                let result = op(a, b);
                let answer = if result.fract() == 0.0 && result.abs() < 9.0e15 {
                    Json::Int(result as i64)
                } else {
                    Json::Float(result)
                };
                return Some(AnswerOutcome::new(
                    answer,
                    format!("Computing {lhs}{word}{rhs} step by step gives {result}."),
                ));
            }
        }
        None
    }
}

fn resolve_operand(text: &str, bindings: &Map) -> Option<f64> {
    let t = text.trim();
    if let Some(name) = t.strip_prefix('\'').and_then(|t| t.strip_suffix('\'')) {
        return bindings.get(name).and_then(Json::as_f64);
    }
    t.parse::<f64>().ok()
}

/// Word-count sentiment over the bound review text.
struct SentimentSkill;

const POSITIVE_WORDS: &[&str] = &[
    "fantastic",
    "great",
    "good",
    "love",
    "loved",
    "excellent",
    "amazing",
    "exceeds",
    "wonderful",
    "perfect",
    "happy",
    "best",
    "awesome",
    "nice",
    "enjoy",
    "delightful",
    "impressive",
    "recommend",
    "reliable",
    "outstanding",
];

const NEGATIVE_WORDS: &[&str] = &[
    "bad",
    "terrible",
    "awful",
    "poor",
    "disappointing",
    "disappointed",
    "broke",
    "broken",
    "hate",
    "hated",
    "worst",
    "refund",
    "waste",
    "defective",
    "useless",
    "slow",
    "cheap",
    "regret",
    "fails",
    "failed",
];

impl AnswerSkill for SentimentSkill {
    fn name(&self) -> &str {
        "sentiment"
    }

    fn try_answer(&self, task: &AnswerTask<'_>) -> Option<AnswerOutcome> {
        if !task.template.to_lowercase().contains("sentiment") {
            return None;
        }
        // The review is either a bound string or inline in the template.
        let mut text = String::new();
        for (_, v) in task.bindings.iter() {
            if let Json::Str(s) = v {
                text.push_str(s);
                text.push(' ');
            }
        }
        text.push_str(task.template);
        let lower = text.to_lowercase();
        let pos = POSITIVE_WORDS.iter().filter(|w| lower.contains(*w)).count();
        let neg = NEGATIVE_WORDS.iter().filter(|w| lower.contains(*w)).count();
        let label = if pos >= neg { "positive" } else { "negative" };
        Some(AnswerOutcome::new(
            Json::from(label),
            format!("Found {pos} positive and {neg} negative cue(s), so the sentiment is {label}."),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askit_json::json;

    fn task<'a>(template: &'a str, bindings: &'a Map, ty: &'a Type) -> AnswerTask<'a> {
        AnswerTask {
            template,
            bindings,
            answer_type: ty,
        }
    }

    #[test]
    fn arithmetic_literal_operands() {
        let o = Oracle::standard();
        let b = Map::new();
        let ty = askit_types::int();
        let out = o.answer(&task("What is 7 times 8?", &b, &ty)).unwrap();
        assert_eq!(out.answer, Json::Int(56));
        let out = o
            .answer(&task("What is 10 divided by 4?", &b, &ty))
            .unwrap();
        assert_eq!(out.answer, Json::Float(2.5));
    }

    #[test]
    fn arithmetic_bound_operands() {
        let o = Oracle::standard();
        let mut b = Map::new();
        b.insert("x", json!(21i64));
        b.insert("y", json!(2i64));
        let ty = askit_types::int();
        let out = o.answer(&task("What is 'x' times 'y'?", &b, &ty)).unwrap();
        assert_eq!(out.answer, Json::Int(42));
    }

    #[test]
    fn sentiment_uses_bound_review() {
        let o = Oracle::standard();
        let mut b = Map::new();
        b.insert(
            "review",
            json!("The product is fantastic. It exceeds all my expectations."),
        );
        let ty = askit_types::union([
            askit_types::literal("positive"),
            askit_types::literal("negative"),
        ]);
        let out = o
            .answer(&task("What is the sentiment of 'review'?", &b, &ty))
            .unwrap();
        assert_eq!(out.answer, Json::from("positive"));

        let mut b2 = Map::new();
        b2.insert(
            "review",
            json!("Terrible. It broke after a day, total waste."),
        );
        let out = o
            .answer(&task("What is the sentiment of 'review'?", &b2, &ty))
            .unwrap();
        assert_eq!(out.answer, Json::from("negative"));
    }

    #[test]
    fn unknown_tasks_return_none() {
        let o = Oracle::standard();
        let b = Map::new();
        let ty = askit_types::string();
        assert!(o
            .answer(&task("Translate 'hello' to French.", &b, &ty))
            .is_none());
    }

    #[test]
    fn registered_skills_take_priority() {
        let mut o = Oracle::standard();
        o.add_answer_fn("override", |t| {
            t.template
                .contains("times")
                .then(|| AnswerOutcome::new(Json::Int(0), "nope"))
        });
        let b = Map::new();
        let ty = askit_types::int();
        let out = o.answer(&task("What is 7 times 8?", &b, &ty)).unwrap();
        assert_eq!(out.answer, Json::Int(0), "later registration wins");
        assert_eq!(o.skill_counts().0, 3);
    }

    #[test]
    fn code_skills_dispatch() {
        let mut o = Oracle::empty();
        o.add_code_fn("fact", |t| {
            t.instruction.contains("factorial").then(|| {
                minilang::build::func(
                    "f",
                    [],
                    askit_types::int(),
                    vec![minilang::build::ret(minilang::build::num(1.0))],
                )
            })
        });
        let params: Vec<Param> = vec![];
        let ty = askit_types::int();
        let found = o.implement(&CodeTask {
            instruction: "Calculate the factorial of 'n'",
            name: "calculateFactorial",
            params: &params,
            ret: &ty,
            syntax: Syntax::Ts,
        });
        assert!(found.is_some());
        let missing = o.implement(&CodeTask {
            instruction: "Sort the numbers",
            name: "sortNumbers",
            params: &params,
            ret: &ty,
            syntax: Syntax::Ts,
        });
        assert!(missing.is_none());
    }
}
