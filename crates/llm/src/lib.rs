//! # askit-llm
//!
//! The language-model substrate for the AskIt reproduction.
//!
//! The paper's experiments call OpenAI GPT-3.5/GPT-4 over the network; this
//! crate provides the offline stand-in, engineered so that the *AskIt
//! machinery under test is identical* — prompt synthesis, JSON extraction,
//! retry loops, code validation all run unmodified against:
//!
//! * [`MockLlm`] — a deterministic simulated model that reads prompts with
//!   real parsers (types, code skeletons), answers from an explicit
//!   knowledge registry ([`Oracle`]), misbehaves at seeded, configurable
//!   rates ([`FaultConfig`]), and reports latency from a token-based serving
//!   model ([`LatencyModel`]);
//! * [`ScriptedLlm`] — canned responses for unit tests;
//! * [`RecordingLlm`] — a logging wrapper.
//!
//! See DESIGN.md §1 for why this substitution preserves the paper's
//! measured behaviours.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
pub mod faults;
pub mod latency;
pub mod mock;
pub mod oracle;
mod scripted;
pub mod tokenizer;

pub use api::{
    BreakerState, CachePolicy, ChatMessage, Completion, CompletionRequest, Escalation,
    LanguageModel, LlmError, LoadObserver, LoadSignal, ModelChoice, PreparedRequest, RequestHasher,
    RequestOptions, Role, TokenUsage,
};
pub use faults::FaultConfig;
pub use latency::LatencyModel;
pub use mock::{
    cheap_miss, LoadProfile, MockLlm, MockLlmConfig, CODEGEN_MARKER, DIRECT_MARKER,
    FEEDBACK_MARKER, GPT35_MODEL_NAME, GPT4_MODEL_NAME,
};
pub use oracle::{AnswerOutcome, AnswerSkill, AnswerTask, CodeSkill, CodeTask, Oracle};
pub use scripted::{Exchange, RecordingLlm, ScriptedLlm};
