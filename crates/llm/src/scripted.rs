//! Test backends: scripted responses and a recording wrapper.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::api::{Completion, CompletionRequest, LanguageModel, LlmError, TokenUsage};
use crate::tokenizer::count_tokens;

/// A backend that plays back canned responses in order.
///
/// Used by unit tests that need to poke the AskIt runtime with precisely
/// malformed replies (e.g. to walk the retry loop through each criterion).
///
/// # Examples
///
/// ```
/// use askit_llm::{CompletionRequest, LanguageModel, ScriptedLlm};
///
/// let llm = ScriptedLlm::new(["first", "second"]);
/// let req = CompletionRequest::from_prompt("anything");
/// assert_eq!(llm.complete(&req)?.text, "first");
/// assert_eq!(llm.complete(&req)?.text, "second");
/// assert!(llm.complete(&req).is_err());
/// # Ok::<(), askit_llm::LlmError>(())
/// ```
pub struct ScriptedLlm {
    responses: Mutex<std::collections::VecDeque<String>>,
    served: AtomicUsize,
}

impl std::fmt::Debug for ScriptedLlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedLlm")
            .field("remaining", &self.responses.lock().len())
            .field("served", &self.served.load(Ordering::Relaxed))
            .finish()
    }
}

impl ScriptedLlm {
    /// Creates a scripted backend from a response sequence.
    pub fn new<S: Into<String>>(responses: impl IntoIterator<Item = S>) -> Self {
        ScriptedLlm {
            responses: Mutex::new(responses.into_iter().map(Into::into).collect()),
            served: AtomicUsize::new(0),
        }
    }

    /// How many responses have been served.
    pub fn served(&self) -> usize {
        self.served.load(Ordering::Relaxed)
    }

    /// How many responses remain.
    pub fn remaining(&self) -> usize {
        self.responses.lock().len()
    }
}

impl LanguageModel for ScriptedLlm {
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        let text = self
            .responses
            .lock()
            .pop_front()
            .ok_or(LlmError::Exhausted)?;
        self.served.fetch_add(1, Ordering::Relaxed);
        Ok(build_completion(request, text))
    }

    /// Serves the whole batch under one lock acquisition, so a batch always
    /// receives a contiguous run of scripted responses in request order even
    /// when other batches complete concurrently.
    fn complete_batch(&self, requests: &[CompletionRequest]) -> Vec<Result<Completion, LlmError>> {
        let mut queue = self.responses.lock();
        requests
            .iter()
            .map(|request| {
                let text = queue.pop_front().ok_or(LlmError::Exhausted)?;
                self.served.fetch_add(1, Ordering::Relaxed);
                Ok(build_completion(request, text))
            })
            .collect()
    }

    fn model_name(&self) -> &str {
        "scripted"
    }
}

/// Builds the canned [`Completion`] for a scripted response.
fn build_completion(request: &CompletionRequest, text: String) -> Completion {
    let usage = TokenUsage {
        prompt_tokens: request
            .messages
            .iter()
            .map(|m| count_tokens(&m.content))
            .sum(),
        completion_tokens: count_tokens(&text),
    };
    Completion {
        text,
        usage,
        latency: Duration::from_millis(1),
    }
}

/// One logged request/response pair.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// The full request.
    pub request: CompletionRequest,
    /// The response text (or the error's display form).
    pub response: Result<String, String>,
}

/// A wrapper that logs every exchange through an inner backend.
pub struct RecordingLlm<L> {
    inner: L,
    log: Mutex<Vec<Exchange>>,
}

impl<L: LanguageModel> RecordingLlm<L> {
    /// Wraps a backend.
    pub fn new(inner: L) -> Self {
        RecordingLlm {
            inner,
            log: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot of the exchanges so far.
    pub fn exchanges(&self) -> Vec<Exchange> {
        self.log.lock().clone()
    }

    /// Number of exchanges so far.
    pub fn len(&self) -> usize {
        self.log.lock().len()
    }

    /// Whether no exchanges were logged.
    pub fn is_empty(&self) -> bool {
        self.log.lock().is_empty()
    }

    /// Unwraps the inner backend.
    pub fn into_inner(self) -> L {
        self.inner
    }
}

impl<L: LanguageModel> std::fmt::Debug for RecordingLlm<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingLlm")
            .field("model", &self.inner.model_name())
            .field("exchanges", &self.len())
            .finish()
    }
}

impl<L: LanguageModel> LanguageModel for RecordingLlm<L> {
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        self.complete_tagged(request, 0)
    }

    fn complete_tagged(
        &self,
        request: &CompletionRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        let result = self.inner.complete_tagged(request, sample);
        self.log.lock().push(Exchange {
            request: request.clone(),
            response: result
                .as_ref()
                .map(|c| c.text.clone())
                .map_err(ToString::to_string),
        });
        result
    }

    fn complete_prepared(
        &self,
        prepared: &crate::api::PreparedRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        let result = self.inner.complete_prepared(prepared, sample);
        self.log.lock().push(Exchange {
            request: prepared.request().clone(),
            response: result
                .as_ref()
                .map(|c| c.text.clone())
                .map_err(ToString::to_string),
        });
        result
    }

    fn prefetch(&self, prepared: &crate::api::PreparedRequest) -> bool {
        // Speculation is a timing hint, not an exchange: forward it (so a
        // wrapped engine still speculates) without logging.
        self.inner.prefetch(prepared)
    }

    fn reject_completion(&self, request: &CompletionRequest, sample: u64) {
        self.inner.reject_completion(request, sample);
    }

    fn reject_prepared(&self, prepared: &crate::api::PreparedRequest, sample: u64) {
        self.inner.reject_prepared(prepared, sample);
    }

    fn model_name(&self) -> &str {
        self.inner.model_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_serves_in_order_then_exhausts() {
        let llm = ScriptedLlm::new(["a", "b"]);
        let req = CompletionRequest::from_prompt("x");
        assert_eq!(llm.complete(&req).unwrap().text, "a");
        assert_eq!(llm.remaining(), 1);
        assert_eq!(llm.complete(&req).unwrap().text, "b");
        assert_eq!(llm.complete(&req).unwrap_err(), LlmError::Exhausted);
        assert_eq!(llm.served(), 2);
    }

    #[test]
    fn recording_logs_both_outcomes() {
        let llm = RecordingLlm::new(ScriptedLlm::new(["only"]));
        let req = CompletionRequest::from_prompt("q");
        assert!(llm.complete(&req).is_ok());
        assert!(llm.complete(&req).is_err());
        let log = llm.exchanges();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].response.as_deref(), Ok("only"));
        assert!(log[1].response.is_err());
        assert!(!llm.is_empty());
    }
}
