//! `MockLlm`: the deterministic simulated language model.
//!
//! The mock plays GPT's role in both AskIt pipelines by actually *reading
//! the prompt*, using the same machinery a GPT-class model is claimed to
//! possess in the paper:
//!
//! * it "can grasp the semantics of types in programming languages"
//!   (§III-E) — implemented by parsing the TypeScript type fence out of the
//!   runtime prompt with [`askit_types::Type::parse`];
//! * it understands the one-shot Figure 4 code prompt — implemented by
//!   parsing the empty function skeleton with the MiniLang frontends and
//!   reading the instruction comment;
//! * its knowledge is the [`Oracle`]; what the oracle doesn't know, the mock
//!   answers with a type-conforming guess (directly answerable tasks) or a
//!   plausible-but-wrong implementation (codable tasks) — mirroring how the
//!   paper's evals benchmarks were format-correct but unsolvable, and how
//!   HumanEval tasks sometimes never validate;
//! * it misbehaves at configurable, seeded rates ([`FaultConfig`]), decaying
//!   across retries like temperature-1.0 resampling does.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use askit_json::{extract, Json, Map};
use askit_types::{sample::sample, Type};
use minilang::pretty::{print_function, Syntax};
use minilang::{build, FuncDecl};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::api::{
    Completion, CompletionRequest, LanguageModel, LlmError, LoadObserver, LoadSignal, ModelChoice,
    PreparedRequest, TokenUsage,
};
use crate::faults::{
    break_syntax, corrupt_response, plant_bug, sample_code_bug, sample_direct_fault, CodeBug,
    DirectFault, FaultConfig,
};
use crate::latency::LatencyModel;
use crate::oracle::{AnswerTask, CodeTask, Oracle};
use crate::tokenizer::count_tokens;

/// Marker the codegen prompt carries (paper Figure 4, "Q: Implement the
/// following function:").
pub const CODEGEN_MARKER: &str = "Implement the following function";

/// Marker the direct-task prompt carries (paper Listing 2, line 1).
pub const DIRECT_MARKER: &str = "generates responses in JSON format";

/// Marker introducing the §III-E feedback line on retries.
pub const FEEDBACK_MARKER: &str = "Your previous response was not acceptable";

/// The simulated GPT-4 model name (one source of truth for configs and
/// per-request routing).
pub const GPT4_MODEL_NAME: &str = "sim-gpt-4";

/// The simulated GPT-3.5 model name.
pub const GPT35_MODEL_NAME: &str = "sim-gpt-3.5-turbo-16k";

/// A scriptable provider-side load model: per-model concurrency caps and
/// the cost of tripping them.
///
/// Real providers enforce per-model rate limits; a request arriving while
/// the model is already saturated eats a 429 + backoff round trip before it
/// completes. The mock reproduces exactly that shape so adaptive scheduling
/// can be exercised (and gated in CI) offline: when more than
/// `max_concurrent` requests for a model are in flight, the excess requests
/// observe a [`LoadSignal::Throttled`] and pay `penalty` of simulated wall
/// clock (scaled by [`MockLlmConfig::wall_clock_scale`], like latency) per
/// slot of oversubscription before being served — probing one slot past
/// the cap costs one penalty, hammering a saturated model queues
/// superlinearly, like a real provider's backoff ladder.
///
/// Response *content* is untouched — throttling changes timing and signals,
/// never answers — so everything the determinism suite pins stays
/// bit-identical with a load profile active.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadProfile {
    /// Per-model concurrency the simulated provider serves without
    /// throttling. Models absent from the list are uncapped.
    pub caps: Vec<(ModelChoice, usize)>,
    /// Simulated extra round-trip cost of a throttled request.
    pub penalty: Duration,
}

impl LoadProfile {
    /// Caps `model` at `max_concurrent` in-flight requests.
    #[must_use]
    pub fn cap(mut self, model: ModelChoice, max_concurrent: usize) -> Self {
        self.caps.retain(|(m, _)| *m != model);
        self.caps.push((model, max_concurrent));
        self
    }

    /// Sets the simulated cost of a throttled request.
    #[must_use]
    pub fn with_penalty(mut self, penalty: Duration) -> Self {
        self.penalty = penalty;
        self
    }

    /// The configured cap for `model`, if any.
    pub fn cap_for(&self, model: ModelChoice) -> Option<usize> {
        self.caps
            .iter()
            .find(|(m, _)| *m == model)
            .map(|(_, cap)| *cap)
    }
}

/// Whether the scripted "beyond the cheap model" predicate fires for a task
/// prompt at the given rate.
///
/// A pure function of the seed and the task's *first* user message, so every
/// retry of the same task under the cheap model keeps failing (the miss is a
/// capability gap, not a transient fault) while an escalated tier — which
/// this predicate never gates — succeeds. Benches and tests use the same
/// function to know, ahead of time, which tasks need the strong model.
pub fn cheap_miss(seed: u64, task_prompt: &str, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    // Local FNV-1a over (seed, prompt): independent of request fingerprints
    // so enabling the knob never perturbs response RNG streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in seed
        .to_le_bytes()
        .iter()
        .chain(task_prompt.as_bytes().iter())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // FNV's high bits avalanche poorly on short inputs; finalize with a
    // 64-bit mix (murmur3 fmix64) before drawing the uniform.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    // 53 high bits → a uniform draw in [0, 1).
    (h >> 11) as f64 / ((1u64 << 53) as f64) < rate
}

/// Configuration of a [`MockLlm`].
#[derive(Debug, Clone)]
pub struct MockLlmConfig {
    /// Reported model name.
    pub model_name: String,
    /// Latency profile.
    pub latency: LatencyModel,
    /// Misbehaviour rates.
    pub faults: FaultConfig,
    /// RNG seed. All mock behaviour is a pure function of the seed and the
    /// individual request (conversation + sample ordinal) — never of the
    /// order requests arrive in — so any interleaving of concurrent callers
    /// observes identical responses.
    pub seed: u64,
    /// When positive, each completion *really sleeps* for `latency × scale`,
    /// turning the latency model into wall-clock time. Off (0.0) by default;
    /// throughput benches enable it to reproduce the network-bound serving
    /// regime where batching wins.
    pub wall_clock_scale: f64,
    /// The simulated provider's load model (per-model concurrency caps).
    /// Empty by default: no caps, no throttles.
    pub load: LoadProfile,
    /// The rate at which directly answerable tasks are *beyond* the cheap
    /// model: a gpt35-routed request whose task draws a miss (see
    /// [`cheap_miss`]) answers with prose instead of the required JSON, on
    /// every retry, until a stronger tier is asked. 0.0 (off) by default.
    pub cheap_miss_rate: f64,
}

impl MockLlmConfig {
    /// A GPT-4-like profile (slow, accurate): the model Table III uses.
    pub fn gpt4() -> Self {
        MockLlmConfig {
            model_name: GPT4_MODEL_NAME.to_owned(),
            latency: LatencyModel::gpt4(),
            faults: FaultConfig {
                code_bug_rate: 0.12,
                ..FaultConfig::default()
            },
            seed: 0xA5C1_0001,
            wall_clock_scale: 0.0,
            load: LoadProfile::default(),
            cheap_miss_rate: 0.0,
        }
    }

    /// A GPT-3.5-turbo-16k-like profile (fast, sloppier): the model the
    /// Table II experiment uses.
    pub fn gpt35() -> Self {
        MockLlmConfig {
            model_name: GPT35_MODEL_NAME.to_owned(),
            latency: LatencyModel::gpt35(),
            faults: FaultConfig::default(),
            seed: 0xA5C1_0002,
            wall_clock_scale: 0.0,
            load: LoadProfile::default(),
            cheap_miss_rate: 0.0,
        }
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the fault configuration.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Enables real sleeping at `latency × scale` per completion (see
    /// [`MockLlmConfig::wall_clock_scale`]).
    #[must_use]
    pub fn with_wall_clock_scale(mut self, scale: f64) -> Self {
        self.wall_clock_scale = scale;
        self
    }

    /// Installs a provider-side load model (see [`LoadProfile`]).
    #[must_use]
    pub fn with_load(mut self, load: LoadProfile) -> Self {
        self.load = load;
        self
    }

    /// Sets the rate at which tasks are beyond the cheap model (see
    /// [`MockLlmConfig::cheap_miss_rate`]).
    #[must_use]
    pub fn with_cheap_miss_rate(mut self, rate: f64) -> Self {
        self.cheap_miss_rate = rate;
        self
    }
}

/// The simulated language model. See the [module docs](self).
pub struct MockLlm {
    config: MockLlmConfig,
    oracle: Oracle,
    calls: AtomicUsize,
    /// Completions served per routed model, indexed by [`model_index`].
    routed_calls: [AtomicUsize; 3],
    /// Requests currently inside `serve`, per routed model — the quantity
    /// the [`LoadProfile`] caps.
    in_flight: [AtomicUsize; 3],
    observers: Mutex<Vec<Arc<dyn LoadObserver>>>,
}

/// Releases an in-flight slot on every exit path (including the `?` error
/// return inside `serve`).
struct DecrementOnDrop<'a>(&'a AtomicUsize);

impl Drop for DecrementOnDrop<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Dense index for per-model counters.
fn model_index(choice: ModelChoice) -> usize {
    match choice {
        ModelChoice::Default => 0,
        ModelChoice::Gpt35 => 1,
        ModelChoice::Gpt4 => 2,
    }
}

impl std::fmt::Debug for MockLlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MockLlm")
            .field("model", &self.config.model_name)
            .field("oracle", &self.oracle)
            .field("calls", &self.calls.load(Ordering::Relaxed))
            .finish()
    }
}

impl MockLlm {
    /// Creates a mock model over an oracle.
    pub fn new(config: MockLlmConfig, oracle: Oracle) -> Self {
        MockLlm {
            config,
            oracle,
            calls: AtomicUsize::new(0),
            routed_calls: Default::default(),
            in_flight: Default::default(),
            observers: Mutex::new(Vec::new()),
        }
    }

    /// A GPT-4-like mock with the standard oracle.
    pub fn gpt4() -> Self {
        MockLlm::new(MockLlmConfig::gpt4(), Oracle::standard())
    }

    /// A GPT-3.5-like mock with the standard oracle.
    pub fn gpt35() -> Self {
        MockLlm::new(MockLlmConfig::gpt35(), Oracle::standard())
    }

    /// Number of completions served so far.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    /// Number of completions served so far under the given routed model
    /// (`Default` counts requests that didn't pick one). The unit of
    /// cost-weighted accounting in routing benches.
    pub fn calls_routed(&self, choice: ModelChoice) -> usize {
        self.routed_calls[model_index(choice)].load(Ordering::Relaxed)
    }

    /// Reports a load signal to every subscribed observer.
    fn notify(&self, model: ModelChoice, signal: LoadSignal) {
        let observers = self
            .observers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for observer in observers.iter() {
            observer.observed(model, signal);
        }
    }

    /// Read access to the oracle (diagnostics).
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// The per-sample RNG salt: the configured seed mixed with the sample
    /// ordinal.
    fn rng_salt(&self, sample: u64) -> u64 {
        self.config.seed ^ sample.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Derives the RNG for one request: a pure function of the configured
    /// seed, the full conversation, and the sample ordinal. Identical
    /// requests always draw the same stream, whatever order (or thread) they
    /// arrive on — the property the execution engine's determinism rests on.
    /// The fingerprint covers the routed model, so the same prompt served by
    /// different models draws different streams.
    fn request_rng(&self, request: &CompletionRequest, sample: u64) -> StdRng {
        StdRng::seed_from_u64(request.fingerprint(self.rng_salt(sample)))
    }

    /// The shared completion path once the request's RNG is derived.
    fn serve(&self, request: &CompletionRequest, rng: &mut StdRng) -> Result<Completion, LlmError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let choice = request.options.model;
        self.routed_calls[model_index(choice)].fetch_add(1, Ordering::Relaxed);

        // Provider-side load model: admission over the routed model's cap
        // costs a throttled round trip (signal + simulated penalty) before
        // the request is served. Content is never affected.
        let slot = &self.in_flight[model_index(choice)];
        let concurrent = slot.fetch_add(1, Ordering::SeqCst) + 1;
        let in_flight_guard = DecrementOnDrop(slot);
        if let Some(cap) = self.config.load.cap_for(choice) {
            if concurrent > cap {
                self.notify(choice, LoadSignal::Throttled);
                if self.config.wall_clock_scale > 0.0 {
                    // Queueing: the deeper the oversubscription, the longer
                    // the excess request waits — hammering a saturated model
                    // costs superlinearly, probing one slot past the cap
                    // costs one penalty.
                    let depth = (concurrent - cap) as f64;
                    std::thread::sleep(
                        self.config
                            .load
                            .penalty
                            .mul_f64(depth)
                            .mul_f64(self.config.wall_clock_scale),
                    );
                }
            }
        }

        let text = self.respond(request, rng)?;
        let usage = TokenUsage {
            prompt_tokens: request
                .messages
                .iter()
                .map(|m| count_tokens(&m.content))
                .sum(),
            completion_tokens: count_tokens(&text)
                // Direct tasks narrate hidden chain-of-thought before the
                // final JSON; charge for it like a real reasoning reply.
                + if text.contains("```json") { 180 } else { 40 },
        };
        // Per-request model routing: the routed model's latency/cost profile
        // serves the request (the hook a network backend reuses to pick the
        // wire model); `Default` keeps the configured profile.
        let latency_model = LatencyModel::for_choice(request.options.model, &self.config.latency);
        let latency = latency_model.sample(usage, rng);
        if self.config.wall_clock_scale > 0.0 {
            std::thread::sleep(latency.mul_f64(self.config.wall_clock_scale));
        }
        drop(in_flight_guard);
        self.notify(choice, LoadSignal::Completed { latency });
        Ok(Completion {
            text,
            usage,
            latency,
        })
    }

    /// The name the request is served under: the routed model's, or the
    /// configured default. A network backend resolves the wire model name at
    /// the same point.
    fn served_model_name(&self, choice: ModelChoice) -> &str {
        match choice {
            ModelChoice::Default => &self.config.model_name,
            ModelChoice::Gpt35 => GPT35_MODEL_NAME,
            ModelChoice::Gpt4 => GPT4_MODEL_NAME,
        }
    }

    fn respond(&self, request: &CompletionRequest, rng: &mut StdRng) -> Result<String, LlmError> {
        let prompt = request
            .first_user()
            .ok_or_else(|| LlmError::InvalidRequest("no user message".to_owned()))?;
        let attempt = request.attempt();
        if prompt.contains(CODEGEN_MARKER) {
            return Ok(self.respond_codegen(prompt, attempt, rng));
        }
        if prompt.contains(DIRECT_MARKER) {
            return Ok(self.respond_direct(
                prompt,
                attempt,
                request.temperature,
                request.options.model,
                rng,
            ));
        }
        Ok(format!(
            "I'm {}, a simulated assistant. You said: {}",
            self.served_model_name(request.options.model),
            prompt.lines().next().unwrap_or("")
        ))
    }

    // --- directly answerable tasks (paper §III-E) -------------------------

    fn respond_direct(
        &self,
        prompt: &str,
        attempt: usize,
        temperature: f64,
        model: ModelChoice,
        rng: &mut StdRng,
    ) -> String {
        // Tasks beyond the cheap model: gpt35-routed requests whose task
        // draws a miss answer in prose — no JSON block, so extraction fails
        // validation — on this and every retry. Stronger tiers are never
        // gated, which is what makes escalation (not retrying) the fix.
        if model == ModelChoice::Gpt35
            && cheap_miss(self.config.seed, prompt, self.config.cheap_miss_rate)
        {
            return format!(
                "I'm {}, and this one is beyond me: I cannot work out a \
                 reliable answer, so I won't guess at a structured response.",
                self.served_model_name(model)
            );
        }
        // The prompt constrains the response with a TypeScript type in a
        // ```ts fence (Listing 2 lines 5–8): read it like GPT would.
        let envelope = read_expected_type(prompt).unwrap_or_else(|| {
            askit_types::dict([
                ("reason", askit_types::string()),
                ("answer", askit_types::any()),
            ])
        });
        let answer_type = match &envelope {
            Type::Dict(fields) => fields
                .iter()
                .find(|(k, _)| k == "answer")
                .map(|(_, t)| t.clone())
                .unwrap_or(Type::Any),
            other => other.clone(),
        };
        let (template, bindings) = read_task_section(prompt);
        let outcome = self.oracle.answer(&AnswerTask {
            template: &template,
            bindings: &bindings,
            answer_type: &answer_type,
        });
        let (mut answer, reason) = match outcome {
            Some(o) => (o.answer, o.reason),
            None => (
                sample(&answer_type, rng),
                "Answering from general knowledge.".to_owned(),
            ),
        };

        let fault = if temperature > 0.0 {
            sample_direct_fault(&self.config.faults, attempt, rng)
        } else {
            None
        };
        if fault == Some(DirectFault::WrongAnswerType) {
            answer = wrong_typed(&answer, &answer_type);
        }
        let mut body = Map::new();
        body.insert("reason", Json::Str(reason));
        body.insert("answer", answer);
        let text = format!("```json\n{}\n```", Json::Object(body).to_compact_string());
        match fault {
            Some(f) => corrupt_response(&text, f),
            None => text,
        }
    }

    // --- codable tasks (paper §III-D, Figure 4) ---------------------------

    fn respond_codegen(&self, prompt: &str, attempt: usize, rng: &mut StdRng) -> String {
        let Some((skeleton_src, syntax)) = last_code_fence(prompt) else {
            return "I could not find a function to implement.".to_owned();
        };
        let instruction = read_instruction_comment(&skeleton_src);
        let parsed = minilang::parse(&skeleton_src, syntax);
        let Ok(skeleton) = parsed else {
            return "The function skeleton does not parse.".to_owned();
        };
        let Some(decl) = skeleton.functions.first() else {
            return "The prompt contained no function.".to_owned();
        };

        let task = CodeTask {
            instruction: &instruction,
            name: &decl.name,
            params: &decl.params,
            ret: &decl.ret,
            syntax,
        };
        let mut implementation = match self.oracle.implement(&task) {
            Some(mut body_decl) => {
                // The oracle provides a body; the signature is the prompt's.
                body_decl.name = decl.name.clone();
                body_decl.params = decl.params.clone();
                body_decl.ret = decl.ret.clone();
                body_decl
            }
            None => hallucinated_implementation(decl, rng),
        };
        implementation.doc = vec![instruction.clone()];
        implementation.exported = true;

        let planted = sample_code_bug(&self.config.faults, attempt, rng)
            .then(|| plant_bug(&mut implementation, rng));
        let broken_syntax = planted == Some(CodeBug::BrokenSyntax);
        let mut code = print_function(&implementation, syntax);
        if broken_syntax {
            code = break_syntax(&code);
        }
        format!("A:\n```{}\n{}```", syntax.fence_tag(), code)
    }
}

impl LanguageModel for MockLlm {
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        self.complete_tagged(request, 0)
    }

    fn complete_tagged(
        &self,
        request: &CompletionRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        let mut rng = self.request_rng(request, sample);
        self.serve(request, &mut rng)
    }

    /// A prepared submission seeds its RNG from the memoized content hash —
    /// the same stream `complete_tagged` derives by re-hashing, minus the
    /// re-hash (the agreement is pinned by a unit test below).
    fn complete_prepared(
        &self,
        prepared: &PreparedRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        let mut rng = StdRng::seed_from_u64(prepared.fingerprint(self.rng_salt(sample)));
        self.serve(prepared.request(), &mut rng)
    }

    // The trait's default `complete_batch` (independent per-request
    // completion) is already exact for this model: each request draws from
    // its own derived stream, so any fan-out across engine workers yields
    // identical responses.

    /// The mock reports wire-level load signals: a `Completed` per served
    /// request and a `Throttled` per admission over a [`LoadProfile`] cap.
    fn subscribe_load(&self, observer: Arc<dyn LoadObserver>) -> bool {
        self.observers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(observer);
        true
    }

    fn model_name(&self) -> &str {
        &self.config.model_name
    }
}

// ---------------------------------------------------------------------------
// Prompt comprehension helpers
// ---------------------------------------------------------------------------

/// Reads the expected response type out of the prompt's `ts` fence.
fn read_expected_type(prompt: &str) -> Option<Type> {
    for block in extract::code_blocks(prompt) {
        if block.lang.eq_ignore_ascii_case("ts") || block.lang.eq_ignore_ascii_case("typescript") {
            if let Ok(t) = Type::parse(block.content.trim()) {
                return Some(t);
            }
        }
    }
    None
}

/// Splits the task section (after the fixed header) into the quoted template
/// and the `where` bindings (paper Listing 2, lines 11–12).
fn read_task_section(prompt: &str) -> (String, Map) {
    const HEADER_END: &str = "in the 'reason' field.";
    let section = match prompt.rfind(HEADER_END) {
        Some(idx) => &prompt[idx + HEADER_END.len()..],
        None => prompt,
    };
    // Few-shot examples, if present, follow the task section.
    let section = match section.find("\nExamples:") {
        Some(idx) => &section[..idx],
        None => section,
    };
    let section = section.trim();
    match section.rfind("\nwhere ") {
        Some(idx) => {
            let template = section[..idx].trim().to_owned();
            let bindings = parse_bindings(&section[idx + "\nwhere ".len()..]);
            (template, bindings)
        }
        None => (section.to_owned(), Map::new()),
    }
}

/// Parses `'a' = 1, 'b' = "x"` binding lists. Values are compact JSON, so
/// each one is consumed with `parse_prefix` (robust to commas inside).
fn parse_bindings(text: &str) -> Map {
    let mut bindings = Map::new();
    let mut rest = text.trim();
    while let Some(after_quote) = rest.strip_prefix('\'') {
        let Some(name_end) = after_quote.find('\'') else {
            break;
        };
        let name = &after_quote[..name_end];
        let after_name = &after_quote[name_end + 1..];
        let Some(after_eq) = after_name.trim_start().strip_prefix('=') else {
            break;
        };
        let value_text = after_eq.trim_start();
        let Ok((value, used)) = Json::parse_prefix(value_text) else {
            break;
        };
        bindings.insert(name, value);
        rest = value_text[used..].trim_start();
        rest = rest.strip_prefix(',').map(str::trim_start).unwrap_or("");
        if rest.is_empty() {
            break;
        }
    }
    bindings
}

/// Finds the last fenced code block and its surface syntax.
fn last_code_fence(prompt: &str) -> Option<(String, Syntax)> {
    let blocks = extract::code_blocks(prompt);
    let block = blocks.last()?;
    let syntax = if block.lang.eq_ignore_ascii_case("python") {
        Syntax::Py
    } else {
        Syntax::Ts
    };
    Some((block.content.to_owned(), syntax))
}

/// Extracts the instruction comment from a function skeleton.
fn read_instruction_comment(skeleton: &str) -> String {
    let mut lines = Vec::new();
    for line in skeleton.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("//") {
            lines.push(rest.trim().to_owned());
        } else if let Some(rest) = t.strip_prefix('#') {
            lines.push(rest.trim().to_owned());
        }
    }
    lines.join(" ")
}

/// A type-conforming but wrong-typed variant of `answer` (for the
/// [`DirectFault::WrongAnswerType`] fault).
fn wrong_typed(answer: &Json, ty: &Type) -> Json {
    match ty {
        Type::Str => Json::Array(vec![answer.clone()]),
        _ => Json::Str(answer.to_compact_string()),
    }
}

/// An implementation invented without knowledge: correct signature, wrong
/// behaviour (returns a constant of the right shape).
fn hallucinated_implementation<R: Rng + ?Sized>(decl: &FuncDecl, rng: &mut R) -> FuncDecl {
    let default_value = sample(&decl.ret, rng);
    let body = vec![build::ret(build::expr_of_json(&default_value))];
    FuncDecl {
        name: decl.name.clone(),
        params: decl.params.clone(),
        ret: decl.ret.clone(),
        body,
        exported: true,
        doc: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::RequestOptions;
    use askit_json::json;

    fn direct_prompt(answer_ty: &str, task: &str) -> String {
        format!(
            "You are a helpful assistant that {DIRECT_MARKER} enclosed with ```json and ``` like:\n```json\n{{ \"reason\": \"Step-by-step reason for the answer\", \"answer\": \"Final answer or result\" }}\n```\nThe response in the JSON code block should match the type defined as follows:\n```ts\n{{ reason: string, answer: {answer_ty} }}\n```\nExplain your answer step-by-step in the 'reason' field.\n\n{task}"
        )
    }

    #[test]
    fn bindings_parse_including_commas() {
        let b = parse_bindings("'n' = 5, 'xs' = [1,2,3], 's' = \"a, b\"");
        assert_eq!(b.get("n"), Some(&Json::Int(5)));
        assert_eq!(b.get("xs"), Some(&Json::parse("[1,2,3]").unwrap()));
        assert_eq!(b.get("s"), Some(&Json::from("a, b")));
    }

    #[test]
    fn task_section_is_isolated_from_header() {
        let p = direct_prompt("number", "What is 'x' times 'y'?\nwhere 'x' = 6, 'y' = 7");
        let (template, bindings) = read_task_section(&p);
        assert_eq!(template, "What is 'x' times 'y'?");
        assert_eq!(bindings.get("x"), Some(&Json::Int(6)));
        let ty = read_expected_type(&p).unwrap();
        assert_eq!(
            ty,
            askit_types::dict([
                ("reason", askit_types::string()),
                ("answer", askit_types::float())
            ])
        );
    }

    #[test]
    fn direct_arithmetic_round_trip() {
        let llm = MockLlm::new(
            MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
            Oracle::standard(),
        );
        let p = direct_prompt("number", "What is 'x' times 'y'?\nwhere 'x' = 6, 'y' = 7");
        let out = llm.complete(&CompletionRequest::from_prompt(p)).unwrap();
        let v = extract::extract_json(&out.text).unwrap();
        assert_eq!(v.get_key("answer"), Some(&Json::Int(42)));
        assert!(v.get_key("reason").is_some());
        assert!(out.latency.as_millis() > 0);
    }

    #[test]
    fn unknown_tasks_get_type_conforming_guesses() {
        let llm = MockLlm::new(
            MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
            Oracle::standard(),
        );
        let p = direct_prompt(
            "{ x: number, y: number }",
            "Give the coordinates of the treasure.",
        );
        let out = llm.complete(&CompletionRequest::from_prompt(p)).unwrap();
        let v = extract::extract_json(&out.text).unwrap();
        let answer = v.get_key("answer").unwrap();
        let ty = askit_types::dict([("x", askit_types::float()), ("y", askit_types::float())]);
        assert!(ty.validate(answer).is_ok(), "guess {answer} should conform");
    }

    #[test]
    fn faults_fire_at_rate_one_and_decay() {
        let cfg = MockLlmConfig::gpt4().with_faults(FaultConfig {
            direct_fault_rate: 1.0,
            code_bug_rate: 1.0,
            decay: 0.0,
        });
        let llm = MockLlm::new(cfg, Oracle::standard());
        let p = direct_prompt("number", "What is 2 plus 2?");
        // Attempt 0 always faulty (rate 1.0).
        let first = llm
            .complete(&CompletionRequest::from_prompt(p.clone()))
            .unwrap();
        let parsed = extract::extract_json(&first.text);
        let is_clean = parsed
            .as_ref()
            .and_then(|v| v.get_key("answer"))
            .is_some_and(|a| *a == Json::Int(4));
        // Any of the four fault kinds must have disturbed something —
        // except ExtraProse, which is benign by design. Accept either a
        // corrupted response or benign prose.
        if is_clean {
            assert!(
                first.text.contains("Certainly!"),
                "rate-1.0 fault produced a clean bare answer: {}",
                first.text
            );
        }
        // A retry conversation (attempt 1, decay 0) is always clean.
        let retry = CompletionRequest {
            messages: vec![
                crate::api::ChatMessage::user(p),
                crate::api::ChatMessage::assistant(first.text),
                crate::api::ChatMessage::user(format!("{FEEDBACK_MARKER}: fix it")),
            ],
            temperature: 1.0,
            options: crate::api::RequestOptions::default(),
        };
        let second = llm.complete(&retry).unwrap();
        let v = extract::extract_json(&second.text).unwrap();
        assert_eq!(v.get_key("answer"), Some(&Json::Int(4)));
    }

    fn codegen_prompt(syntax: Syntax) -> String {
        let skeleton = match syntax {
            Syntax::Ts => "export function calcFact({n}: {n: number}): number {\n  // Calculate the factorial of 'n'\n}",
            Syntax::Py => "def calcFact(n):\n    # Calculate the factorial of 'n'\n    pass",
        };
        format!(
            "Q: {CODEGEN_MARKER}:\n```{tag}\nexport function func({{x, y}}: {{x: number, y: number}}): number {{\n  // add 'x' and 'y'\n}}\n```\n\nA:\n```{tag}\nexport function func({{x, y}}: {{x: number, y: number}}): number {{\n  // add 'x' and 'y'\n  return x + y;\n}}\n```\n\nQ: {CODEGEN_MARKER}:\n```{tag}\n{skeleton}\n```\n",
            tag = syntax.fence_tag(),
        )
    }

    #[test]
    fn codegen_uses_the_oracle() {
        let mut oracle = Oracle::standard();
        oracle.add_code_fn("factorial", |task| {
            if !task.instruction.to_lowercase().contains("factorial") {
                return None;
            }
            let n = task
                .params
                .first()
                .map(|p| p.name.clone())
                .unwrap_or("n".into());
            Some(build::func(
                "fact",
                [],
                askit_types::int(),
                vec![
                    build::let_("acc", build::num(1.0)),
                    build::for_range_incl(
                        "i",
                        build::num(2.0),
                        build::var(n),
                        vec![build::assign_op(
                            "acc",
                            minilang::BinOp::Mul,
                            build::var("i"),
                        )],
                    ),
                    build::ret(build::var("acc")),
                ],
            ))
        });
        let llm = MockLlm::new(
            MockLlmConfig::gpt35().with_faults(FaultConfig::none()),
            oracle,
        );
        for syntax in [Syntax::Ts, Syntax::Py] {
            let out = llm
                .complete(&CompletionRequest::from_prompt(codegen_prompt(syntax)))
                .unwrap();
            let code = extract::code_block(&out.text, syntax.fence_tag()).unwrap();
            let program = minilang::parse(code, syntax).unwrap();
            let mut args = Map::new();
            args.insert("n", json!(5i64));
            let result = minilang::Interp::new(&program)
                .call_json("calcFact", &args)
                .unwrap();
            assert_eq!(result, Json::Int(120), "{syntax:?}");
        }
    }

    #[test]
    fn codegen_without_knowledge_returns_wrong_but_wellformed_code() {
        let llm = MockLlm::new(
            MockLlmConfig::gpt35().with_faults(FaultConfig::none()),
            Oracle::empty(),
        );
        let out = llm
            .complete(&CompletionRequest::from_prompt(codegen_prompt(Syntax::Ts)))
            .unwrap();
        let code = extract::code_block(&out.text, "typescript").unwrap();
        let program = minilang::parse_ts(code).unwrap();
        assert_eq!(program.functions[0].name, "calcFact");
        // It runs, but almost surely computes the wrong thing.
        let mut args = Map::new();
        args.insert("n", json!(5i64));
        let _ = minilang::Interp::new(&program).call_json("calcFact", &args);
    }

    #[test]
    fn prepared_and_plain_submission_agree() {
        // The whole zero-rehash design rests on this: a prepared submission
        // must draw the exact stream the plain path derives by re-hashing.
        let llm = MockLlm::new(MockLlmConfig::gpt4().with_seed(99), Oracle::standard());
        let p = direct_prompt("number", "What is 'x' times 'y'?\nwhere 'x' = 3, 'y' = 9");
        let request = CompletionRequest::from_prompt(p);
        let prepared = crate::api::PreparedRequest::new(request.clone());
        for sample in [0u64, 1, 7] {
            let plain = llm.complete_tagged(&request, sample).unwrap();
            let fast = llm.complete_prepared(&prepared, sample).unwrap();
            assert_eq!(plain.text, fast.text, "sample {sample}");
            assert_eq!(plain.latency, fast.latency, "sample {sample}");
        }
    }

    #[test]
    fn determinism_per_seed() {
        let make = || MockLlm::new(MockLlmConfig::gpt4().with_seed(77), Oracle::standard());
        let p = direct_prompt("number", "What is 3 plus 4?");
        let a = make()
            .complete(&CompletionRequest::from_prompt(p.clone()))
            .unwrap();
        let b = make().complete(&CompletionRequest::from_prompt(p)).unwrap();
        assert_eq!(a.text, b.text);
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn requests_route_to_per_model_profiles() {
        let llm = MockLlm::gpt4();
        let p = direct_prompt("number", "What is 'x' times 'y'?\nwhere 'x' = 6, 'y' = 7");
        let base = CompletionRequest::from_prompt(p);
        let fast = llm
            .complete(
                &base
                    .clone()
                    .with_options(RequestOptions::for_model(ModelChoice::Gpt35)),
            )
            .unwrap();
        let slow = llm
            .complete(&base.with_options(RequestOptions::for_model(ModelChoice::Gpt4)))
            .unwrap();
        // Same prompt, same usage band: the ~3x decode-speed gap between the
        // profiles dwarfs the ±25% jitter.
        assert!(
            fast.latency < slow.latency,
            "gpt35-routed {:?} vs gpt4-routed {:?}",
            fast.latency,
            slow.latency
        );
        // The generic fallback introduces itself as the routed model.
        let hello = CompletionRequest::from_prompt("Hello!")
            .with_options(RequestOptions::for_model(ModelChoice::Gpt35));
        assert!(llm
            .complete(&hello)
            .unwrap()
            .text
            .contains("sim-gpt-3.5-turbo-16k"));
    }

    #[derive(Default)]
    struct SignalLog(Mutex<Vec<(ModelChoice, LoadSignal)>>);

    impl LoadObserver for SignalLog {
        fn observed(&self, model: ModelChoice, signal: LoadSignal) {
            self.0.lock().unwrap().push((model, signal));
        }
    }

    #[test]
    fn cheap_miss_predicate_is_deterministic_and_rate_shaped() {
        assert!(!cheap_miss(1, "task", 0.0));
        assert!(cheap_miss(1, "task", 1.0));
        let hits = (0..1000)
            .filter(|i| cheap_miss(42, &format!("task {i}"), 0.35))
            .count();
        assert!((250..450).contains(&hits), "rate 0.35 drew {hits}/1000");
        // Pure function of (seed, prompt): stable across calls, seeded.
        assert_eq!(
            cheap_miss(7, "same task", 0.5),
            cheap_miss(7, "same task", 0.5)
        );
        assert_ne!(
            (0..100)
                .filter(|i| cheap_miss(1, &format!("t{i}"), 0.5))
                .count(),
            0
        );
    }

    #[test]
    fn cheap_misses_fail_validation_until_escalated() {
        let llm = MockLlm::new(
            MockLlmConfig::gpt4()
                .with_faults(FaultConfig::none())
                .with_cheap_miss_rate(1.0),
            Oracle::standard(),
        );
        let p = direct_prompt("number", "What is 'x' times 'y'?\nwhere 'x' = 6, 'y' = 7");
        let base = CompletionRequest::from_prompt(p.clone());

        // gpt35-routed: prose, no JSON — and a retry conversation fails the
        // same way (the miss is per task, not per attempt).
        let cheap = base
            .clone()
            .with_options(RequestOptions::for_model(ModelChoice::Gpt35));
        let out = llm.complete(&cheap).unwrap();
        assert!(extract::extract_json(&out.text).is_none(), "{}", out.text);
        let mut retry = cheap.clone();
        retry
            .messages
            .push(crate::api::ChatMessage::assistant(out.text));
        retry.messages.push(crate::api::ChatMessage::user(format!(
            "{FEEDBACK_MARKER}: fix it"
        )));
        let again = llm.complete(&retry).unwrap();
        assert!(extract::extract_json(&again.text).is_none());

        // The strong tier answers the very same task correctly.
        let strong = base.with_options(RequestOptions::for_model(ModelChoice::Gpt4));
        let solved = llm.complete(&strong).unwrap();
        let v = extract::extract_json(&solved.text).unwrap();
        assert_eq!(v.get_key("answer"), Some(&Json::Int(42)));
    }

    #[test]
    fn load_profile_throttles_over_cap_and_reports_signals() {
        let llm = MockLlm::new(
            MockLlmConfig::gpt4()
                .with_faults(FaultConfig::none())
                .with_load(LoadProfile::default().cap(ModelChoice::Gpt4, 0)),
            Oracle::standard(),
        );
        let log = Arc::new(SignalLog::default());
        assert!(llm.subscribe_load(log.clone()));

        let p = direct_prompt("number", "What is 'x' plus 'y'?\nwhere 'x' = 1, 'y' = 2");
        let capped = CompletionRequest::from_prompt(p.clone())
            .with_options(RequestOptions::for_model(ModelChoice::Gpt4));
        let out = llm.complete(&capped).unwrap();
        // Cap 0: every gpt4 admission throttles — but content is untouched.
        let v = extract::extract_json(&out.text).unwrap();
        assert_eq!(v.get_key("answer"), Some(&Json::Int(3)));

        // An uncapped model never throttles.
        let free = CompletionRequest::from_prompt(p)
            .with_options(RequestOptions::for_model(ModelChoice::Gpt35));
        llm.complete(&free).unwrap();

        let signals = log.0.lock().unwrap().clone();
        assert_eq!(signals[0], (ModelChoice::Gpt4, LoadSignal::Throttled));
        assert!(matches!(
            signals[1],
            (ModelChoice::Gpt4, LoadSignal::Completed { .. })
        ));
        assert!(matches!(
            signals[2],
            (ModelChoice::Gpt35, LoadSignal::Completed { .. })
        ));
        assert_eq!(llm.calls_routed(ModelChoice::Gpt4), 1);
        assert_eq!(llm.calls_routed(ModelChoice::Gpt35), 1);
        assert_eq!(llm.calls_routed(ModelChoice::Default), 0);
    }

    #[test]
    fn call_counting_and_generic_fallback() {
        let llm = MockLlm::gpt4();
        assert_eq!(llm.calls(), 0);
        let out = llm
            .complete(&CompletionRequest::from_prompt("Hello there!"))
            .unwrap();
        assert!(out.text.contains("simulated assistant"));
        assert_eq!(llm.calls(), 1);
        assert_eq!(llm.model_name(), "sim-gpt-4");
    }
}
