//! Fault injection: how the mock model misbehaves.
//!
//! The paper's machinery exists *because* models misbehave: the runtime
//! retry loop (§III-E) exists for malformed JSON and type mismatches, and
//! code validation with retries (§III-D) exists because "the LLM can
//! occasionally produce erroneous code" (the paper saw up to 7 retries on
//! Table II). This module makes those misbehaviours reproducible: seeded,
//! rate-configurable, and decaying across retries (temperature-1.0
//! resampling eventually yields a clean response).

use minilang::ast::{BinOp, Block, Expr, FuncDecl, Stmt};
use rand::Rng;

/// Fault rates for a mock model.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that a *first* direct answer is malformed.
    pub direct_fault_rate: f64,
    /// Probability that a *first* generated implementation is wrong.
    pub code_bug_rate: f64,
    /// Per-retry multiplier on both rates (resampling converges).
    pub decay: f64,
}

impl Default for FaultConfig {
    /// Rates calibrated to land retry counts in the paper's observed 0–7
    /// range with most tasks needing none.
    fn default() -> Self {
        FaultConfig {
            direct_fault_rate: 0.08,
            code_bug_rate: 0.22,
            decay: 0.35,
        }
    }
}

impl FaultConfig {
    /// A configuration that never misbehaves (for focused tests).
    pub fn none() -> Self {
        FaultConfig {
            direct_fault_rate: 0.0,
            code_bug_rate: 0.0,
            decay: 0.0,
        }
    }

    /// The direct-answer fault probability on the given attempt (0-based).
    pub fn direct_rate_at(&self, attempt: usize) -> f64 {
        self.direct_fault_rate * self.decay.powi(attempt as i32)
    }

    /// The code-bug probability on the given attempt (0-based).
    pub fn code_rate_at(&self, attempt: usize) -> f64 {
        self.code_bug_rate * self.decay.powi(attempt as i32)
    }
}

/// Ways a direct (JSON) answer can be malformed, one per §III-E retry
/// criterion plus a benign one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectFault {
    /// Criterion 1: the response contains no parsable JSON.
    MalformedJson,
    /// Criterion 2: the JSON object lacks the `answer` field.
    MissingAnswerField,
    /// Criterion 3: the `answer` field has the wrong type.
    WrongAnswerType,
    /// Harmless: extra chatter around a correct fenced answer (the lenient
    /// extractor must cope without a retry).
    ExtraProse,
}

/// Samples a direct-answer fault for the given attempt.
pub fn sample_direct_fault<R: Rng + ?Sized>(
    cfg: &FaultConfig,
    attempt: usize,
    rng: &mut R,
) -> Option<DirectFault> {
    if !rng.gen_bool(cfg.direct_rate_at(attempt).clamp(0.0, 1.0)) {
        return None;
    }
    Some(match rng.gen_range(0..4) {
        0 => DirectFault::MalformedJson,
        1 => DirectFault::MissingAnswerField,
        2 => DirectFault::WrongAnswerType,
        _ => DirectFault::ExtraProse,
    })
}

/// Whether to plant a bug in generated code on the given attempt.
pub fn sample_code_bug<R: Rng + ?Sized>(cfg: &FaultConfig, attempt: usize, rng: &mut R) -> bool {
    rng.gen_bool(cfg.code_rate_at(attempt).clamp(0.0, 1.0))
}

/// Applies a post-formatting fault to a finished response (the
/// [`DirectFault::WrongAnswerType`] variant is applied earlier, at answer
/// construction).
pub fn corrupt_response(text: &str, fault: DirectFault) -> String {
    match fault {
        DirectFault::MalformedJson => {
            // Drop the last closing brace inside the fence: classic
            // truncated-output failure.
            match text.rfind('}') {
                Some(idx) => {
                    let mut s = text.to_owned();
                    s.replace_range(idx..=idx, "");
                    s
                }
                None => format!("{text} <truncated"),
            }
        }
        DirectFault::MissingAnswerField => text.replacen("\"answer\"", "\"result\"", 1),
        DirectFault::WrongAnswerType => text.to_owned(),
        DirectFault::ExtraProse => format!(
            "Certainly! Let me think about this carefully.\n\n{text}\n\nI hope that helps — let me know if you need anything else!"
        ),
    }
}

/// The bug classes planted in generated code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeBug {
    /// A `<=` became `<` or vice versa (the paper's Fibonacci `n + 1` bug
    /// is this family).
    OffByOneBound,
    /// An arithmetic operator was swapped.
    WrongOperator,
    /// A numeric literal drifted by one.
    LiteralDrift,
    /// The reply's code fence is broken (exercises the syntactic check).
    BrokenSyntax,
}

/// Plants a bug in `decl`, returning what was done. [`CodeBug::BrokenSyntax`]
/// is returned without modifying the AST — the caller corrupts the printed
/// text instead.
pub fn plant_bug<R: Rng + ?Sized>(decl: &mut FuncDecl, rng: &mut R) -> CodeBug {
    if rng.gen_bool(0.15) {
        return CodeBug::BrokenSyntax;
    }
    let sites = count_sites(&decl.body);
    if sites == 0 {
        return CodeBug::BrokenSyntax;
    }
    let target = rng.gen_range(0..sites);
    let mut counter = 0;
    let bug = mutate_block(&mut decl.body, target, &mut counter);
    bug.unwrap_or(CodeBug::BrokenSyntax)
}

/// Breaks printed source so it no longer parses (in either syntax): the
/// last non-empty line is truncated mid-way and ends in a byte neither
/// lexer accepts — the textual shape of a cut-off streaming response.
pub fn break_syntax(source: &str) -> String {
    for line in source.lines().rev() {
        if !line.trim().is_empty() {
            let cut = (line.len() / 2).max(1);
            let half = format!("{}@", &line[..cut]);
            return source.replacen(line, &half, 1);
        }
    }
    format!("{source}@")
}

fn count_sites(block: &Block) -> usize {
    let mut n = 0;
    for stmt in block {
        count_stmt(stmt, &mut n);
    }
    n
}

fn count_stmt(stmt: &Stmt, n: &mut usize) {
    match stmt {
        Stmt::Let { init, .. } => count_expr(init, n),
        Stmt::Assign { value, .. } => count_expr(value, n),
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            count_expr(cond, n);
            for s in then_block {
                count_stmt(s, n);
            }
            for s in else_block {
                count_stmt(s, n);
            }
        }
        Stmt::While { cond, body } => {
            count_expr(cond, n);
            for s in body {
                count_stmt(s, n);
            }
        }
        Stmt::ForRange {
            start, end, body, ..
        } => {
            *n += 1; // the inclusive/exclusive bound itself
            count_expr(start, n);
            count_expr(end, n);
            for s in body {
                count_stmt(s, n);
            }
        }
        Stmt::ForOf { iter, body, .. } => {
            count_expr(iter, n);
            for s in body {
                count_stmt(s, n);
            }
        }
        Stmt::Return(Some(e)) => count_expr(e, n),
        _ => {}
    }
}

fn count_expr(e: &Expr, n: &mut usize) {
    match e {
        Expr::Num(_) => *n += 1,
        Expr::Binary(op, a, b) => {
            if swap_op(*op).is_some() {
                *n += 1;
            }
            count_expr(a, n);
            count_expr(b, n);
        }
        Expr::Unary(_, a) => count_expr(a, n),
        Expr::Cond(c, a, b) => {
            count_expr(c, n);
            count_expr(a, n);
            count_expr(b, n);
        }
        Expr::Array(items) => items.iter().for_each(|i| count_expr(i, n)),
        Expr::Object(fields) => fields.iter().for_each(|(_, v)| count_expr(v, n)),
        Expr::Call { args, .. } => args.iter().for_each(|a| count_expr(a, n)),
        Expr::Method { recv, args, .. } => {
            count_expr(recv, n);
            args.iter().for_each(|a| count_expr(a, n));
        }
        Expr::Prop(a, _) => count_expr(a, n),
        Expr::Index(a, b) => {
            count_expr(a, n);
            count_expr(b, n);
        }
        Expr::Lambda { body, .. } => count_expr(body, n),
        _ => {}
    }
}

fn swap_op(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Add => BinOp::Sub,
        BinOp::Sub => BinOp::Add,
        BinOp::Mul => BinOp::Add,
        BinOp::Lt => BinOp::Le,
        BinOp::Le => BinOp::Lt,
        BinOp::Gt => BinOp::Ge,
        BinOp::Ge => BinOp::Gt,
        _ => return None,
    })
}

fn mutate_block(block: &mut Block, target: usize, counter: &mut usize) -> Option<CodeBug> {
    for stmt in block {
        if let Some(bug) = mutate_stmt(stmt, target, counter) {
            return Some(bug);
        }
    }
    None
}

fn mutate_stmt(stmt: &mut Stmt, target: usize, counter: &mut usize) -> Option<CodeBug> {
    match stmt {
        Stmt::Let { init, .. } => mutate_expr(init, target, counter),
        Stmt::Assign { value, .. } => mutate_expr(value, target, counter),
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => mutate_expr(cond, target, counter)
            .or_else(|| mutate_block(then_block, target, counter))
            .or_else(|| mutate_block(else_block, target, counter)),
        Stmt::While { cond, body } => {
            mutate_expr(cond, target, counter).or_else(|| mutate_block(body, target, counter))
        }
        Stmt::ForRange {
            start,
            end,
            inclusive,
            body,
            ..
        } => {
            if *counter == target {
                *inclusive = !*inclusive;
                *counter += 1;
                return Some(CodeBug::OffByOneBound);
            }
            *counter += 1;
            mutate_expr(start, target, counter)
                .or_else(|| mutate_expr(end, target, counter))
                .or_else(|| mutate_block(body, target, counter))
        }
        Stmt::ForOf { iter, body, .. } => {
            mutate_expr(iter, target, counter).or_else(|| mutate_block(body, target, counter))
        }
        Stmt::Return(Some(e)) => mutate_expr(e, target, counter),
        _ => None,
    }
}

fn mutate_expr(e: &mut Expr, target: usize, counter: &mut usize) -> Option<CodeBug> {
    match e {
        Expr::Num(n) => {
            if *counter == target {
                *n += 1.0;
                *counter += 1;
                return Some(CodeBug::LiteralDrift);
            }
            *counter += 1;
            None
        }
        Expr::Binary(op, a, b) => {
            if let Some(swapped) = swap_op(*op) {
                if *counter == target {
                    let bug = if matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) {
                        CodeBug::OffByOneBound
                    } else {
                        CodeBug::WrongOperator
                    };
                    *op = swapped;
                    *counter += 1;
                    return Some(bug);
                }
                *counter += 1;
            }
            mutate_expr(a, target, counter).or_else(|| mutate_expr(b, target, counter))
        }
        Expr::Unary(_, a) => mutate_expr(a, target, counter),
        Expr::Cond(c, a, b) => mutate_expr(c, target, counter)
            .or_else(|| mutate_expr(a, target, counter))
            .or_else(|| mutate_expr(b, target, counter)),
        Expr::Array(items) => {
            for i in items {
                if let Some(bug) = mutate_expr(i, target, counter) {
                    return Some(bug);
                }
            }
            None
        }
        Expr::Object(fields) => {
            for (_, v) in fields {
                if let Some(bug) = mutate_expr(v, target, counter) {
                    return Some(bug);
                }
            }
            None
        }
        Expr::Call { args, .. } => {
            for a in args {
                if let Some(bug) = mutate_expr(a, target, counter) {
                    return Some(bug);
                }
            }
            None
        }
        Expr::Method { recv, args, .. } => {
            if let Some(bug) = mutate_expr(recv, target, counter) {
                return Some(bug);
            }
            for a in args {
                if let Some(bug) = mutate_expr(a, target, counter) {
                    return Some(bug);
                }
            }
            None
        }
        Expr::Prop(a, _) => mutate_expr(a, target, counter),
        Expr::Index(a, b) => {
            mutate_expr(a, target, counter).or_else(|| mutate_expr(b, target, counter))
        }
        Expr::Lambda { body, .. } => mutate_expr(body, target, counter),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::build::{self, num, var};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn factorial_fn() -> FuncDecl {
        build::func(
            "fact",
            [("n", askit_types::int())],
            askit_types::int(),
            vec![
                build::let_("acc", num(1.0)),
                build::for_range_incl(
                    "i",
                    num(2.0),
                    var("n"),
                    vec![build::assign_op("acc", minilang::BinOp::Mul, var("i"))],
                ),
                build::ret(var("acc")),
            ],
        )
    }

    #[test]
    fn rates_decay_per_attempt() {
        let cfg = FaultConfig::default();
        assert!(cfg.direct_rate_at(0) > cfg.direct_rate_at(1));
        assert!(cfg.code_rate_at(3) < 0.02);
        assert_eq!(FaultConfig::none().direct_rate_at(0), 0.0);
    }

    #[test]
    fn sampling_respects_rates() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = FaultConfig {
            direct_fault_rate: 1.0,
            code_bug_rate: 1.0,
            decay: 0.0,
        };
        assert!(sample_direct_fault(&cfg, 0, &mut rng).is_some());
        assert!(
            sample_direct_fault(&cfg, 1, &mut rng).is_none(),
            "decayed to zero"
        );
        assert!(sample_code_bug(&cfg, 0, &mut rng));
        assert!(!sample_code_bug(&cfg, 2, &mut rng));
    }

    #[test]
    fn corruption_forms() {
        let clean = "```json\n{\"reason\": \"r\", \"answer\": 42}\n```";
        let broken = corrupt_response(clean, DirectFault::MalformedJson);
        assert!(
            askit_json::extract::extract_json(&broken).is_none(),
            "{broken}"
        );
        let renamed = corrupt_response(clean, DirectFault::MissingAnswerField);
        assert!(renamed.contains("\"result\""));
        assert!(!renamed.contains("\"answer\""));
        let prose = corrupt_response(clean, DirectFault::ExtraProse);
        let v = askit_json::extract::extract_json(&prose).unwrap();
        assert_eq!(v.get_key("answer"), Some(&askit_json::Json::Int(42)));
    }

    #[test]
    fn planted_bugs_change_behaviour() {
        // Across seeds, a planted (non-syntax) bug must change factorial's
        // output or crash it — never silently preserve semantics.
        let mut changed = 0;
        let mut syntax = 0;
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut decl = factorial_fn();
            let bug = plant_bug(&mut decl, &mut rng);
            if bug == CodeBug::BrokenSyntax {
                syntax += 1;
                continue;
            }
            let program = minilang::ast::Program {
                functions: vec![decl],
            };
            let mut args = askit_json::Map::new();
            args.insert("n", askit_json::Json::Int(5));
            let out = minilang::Interp::new(&program).call_json("fact", &args);
            match out {
                Ok(askit_json::Json::Int(120)) => {
                    // A bound flip on an already-tight loop can coincide; a
                    // literal drift cannot. Allow rare coincidences only for
                    // bound flips.
                    assert_eq!(
                        bug,
                        CodeBug::OffByOneBound,
                        "seed {seed}: bug {bug:?} was a no-op"
                    );
                }
                _ => changed += 1,
            }
        }
        assert!(
            changed >= 25,
            "only {changed} of 40 seeds changed behaviour"
        );
        assert!(syntax >= 1, "syntax faults should occur sometimes");
    }

    #[test]
    fn break_syntax_breaks_both_frontends() {
        let decl = factorial_fn();
        let ts = minilang::print_function(&decl, minilang::Syntax::Ts);
        let broken = break_syntax(&ts);
        assert!(minilang::parse_ts(&broken).is_err());
        let py = minilang::print_function(&decl, minilang::Syntax::Py);
        let broken = break_syntax(&py);
        assert!(minilang::parse_py(&broken).is_err());
    }
}
