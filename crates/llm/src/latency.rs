//! The token-based latency model for simulated LLM calls.
//!
//! Table III's headline numbers compare the *latency of a model round trip*
//! (13.28 s for TS / 22.97 s for Py on GPT-4 in the paper) against the
//! *execution time of generated code* (tens of microseconds). The substrate
//! here reproduces the first half: latency = `base + prompt·a + completion·b
//! (± jitter)`, the standard first-order model of autoregressive serving —
//! prompt tokens are cheap (parallel prefill), completion tokens are
//! expensive (serial decode).

use std::time::Duration;

use rand::Rng;

use crate::api::{ModelChoice, TokenUsage};

/// A latency profile for a simulated model.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Fixed overhead per request (network + queueing).
    pub base: Duration,
    /// Cost per prompt token (prefill).
    pub per_prompt_token: Duration,
    /// Cost per completion token (decode).
    pub per_completion_token: Duration,
    /// Multiplicative jitter: the result is scaled by a uniform factor in
    /// `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl LatencyModel {
    /// Profile approximating GPT-4-class serving (slow decode).
    ///
    /// Calibrated so that the paper's GSM8K prompts (~500 prompt tokens,
    /// ~250 completion tokens with chain-of-thought) land in the 13–23 s
    /// band Table III reports.
    pub fn gpt4() -> Self {
        LatencyModel {
            base: Duration::from_millis(900),
            per_prompt_token: Duration::from_micros(900),
            per_completion_token: Duration::from_millis(55),
            jitter: 0.25,
        }
    }

    /// Profile approximating GPT-3.5-turbo-class serving (fast decode).
    pub fn gpt35() -> Self {
        LatencyModel {
            base: Duration::from_millis(500),
            per_prompt_token: Duration::from_micros(400),
            per_completion_token: Duration::from_millis(18),
            jitter: 0.25,
        }
    }

    /// The profile a routed request should be served under: the named
    /// model's profile, or `default` when the request doesn't pick one.
    pub fn for_choice(choice: ModelChoice, default: &LatencyModel) -> LatencyModel {
        match choice {
            ModelChoice::Default => default.clone(),
            ModelChoice::Gpt35 => LatencyModel::gpt35(),
            ModelChoice::Gpt4 => LatencyModel::gpt4(),
        }
    }

    /// Computes the simulated latency for a request with the given usage.
    pub fn sample<R: Rng + ?Sized>(&self, usage: TokenUsage, rng: &mut R) -> Duration {
        let raw = self.base
            + self.per_prompt_token * usage.prompt_tokens as u32
            + self.per_completion_token * usage.completion_tokens as u32;
        if self.jitter == 0.0 {
            return raw;
        }
        let factor = 1.0 + rng.gen_range(-self.jitter..=self.jitter);
        raw.mul_f64(factor.max(0.05))
    }

    /// The deterministic (jitter-free) expectation, used by benches.
    pub fn expected(&self, usage: TokenUsage) -> Duration {
        self.base
            + self.per_prompt_token * usage.prompt_tokens as u32
            + self.per_completion_token * usage.completion_tokens as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn usage(p: usize, c: usize) -> TokenUsage {
        TokenUsage {
            prompt_tokens: p,
            completion_tokens: c,
        }
    }

    #[test]
    fn decode_dominates_prefill() {
        let m = LatencyModel::gpt4();
        let many_prompt = m.expected(usage(1000, 10));
        let many_completion = m.expected(usage(10, 1000));
        assert!(many_completion > many_prompt * 5);
    }

    #[test]
    fn gsm8k_style_request_lands_in_the_paper_band() {
        // ~500 prompt tokens, ~250 reasoning tokens → Table III reports
        // 13.28 s (TS) and 22.97 s (Py) means for GPT-4.
        let m = LatencyModel::gpt4();
        let d = m.expected(usage(500, 250));
        assert!(d > Duration::from_secs(5), "{d:?}");
        assert!(d < Duration::from_secs(40), "{d:?}");
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let m = LatencyModel::gpt4();
        let e = m.expected(usage(100, 100));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = m.sample(usage(100, 100), &mut rng);
            assert!(d >= e.mul_f64(0.74), "{d:?} vs {e:?}");
            assert!(d <= e.mul_f64(1.26), "{d:?} vs {e:?}");
        }
        let a = m.sample(usage(10, 10), &mut StdRng::seed_from_u64(7));
        let b = m.sample(usage(10, 10), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn gpt35_is_faster_than_gpt4() {
        let u = usage(400, 200);
        assert!(LatencyModel::gpt35().expected(u) < LatencyModel::gpt4().expected(u));
    }

    #[test]
    fn choice_routing_falls_back_to_the_default_profile() {
        let configured = LatencyModel::gpt4();
        assert_eq!(
            LatencyModel::for_choice(ModelChoice::Default, &configured),
            configured
        );
        assert_eq!(
            LatencyModel::for_choice(ModelChoice::Gpt35, &configured),
            LatencyModel::gpt35()
        );
        assert_eq!(
            LatencyModel::for_choice(ModelChoice::Gpt4, &LatencyModel::gpt35()),
            LatencyModel::gpt4()
        );
    }
}
