//! A deterministic subword token counter.
//!
//! The latency model and the cost accounting need token counts; real BPE is
//! unnecessary, but pure `chars / 4` is too crude for code-heavy prompts.
//! This counter splits text into word / number / punctuation runs and charges
//! long words as multiple subwords, which tracks GPT-family tokenizers to
//! within ~15% on English-plus-code text — close enough for a latency model.

/// Counts tokens in `text`.
///
/// Rules: every run of letters counts `ceil(len/4)` tokens (subwords), every
/// run of digits counts `ceil(len/3)`, every other non-space character is a
/// token of its own, whitespace is free (attached to neighbors, as in BPE).
///
/// ```
/// use askit_llm::tokenizer::count_tokens;
/// assert_eq!(count_tokens("hello world"), 4); // hel|lo + wor|ld → 2 + 2
/// assert_eq!(count_tokens(""), 0);
/// assert!(count_tokens("{\"answer\": 42}") >= 5);
/// ```
pub fn count_tokens(text: &str) -> usize {
    let mut tokens = 0;
    let mut word_len = 0;
    let mut digit_len = 0;
    for c in text.chars() {
        if c.is_alphabetic() {
            flush_digits(&mut tokens, &mut digit_len);
            word_len += 1;
        } else if c.is_ascii_digit() {
            flush_word(&mut tokens, &mut word_len);
            digit_len += 1;
        } else {
            flush_word(&mut tokens, &mut word_len);
            flush_digits(&mut tokens, &mut digit_len);
            if !c.is_whitespace() {
                tokens += 1;
            }
        }
    }
    flush_word(&mut tokens, &mut word_len);
    flush_digits(&mut tokens, &mut digit_len);
    tokens
}

fn flush_word(tokens: &mut usize, len: &mut usize) {
    if *len > 0 {
        *tokens += len.div_ceil(4);
        *len = 0;
    }
}

fn flush_digits(tokens: &mut usize, len: &mut usize) {
    if *len > 0 {
        *tokens += len.div_ceil(3);
        *len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_whitespace() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("   \n\t "), 0);
    }

    #[test]
    fn words_split_into_subwords() {
        assert_eq!(count_tokens("cat"), 1);
        assert_eq!(count_tokens("cats"), 1);
        assert_eq!(count_tokens("catss"), 2);
        assert_eq!(count_tokens("internationalization"), 5);
    }

    #[test]
    fn numbers_and_punctuation() {
        assert_eq!(count_tokens("42"), 1);
        assert_eq!(count_tokens("1234"), 2);
        assert_eq!(count_tokens("a + b"), 3);
        assert_eq!(count_tokens("{x: 1}"), 5); // { x : 1 }
    }

    #[test]
    fn is_monotone_in_text_length() {
        let short = "List 3 classic books.";
        let long = "List 3 classic books on computer science and explain why each matters.";
        assert!(count_tokens(long) > count_tokens(short));
    }

    #[test]
    fn code_heavy_text_counts_punctuation() {
        let code = "export function f({x}: {x: number}): number { return x + 1; }";
        // Lots of structure; should be well above a whitespace word count.
        assert!(count_tokens(code) > 20, "{}", count_tokens(code));
    }
}
