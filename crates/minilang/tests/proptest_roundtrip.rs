//! Property tests: printing an AST in either surface syntax and re-parsing
//! it yields the same AST, and interpreting generated functions never
//! panics. This is the invariant the mock LLM relies on — it synthesizes
//! ASTs and ships them as source text.

use askit_types::{float, Type};
use minilang::ast::{Block, Expr, FuncDecl, LValue, Param, Program, Stmt, UnOp};
use minilang::pretty::{print_function, Syntax};
use minilang::{parse_py, parse_ts, BinOp, Interp};
use proptest::prelude::*;

const VARS: &[&str] = &["p0", "p1", "p2", "v0", "v1", "acc"];

fn arb_var() -> impl Strategy<Value = String> {
    prop::sample::select(VARS).prop_map(str::to_owned)
}

/// Binary operators that round-trip in both syntaxes. `FloorDiv` is
/// excluded: MiniTS deliberately desugars it to `Math.floor(a / b)` (see the
/// printer's unit test), which re-parses as that call.
fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop::sample::select(vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Pow,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::And,
        BinOp::Or,
    ])
}

/// Method calls that round-trip in both syntaxes (arity-correct).
fn arb_method(inner: BoxedStrategy<Expr>) -> BoxedStrategy<Expr> {
    let arg = inner.clone();
    prop_oneof![
        (
            inner.clone(),
            prop::sample::select(vec![
                "to_upper", "to_lower", "trim", "pop", "reverse", "sort"
            ])
        )
            .prop_map(|(r, m)| Expr::method(r, m, vec![])),
        (
            inner.clone(),
            arg.clone(),
            prop::sample::select(vec![
                "includes",
                "split",
                "index_of",
                "push",
                "starts_with",
                "ends_with",
                "join",
                "count"
            ])
        )
            .prop_map(|(r, a, m)| Expr::method(r, m, vec![a])),
        (inner.clone(), arg.clone()).prop_map(|(r, a)| Expr::method(r, "slice", vec![a])),
        (inner.clone(), arg.clone(), arg).prop_map(|(r, a, b)| Expr::method(
            r,
            "slice",
            vec![a, b]
        )),
        inner.prop_map(|r| Expr::prop(r, "len")),
    ]
    .boxed()
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i32..1000).prop_map(|n| Expr::Num(f64::from(n))),
        (0i32..100).prop_map(|n| Expr::Num(f64::from(n) + 0.5)),
        any::<bool>().prop_map(Expr::Bool),
        "[a-z A-Z0-9_,.!?-]{0,10}".prop_map(Expr::Str),
        arb_var().prop_map(Expr::Var),
        Just(Expr::Null),
    ];
    leaf.prop_recursive(4, 40, 4, |inner| {
        let boxed = inner.clone().boxed();
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e))),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, a, b)| Expr::Cond(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::Array),
            (inner.clone(), inner.clone()).prop_map(|(b, i)| Expr::index(b, i)),
            arb_method(boxed),
            (
                prop::sample::select(vec!["abs", "floor", "sqrt", "to_string", "sum"]),
                inner
            )
                .prop_map(|(f, a)| Expr::call(f, vec![a])),
        ]
    })
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let simple = prop_oneof![
        (arb_var(), arb_expr()).prop_map(|(n, e)| Stmt::Let {
            name: n,
            init: e,
            mutable: true
        }),
        (
            arb_var(),
            arb_expr(),
            prop::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Mul])
        )
            .prop_map(|(n, e, op)| Stmt::Assign {
                target: LValue::Var(n),
                op: Some(op),
                value: e
            }),
        (arb_expr(), arb_expr(), arb_expr()).prop_map(|(b, i, v)| Stmt::Assign {
            target: LValue::Index(Box::new(b), Box::new(i)),
            op: None,
            value: v
        }),
        arb_expr().prop_map(|e| Stmt::Return(Some(e))),
        arb_expr().prop_map(Stmt::Expr),
    ];
    if depth == 0 {
        return simple.boxed();
    }
    let nested_block = prop::collection::vec(arb_stmt(depth - 1), 1..3);
    prop_oneof![
        4 => simple,
        1 => (arb_expr(), nested_block.clone(), prop::collection::vec(arb_stmt(depth - 1), 0..2))
            .prop_map(|(c, t, e)| Stmt::If { cond: c, then_block: t, else_block: e }),
        1 => (arb_expr(), nested_block.clone()).prop_map(|(c, b)| Stmt::While { cond: c, body: b }),
        1 => (arb_expr(), arb_expr(), nested_block.clone()).prop_map(|(s, e, b)| Stmt::ForRange {
            var: "i".into(),
            start: s,
            end: e,
            inclusive: false,
            body: b
        }),
        1 => (arb_expr(), nested_block).prop_map(|(it, b)| Stmt::ForOf {
            var: "x".into(),
            iter: it,
            body: b
        }),
    ]
    .boxed()
}

fn arb_func() -> impl Strategy<Value = FuncDecl> {
    prop::collection::vec(arb_stmt(2), 1..6).prop_map(|body: Block| FuncDecl {
        name: "generated".into(),
        params: vec![
            Param {
                name: "p0".into(),
                ty: float(),
            },
            Param {
                name: "p1".into(),
                ty: float(),
            },
        ],
        ret: Type::Any,
        body,
        exported: true,
        doc: vec![],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print-as-MiniTS → parse-as-MiniTS is the identity.
    #[test]
    fn ts_roundtrip(f in arb_func()) {
        let text = print_function(&f, Syntax::Ts);
        let parsed = parse_ts(&text)
            .unwrap_or_else(|e| panic!("printed TS failed to parse: {e}\n{text}"));
        prop_assert_eq!(&parsed.functions[0], &f, "\n--- printed ---\n{}", text);
    }

    /// print-as-MiniPy → parse-as-MiniPy preserves everything but the
    /// type annotations (MiniPy prints untyped defs).
    #[test]
    fn py_roundtrip(f in arb_func()) {
        let text = print_function(&f, Syntax::Py);
        let parsed = parse_py(&text)
            .unwrap_or_else(|e| panic!("printed Py failed to parse: {e}\n{text}"));
        let g = &parsed.functions[0];
        prop_assert_eq!(&g.name, &f.name);
        prop_assert_eq!(
            g.params.iter().map(|p| p.name.clone()).collect::<Vec<_>>(),
            f.params.iter().map(|p| p.name.clone()).collect::<Vec<_>>()
        );
        prop_assert_eq!(&g.body, &f.body, "\n--- printed ---\n{}", text);
    }

    /// Both re-parses agree with each other exactly.
    #[test]
    fn ts_and_py_agree(f in arb_func()) {
        let ts = parse_ts(&print_function(&f, Syntax::Ts)).unwrap();
        let py = parse_py(&print_function(&f, Syntax::Py)).unwrap();
        prop_assert_eq!(&ts.functions[0].body, &py.functions[0].body);
    }

    /// The interpreter is total on generated functions: it returns a
    /// Result, never panics, and always terminates (fuel).
    #[test]
    fn interpreter_is_total(f in arb_func(), a in -100i32..100, b in -100i32..100) {
        let program = Program { functions: vec![f] };
        let mut args = askit_json::Map::new();
        args.insert("p0", askit_json::Json::Int(i64::from(a)));
        args.insert("p1", askit_json::Json::Int(i64::from(b)));
        let mut interp = Interp::new(&program).with_fuel(200_000);
        let _ = interp.call_json("generated", &args);
    }

    /// Running the original AST and the TS-round-tripped AST gives identical
    /// outcomes.
    #[test]
    fn roundtrip_preserves_semantics(f in arb_func(), a in 0i32..50) {
        let original = Program { functions: vec![f.clone()] };
        let reparsed = parse_ts(&print_function(&f, Syntax::Ts)).unwrap();
        let mut args = askit_json::Map::new();
        args.insert("p0", askit_json::Json::Int(i64::from(a)));
        args.insert("p1", askit_json::Json::Int(7));
        let r1 = Interp::new(&original).with_fuel(200_000).call_json("generated", &args);
        let r2 = Interp::new(&reparsed).with_fuel(200_000).call_json("generated", &args);
        match (r1, r2) {
            (Ok(x), Ok(y)) => prop_assert!(x.loosely_equals(&y), "{x} != {y}"),
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "diverged: {x:?} vs {y:?}"),
        }
    }
}
