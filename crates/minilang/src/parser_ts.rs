//! Parser for the MiniTS (TypeScript-like) surface syntax.
//!
//! Accepts the paper's generated-code shape (Figure 4):
//!
//! ```text
//! export function name({x, y}: {x: number, y: number[]}): number {
//!   let total = 0;
//!   for (const v of y) { total += v; }
//!   return total + x;
//! }
//! ```
//!
//! Surface spellings (`.toUpperCase()`, `Math.floor`, `parseInt`, `===`) are
//! canonicalized during parsing; see [`crate::builtins`].

use askit_types::Type;

use crate::ast::{BinOp, Block, Expr, FuncDecl, LValue, Param, Program, Stmt, UnOp};
use crate::builtins;
use crate::cursor::Cursor;
use crate::lexer_ts::lex_ts;
use crate::token::{SyntaxError, Tok};
use crate::typeparse::parse_type;

/// Parses a MiniTS compilation unit.
///
/// # Errors
///
/// Returns the first [`SyntaxError`] encountered.
pub fn parse_ts(source: &str) -> Result<Program, SyntaxError> {
    let tokens = lex_ts(source)?;
    let mut c = Cursor::new(tokens);
    let mut functions = Vec::new();
    while !c.at_eof() {
        functions.push(function(&mut c)?);
    }
    if functions.is_empty() {
        return Err(c.error("expected at least one function declaration"));
    }
    Ok(Program { functions })
}

/// Parses a single MiniTS expression (used by tests and the REPL-style
/// examples).
pub fn parse_ts_expr(source: &str) -> Result<Expr, SyntaxError> {
    let tokens = lex_ts(source)?;
    let mut c = Cursor::new(tokens);
    let e = expr(&mut c)?;
    if !c.at_eof() {
        return Err(c.error("unexpected trailing input"));
    }
    Ok(e)
}

fn function(c: &mut Cursor) -> Result<FuncDecl, SyntaxError> {
    let exported = c.eat_kw("export");
    c.expect_kw("function")?;
    let name = c.expect_ident()?;
    c.expect(&Tok::LParen)?;
    let params = params(c)?;
    c.expect(&Tok::RParen)?;
    let ret = if c.eat(&Tok::Colon) {
        parse_type(c)?
    } else {
        askit_types::any()
    };
    let body = block(c)?;
    Ok(FuncDecl {
        name,
        params,
        ret,
        body,
        exported,
        doc: vec![],
    })
}

fn params(c: &mut Cursor) -> Result<Vec<Param>, SyntaxError> {
    if c.peek().tok == Tok::RParen {
        return Ok(vec![]);
    }
    if c.peek().tok == Tok::LBrace {
        // Destructured named parameters: `{x, y}: {x: number, y: number}`.
        // `({}: {})` is the zero-parameter form.
        c.advance();
        let mut names = Vec::new();
        if !c.eat(&Tok::RBrace) {
            loop {
                names.push(c.expect_ident()?);
                if !c.eat(&Tok::Comma) {
                    break;
                }
            }
            c.expect(&Tok::RBrace)?;
        }
        c.expect(&Tok::Colon)?;
        let ty = parse_type(c)?;
        let Type::Dict(fields) = &ty else {
            return Err(c.error("destructured parameters need an object type"));
        };
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let field = fields.iter().find(|(k, _)| *k == name).ok_or_else(|| {
                c.error(format!(
                    "parameter '{name}' missing from the parameter type"
                ))
            })?;
            out.push(Param {
                name,
                ty: field.1.clone(),
            });
        }
        return Ok(out);
    }
    // Plain parameters: `x: number, y` (untyped default to any).
    let mut out = Vec::new();
    loop {
        let name = c.expect_ident()?;
        let ty = if c.eat(&Tok::Colon) {
            parse_type(c)?
        } else {
            askit_types::any()
        };
        out.push(Param { name, ty });
        if !c.eat(&Tok::Comma) {
            break;
        }
    }
    Ok(out)
}

fn block(c: &mut Cursor) -> Result<Block, SyntaxError> {
    c.expect(&Tok::LBrace)?;
    let mut stmts = Vec::new();
    while !c.eat(&Tok::RBrace) {
        if c.at_eof() {
            return Err(c.error("unterminated block"));
        }
        stmts.push(stmt(c)?);
    }
    Ok(stmts)
}

fn stmt(c: &mut Cursor) -> Result<Stmt, SyntaxError> {
    if c.at_kw("let") || c.at_kw("const") {
        let mutable = c.at_kw("let");
        c.advance();
        let name = c.expect_ident()?;
        if c.eat(&Tok::Colon) {
            parse_type(c)?; // declared type accepted and erased
        }
        c.expect(&Tok::Assign)?;
        let init = expr(c)?;
        c.eat(&Tok::Semi);
        return Ok(Stmt::Let {
            name,
            init,
            mutable,
        });
    }
    if c.eat_kw("return") {
        let value = if matches!(c.peek().tok, Tok::Semi | Tok::RBrace) {
            None
        } else {
            Some(expr(c)?)
        };
        c.eat(&Tok::Semi);
        return Ok(Stmt::Return(value));
    }
    if c.at_kw("if") {
        return if_stmt(c);
    }
    if c.eat_kw("while") {
        c.expect(&Tok::LParen)?;
        let cond = expr(c)?;
        c.expect(&Tok::RParen)?;
        let body = block(c)?;
        return Ok(Stmt::While { cond, body });
    }
    if c.eat_kw("for") {
        return for_stmt(c);
    }
    if c.eat_kw("break") {
        c.eat(&Tok::Semi);
        return Ok(Stmt::Break);
    }
    if c.eat_kw("continue") {
        c.eat(&Tok::Semi);
        return Ok(Stmt::Continue);
    }
    expr_or_assign(c)
}

fn if_stmt(c: &mut Cursor) -> Result<Stmt, SyntaxError> {
    c.expect_kw("if")?;
    c.expect(&Tok::LParen)?;
    let cond = expr(c)?;
    c.expect(&Tok::RParen)?;
    let then_block = block(c)?;
    let else_block = if c.eat_kw("else") {
        if c.at_kw("if") {
            vec![if_stmt(c)?]
        } else {
            block(c)?
        }
    } else {
        vec![]
    };
    Ok(Stmt::If {
        cond,
        then_block,
        else_block,
    })
}

// The `n == 1.0` guard below cannot be a float pattern (not legal Rust).
#[allow(clippy::redundant_guards)]
fn for_stmt(c: &mut Cursor) -> Result<Stmt, SyntaxError> {
    c.expect(&Tok::LParen)?;
    if !(c.at_kw("let") || c.at_kw("const")) {
        return Err(c.error("for-loop must declare its variable with let/const"));
    }
    c.advance();
    let var = c.expect_ident()?;
    if c.eat_kw("of") {
        let iter = expr(c)?;
        c.expect(&Tok::RParen)?;
        let body = block(c)?;
        return Ok(Stmt::ForOf { var, iter, body });
    }
    // Counted loop: `let i = start; i < end; i++`.
    c.expect(&Tok::Assign)?;
    let start = expr(c)?;
    c.expect(&Tok::Semi)?;
    let cond_var = c.expect_ident()?;
    if cond_var != var {
        return Err(c.error(format!(
            "for-loop condition must test '{var}', found '{cond_var}'"
        )));
    }
    let inclusive = match c.advance().tok {
        Tok::Lt => false,
        Tok::Le => true,
        other => return Err(c.error(format!("expected '<' or '<=' in for-loop, found {other}"))),
    };
    let end = expr(c)?;
    c.expect(&Tok::Semi)?;
    let step_var = c.expect_ident()?;
    if step_var != var {
        return Err(c.error(format!(
            "for-loop step must update '{var}', found '{step_var}'"
        )));
    }
    match c.advance().tok {
        Tok::PlusPlus => {}
        Tok::PlusAssign => match c.advance().tok {
            Tok::Num(n) if n == 1.0 => {}
            _ => return Err(c.error("only unit-step for-loops are supported")),
        },
        other => return Err(c.error(format!("expected '++' in for-loop, found {other}"))),
    }
    c.expect(&Tok::RParen)?;
    let body = block(c)?;
    Ok(Stmt::ForRange {
        var,
        start,
        end,
        inclusive,
        body,
    })
}

fn expr_or_assign(c: &mut Cursor) -> Result<Stmt, SyntaxError> {
    let e = expr(c)?;
    let op = match c.peek().tok {
        Tok::Assign => None,
        Tok::PlusAssign => Some(BinOp::Add),
        Tok::MinusAssign => Some(BinOp::Sub),
        Tok::StarAssign => Some(BinOp::Mul),
        Tok::SlashAssign => Some(BinOp::Div),
        Tok::PlusPlus | Tok::MinusMinus => {
            let inc = matches!(c.peek().tok, Tok::PlusPlus);
            c.advance();
            c.eat(&Tok::Semi);
            let target = to_lvalue(c, e)?;
            return Ok(Stmt::Assign {
                target,
                op: Some(if inc { BinOp::Add } else { BinOp::Sub }),
                value: Expr::Num(1.0),
            });
        }
        _ => {
            c.eat(&Tok::Semi);
            return Ok(Stmt::Expr(e));
        }
    };
    c.advance();
    let value = expr(c)?;
    c.eat(&Tok::Semi);
    let target = to_lvalue(c, e)?;
    Ok(Stmt::Assign { target, op, value })
}

fn to_lvalue(c: &Cursor, e: Expr) -> Result<LValue, SyntaxError> {
    match e {
        Expr::Var(name) => Ok(LValue::Var(name)),
        Expr::Index(base, idx) => Ok(LValue::Index(base, idx)),
        Expr::Prop(base, field) => {
            // `obj.field = v` desugars to `obj["field"] = v`.
            Ok(LValue::Index(base, Box::new(Expr::Str(field))))
        }
        _ => Err(c.error("invalid assignment target")),
    }
}

// --- expressions (precedence climbing) ------------------------------------

pub(crate) fn expr(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    ternary(c)
}

fn ternary(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    let cond = binary(c, 1)?;
    if c.eat(&Tok::Question) {
        let then_e = expr(c)?;
        c.expect(&Tok::Colon)?;
        let else_e = expr(c)?;
        return Ok(Expr::Cond(
            Box::new(cond),
            Box::new(then_e),
            Box::new(else_e),
        ));
    }
    Ok(cond)
}

fn binop_of(tok: &Tok) -> Option<BinOp> {
    Some(match tok {
        Tok::PipePipe => BinOp::Or,
        Tok::AmpAmp => BinOp::And,
        Tok::EqEq => BinOp::Eq,
        Tok::NotEq => BinOp::Ne,
        Tok::Lt => BinOp::Lt,
        Tok::Le => BinOp::Le,
        Tok::Gt => BinOp::Gt,
        Tok::Ge => BinOp::Ge,
        Tok::Plus => BinOp::Add,
        Tok::Minus => BinOp::Sub,
        Tok::Star => BinOp::Mul,
        Tok::Slash => BinOp::Div,
        Tok::SlashSlash => BinOp::FloorDiv,
        Tok::Percent => BinOp::Mod,
        Tok::StarStar => BinOp::Pow,
        _ => return None,
    })
}

fn binary(c: &mut Cursor, min_prec: u8) -> Result<Expr, SyntaxError> {
    let mut lhs = unary(c)?;
    while let Some(op) = binop_of(&c.peek().tok) {
        let prec = op.precedence();
        if prec < min_prec {
            break;
        }
        c.advance();
        let next_min = if op.right_assoc() { prec } else { prec + 1 };
        let rhs = binary(c, next_min)?;
        lhs = Expr::bin(op, lhs, rhs);
    }
    Ok(lhs)
}

fn unary(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    match c.peek().tok {
        Tok::Bang => {
            c.advance();
            Ok(Expr::Unary(UnOp::Not, Box::new(unary(c)?)))
        }
        Tok::Minus => {
            c.advance();
            Ok(Expr::Unary(UnOp::Neg, Box::new(unary(c)?)))
        }
        _ => postfix(c),
    }
}

fn postfix(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    let mut e = primary(c)?;
    loop {
        match c.peek().tok {
            Tok::LParen => {
                c.advance();
                let args = call_args(c)?;
                e = match e {
                    Expr::Var(name) => Expr::Call {
                        callee: builtins::canonical_free_ts(&name).to_owned(),
                        args,
                    },
                    Expr::Lambda { .. } => {
                        return Err(c.error("immediately-invoked lambdas are not supported"))
                    }
                    _ => return Err(c.error("only named functions can be called")),
                };
            }
            Tok::LBracket => {
                c.advance();
                let idx = expr(c)?;
                c.expect(&Tok::RBracket)?;
                e = Expr::index(e, idx);
            }
            Tok::Dot => {
                c.advance();
                let member = c.expect_ident()?;
                if c.peek().tok == Tok::LParen {
                    c.advance();
                    let args = call_args(c)?;
                    e = make_member_call(e, &member, args);
                } else {
                    e = match member.as_str() {
                        "length" => Expr::prop(e, "len"),
                        other => Expr::prop(e, other),
                    };
                }
            }
            _ => return Ok(e),
        }
    }
}

/// Builds a member call, resolving `Math.floor(x)`-style namespace calls and
/// canonicalizing method spellings.
fn make_member_call(recv: Expr, member: &str, args: Vec<Expr>) -> Expr {
    if let Expr::Var(ns) = &recv {
        if let Some(canonical) = builtins::canonical_namespace_call(ns, member) {
            return Expr::Call {
                callee: canonical.to_owned(),
                args,
            };
        }
    }
    let canonical = builtins::canonical_method_ts(member);
    if canonical == "to_string" && args.is_empty() {
        return Expr::Call {
            callee: "to_string".to_owned(),
            args: vec![recv],
        };
    }
    Expr::method(recv, canonical, args)
}

fn call_args(c: &mut Cursor) -> Result<Vec<Expr>, SyntaxError> {
    let mut args = Vec::new();
    if c.eat(&Tok::RParen) {
        return Ok(args);
    }
    loop {
        args.push(expr(c)?);
        if !c.eat(&Tok::Comma) {
            break;
        }
    }
    c.expect(&Tok::RParen)?;
    Ok(args)
}

fn primary(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    match c.peek().tok.clone() {
        Tok::Num(n) => {
            c.advance();
            Ok(Expr::Num(n))
        }
        Tok::Str(s) => {
            c.advance();
            Ok(Expr::Str(s))
        }
        Tok::Ident(word) => {
            // Single-parameter arrow: `x => body`.
            if c.peek_at(1).tok == Tok::FatArrow {
                c.advance();
                c.advance();
                let body = expr(c)?;
                return Ok(Expr::Lambda {
                    params: vec![word],
                    body: Box::new(body),
                });
            }
            c.advance();
            match word.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                "null" | "undefined" => Ok(Expr::Null),
                _ => Ok(Expr::Var(word)),
            }
        }
        Tok::LParen => {
            // Either a parenthesized expression or a multi-param arrow.
            if let Some(params) = try_arrow_params(c) {
                let body = expr(c)?;
                return Ok(Expr::Lambda {
                    params,
                    body: Box::new(body),
                });
            }
            c.advance();
            let e = expr(c)?;
            c.expect(&Tok::RParen)?;
            Ok(e)
        }
        Tok::LBracket => {
            c.advance();
            let mut items = Vec::new();
            if c.eat(&Tok::RBracket) {
                return Ok(Expr::Array(items));
            }
            loop {
                items.push(expr(c)?);
                if !c.eat(&Tok::Comma) {
                    break;
                }
                if c.peek().tok == Tok::RBracket {
                    break; // trailing comma
                }
            }
            c.expect(&Tok::RBracket)?;
            Ok(Expr::Array(items))
        }
        Tok::LBrace => {
            c.advance();
            let mut fields = Vec::new();
            if c.eat(&Tok::RBrace) {
                return Ok(Expr::Object(fields));
            }
            loop {
                let key = match c.peek().tok.clone() {
                    Tok::Ident(k) => {
                        c.advance();
                        k
                    }
                    Tok::Str(k) => {
                        c.advance();
                        k
                    }
                    other => return Err(c.error(format!("expected object key, found {other}"))),
                };
                c.expect(&Tok::Colon)?;
                fields.push((key, expr(c)?));
                if !c.eat(&Tok::Comma) {
                    break;
                }
                if c.peek().tok == Tok::RBrace {
                    break; // trailing comma
                }
            }
            c.expect(&Tok::RBrace)?;
            Ok(Expr::Object(fields))
        }
        other => Err(c.error(format!("unexpected {other} in expression"))),
    }
}

/// Looks ahead for `(a, b) => …`; on a match, consumes through the arrow and
/// returns the parameter names. Otherwise leaves the cursor untouched.
fn try_arrow_params(c: &mut Cursor) -> Option<Vec<String>> {
    let mark = c.mark();
    if !c.eat(&Tok::LParen) {
        return None;
    }
    let mut params = Vec::new();
    if !c.eat(&Tok::RParen) {
        loop {
            match c.peek().tok.clone() {
                Tok::Ident(name) => {
                    c.advance();
                    params.push(name);
                }
                _ => {
                    c.reset(mark);
                    return None;
                }
            }
            if c.eat(&Tok::Comma) {
                continue;
            }
            if c.eat(&Tok::RParen) {
                break;
            }
            c.reset(mark);
            return None;
        }
    }
    if c.eat(&Tok::FatArrow) {
        Some(params)
    } else {
        c.reset(mark);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askit_types::{dict, float, list};

    #[test]
    fn parses_figure_4_signature() {
        let p = parse_ts(
            "export function func({x, y}: {x: number, y: number}): number {\n  return x + y;\n}",
        )
        .unwrap();
        let f = &p.functions[0];
        assert_eq!(f.name, "func");
        assert!(f.exported);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "x");
        assert_eq!(f.params[0].ty, float());
        assert_eq!(f.ret, float());
        assert_eq!(
            f.body,
            vec![Stmt::Return(Some(Expr::bin(
                BinOp::Add,
                Expr::var("x"),
                Expr::var("y"),
            )))]
        );
    }

    #[test]
    fn destructured_params_bind_by_name_not_position() {
        let p = parse_ts("function f({b, a}: {a: number, b: string}): void {}").unwrap();
        let f = &p.functions[0];
        assert_eq!(f.params[0].name, "b");
        assert_eq!(f.params[0].ty, askit_types::string());
        assert_eq!(f.params[1].name, "a");
        assert_eq!(f.params[1].ty, float());
    }

    #[test]
    fn complex_param_types() {
        let p = parse_ts("function f({xs}: {xs: {n: number}[]}): number[] { return []; }").unwrap();
        assert_eq!(p.functions[0].params[0].ty, list(dict([("n", float())])));
        assert_eq!(p.functions[0].ret, list(float()));
    }

    #[test]
    fn statements_parse() {
        let src = r#"
function f({n}: {n: number}): number {
  let acc = 1;
  const limit = n;
  for (let i = 2; i <= limit; i++) {
    acc *= i;
  }
  let j = 0;
  while (j < 3) {
    j += 1;
    if (j == 2) { continue; } else { }
    if (j > 10) { break; }
  }
  return acc;
}"#;
        let p = parse_ts(src).unwrap();
        let body = &p.functions[0].body;
        assert!(matches!(
            body[2],
            Stmt::ForRange {
                inclusive: true,
                ..
            }
        ));
        assert!(matches!(body[4], Stmt::While { .. }));
    }

    #[test]
    fn for_of_and_methods_canonicalize() {
        let src = r#"
function f({ss}: {ss: string[]}): string {
  let out = "";
  for (const s of ss) {
    out += s.toUpperCase();
  }
  return out.trim();
}"#;
        let p = parse_ts(src).unwrap();
        let Stmt::ForOf { body, .. } = &p.functions[0].body[1] else {
            panic!("expected for-of");
        };
        let Stmt::Assign { value, .. } = &body[0] else {
            panic!("expected +=")
        };
        assert_eq!(*value, Expr::method(Expr::var("s"), "to_upper", vec![]));
    }

    #[test]
    fn length_property_and_namespace_calls() {
        let e = parse_ts_expr("Math.floor(xs.length / 2)").unwrap();
        assert_eq!(
            e,
            Expr::call(
                "floor",
                vec![Expr::bin(
                    BinOp::Div,
                    Expr::prop(Expr::var("xs"), "len"),
                    Expr::Num(2.0)
                )]
            )
        );
    }

    #[test]
    fn parse_int_and_to_string_canonicalize() {
        assert_eq!(
            parse_ts_expr("parseInt(s)").unwrap(),
            Expr::call("parse_int", vec![Expr::var("s")])
        );
        assert_eq!(
            parse_ts_expr("n.toString()").unwrap(),
            Expr::call("to_string", vec![Expr::var("n")])
        );
        assert_eq!(
            parse_ts_expr("JSON.stringify(o)").unwrap(),
            Expr::call("json_stringify", vec![Expr::var("o")])
        );
    }

    #[test]
    fn arrows_single_and_multi_param() {
        assert_eq!(
            parse_ts_expr("xs.map(x => x * 2)").unwrap(),
            Expr::method(
                Expr::var("xs"),
                "map",
                vec![Expr::Lambda {
                    params: vec!["x".into()],
                    body: Box::new(Expr::bin(BinOp::Mul, Expr::var("x"), Expr::Num(2.0))),
                }]
            )
        );
        assert_eq!(
            parse_ts_expr("xs.sort((a, b) => a - b)").unwrap(),
            Expr::method(
                Expr::var("xs"),
                "sort",
                vec![Expr::Lambda {
                    params: vec!["a".into(), "b".into()],
                    body: Box::new(Expr::bin(BinOp::Sub, Expr::var("a"), Expr::var("b"))),
                }]
            )
        );
        // Parenthesized expressions still parse.
        assert_eq!(
            parse_ts_expr("(a + b) * c").unwrap(),
            Expr::bin(
                BinOp::Mul,
                Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")),
                Expr::var("c")
            )
        );
    }

    #[test]
    fn precedence_and_associativity() {
        assert_eq!(
            parse_ts_expr("1 + 2 * 3").unwrap(),
            Expr::bin(
                BinOp::Add,
                Expr::Num(1.0),
                Expr::bin(BinOp::Mul, Expr::Num(2.0), Expr::Num(3.0))
            )
        );
        // ** is right-associative.
        assert_eq!(
            parse_ts_expr("2 ** 3 ** 2").unwrap(),
            Expr::bin(
                BinOp::Pow,
                Expr::Num(2.0),
                Expr::bin(BinOp::Pow, Expr::Num(3.0), Expr::Num(2.0))
            )
        );
        // Comparison binds tighter than &&.
        assert_eq!(
            parse_ts_expr("a < b && c > d").unwrap(),
            Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Lt, Expr::var("a"), Expr::var("b")),
                Expr::bin(BinOp::Gt, Expr::var("c"), Expr::var("d"))
            )
        );
    }

    #[test]
    fn ternary_objects_arrays_and_indexing() {
        let e = parse_ts_expr("x > 0 ? {sign: 'pos'} : [1, 2][0]").unwrap();
        assert!(matches!(e, Expr::Cond(..)));
        assert_eq!(
            parse_ts_expr("m['key']").unwrap(),
            Expr::index(Expr::var("m"), Expr::str("key"))
        );
    }

    #[test]
    fn increment_statement_desugars() {
        let p = parse_ts("function f({}: {}): void { let i = 0; i++; i -= 2; }");
        let p = p.unwrap();
        assert_eq!(
            p.functions[0].body[1],
            Stmt::Assign {
                target: LValue::Var("i".into()),
                op: Some(BinOp::Add),
                value: Expr::Num(1.0)
            }
        );
        assert_eq!(
            p.functions[0].body[2],
            Stmt::Assign {
                target: LValue::Var("i".into()),
                op: Some(BinOp::Sub),
                value: Expr::Num(2.0)
            }
        );
    }

    #[test]
    fn property_assignment_desugars_to_index() {
        let p = parse_ts("function f({o}: {o: any}): void { o.count = 1; }").unwrap();
        assert_eq!(
            p.functions[0].body[0],
            Stmt::Assign {
                target: LValue::Index(Box::new(Expr::var("o")), Box::new(Expr::str("count"))),
                op: None,
                value: Expr::Num(1.0)
            }
        );
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
function sign({x}: {x: number}): string {
  if (x > 0) { return "pos"; }
  else if (x < 0) { return "neg"; }
  else { return "zero"; }
}"#;
        let p = parse_ts(src).unwrap();
        let Stmt::If { else_block, .. } = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(else_block[0], Stmt::If { .. }));
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse_ts("function f({x}: {x: number}): number {\n  return +;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_ts("").is_err());
        assert!(parse_ts("function f( {").is_err());
        assert!(parse_ts("function f({x}: number): void {}").is_err());
    }

    #[test]
    fn triple_equals_is_structural_equality() {
        assert_eq!(
            parse_ts_expr("a === b").unwrap(),
            Expr::bin(BinOp::Eq, Expr::var("a"), Expr::var("b"))
        );
    }
}
