//! Tokens shared by the MiniTS and MiniPy lexers.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parsers).
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// String literal (already unescaped).
    Str(String),

    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=>` (TS arrow)
    FatArrow,
    /// `->` (Python return-type arrow)
    ThinArrow,
    /// `?`
    Question,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `==` (and `===` in TS)
    EqEq,
    /// `!=` (and `!==` in TS)
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `//` (Python floor division)
    SlashSlash,
    /// `%`
    Percent,
    /// `**`
    StarStar,
    /// `&&` (TS)
    AmpAmp,
    /// `||` (TS)
    PipePipe,
    /// `|` (type unions)
    Pipe,
    /// `!` (TS not)
    Bang,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,

    /// End of a logical line (Python only).
    Newline,
    /// Increased indentation (Python only).
    Indent,
    /// Decreased indentation (Python only).
    Dedent,

    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier '{s}'"),
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::LParen => f.write_str("'('"),
            Tok::RParen => f.write_str("')'"),
            Tok::LBrace => f.write_str("'{'"),
            Tok::RBrace => f.write_str("'}'"),
            Tok::LBracket => f.write_str("'['"),
            Tok::RBracket => f.write_str("']'"),
            Tok::Comma => f.write_str("','"),
            Tok::Semi => f.write_str("';'"),
            Tok::Colon => f.write_str("':'"),
            Tok::Dot => f.write_str("'.'"),
            Tok::FatArrow => f.write_str("'=>'"),
            Tok::ThinArrow => f.write_str("'->'"),
            Tok::Question => f.write_str("'?'"),
            Tok::Assign => f.write_str("'='"),
            Tok::PlusAssign => f.write_str("'+='"),
            Tok::MinusAssign => f.write_str("'-='"),
            Tok::StarAssign => f.write_str("'*='"),
            Tok::SlashAssign => f.write_str("'/='"),
            Tok::EqEq => f.write_str("'=='"),
            Tok::NotEq => f.write_str("'!='"),
            Tok::Lt => f.write_str("'<'"),
            Tok::Le => f.write_str("'<='"),
            Tok::Gt => f.write_str("'>'"),
            Tok::Ge => f.write_str("'>='"),
            Tok::Plus => f.write_str("'+'"),
            Tok::Minus => f.write_str("'-'"),
            Tok::Star => f.write_str("'*'"),
            Tok::Slash => f.write_str("'/'"),
            Tok::SlashSlash => f.write_str("'//'"),
            Tok::Percent => f.write_str("'%'"),
            Tok::StarStar => f.write_str("'**'"),
            Tok::AmpAmp => f.write_str("'&&'"),
            Tok::PipePipe => f.write_str("'||'"),
            Tok::Pipe => f.write_str("'|'"),
            Tok::Bang => f.write_str("'!'"),
            Tok::PlusPlus => f.write_str("'++'"),
            Tok::MinusMinus => f.write_str("'--'"),
            Tok::Newline => f.write_str("newline"),
            Tok::Indent => f.write_str("indent"),
            Tok::Dedent => f.write_str("dedent"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl Token {
    /// Creates a token at a position.
    pub fn new(tok: Tok, line: usize, col: usize) -> Self {
        Token { tok, line, col }
    }
}

/// A lexing or parsing error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl SyntaxError {
    /// Creates an error at a position.
    pub fn new(message: impl Into<String>, line: usize, col: usize) -> Self {
        SyntaxError {
            message: message.into(),
            line,
            col,
        }
    }

    /// Creates an error at a token.
    pub fn at(message: impl Into<String>, token: &Token) -> Self {
        SyntaxError::new(message, token.line, token.col)
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {}, column {}",
            self.message, self.line, self.col
        )
    }
}

impl std::error::Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(Tok::Ident("x".into()).to_string(), "identifier 'x'");
        assert_eq!(Tok::FatArrow.to_string(), "'=>'");
        let err = SyntaxError::new("boom", 3, 7);
        assert_eq!(err.to_string(), "boom at line 3, column 7");
    }

    #[test]
    fn token_carries_position() {
        let t = Token::new(Tok::Comma, 2, 5);
        assert_eq!(SyntaxError::at("x", &t).line, 2);
        assert_eq!(SyntaxError::at("x", &t).col, 5);
    }
}
