//! # minilang
//!
//! MiniLang is the small, statically typed language in which this
//! workspace's simulated LLM "generates code" — the stand-in for the
//! TypeScript and Python that the AskIt paper's code-generation mode emits
//! (paper §III-D).
//!
//! One canonical [`ast`] serves two surface syntaxes:
//!
//! * **MiniTS** ([`parse_ts`]) — TypeScript-like, with the paper's
//!   destructured named-parameter signatures:
//!   `export function f({x}: {x: number}): number { … }`;
//! * **MiniPy** ([`parse_py`]) — Python-like, indentation-sensitive:
//!   `def f(x): …`.
//!
//! On top of the AST sit a best-effort static checker ([`check`]), a
//! fuel-limited tree-walking interpreter ([`Interp`]), a pretty-printer that
//! re-renders ASTs in either syntax ([`pretty`]), the LOC metric used by the
//! paper's Table II and Figure 5 ([`loc`]), and construction helpers
//! ([`build`]).
//!
//! Function signature types are [`askit_types::Type`] values — the same type
//! language that drives prompt generation and answer validation, which is
//! what lets one `define` template serve both execution modes.
//!
//! # Examples
//!
//! ```
//! use minilang::{parse_ts, parse_py, Interp, pretty::{print_program, Syntax}};
//! use askit_json::{json, Json, Map};
//!
//! let ts = parse_ts("export function twice({n}: {n: number}): number { return n * 2; }")?;
//! let py = parse_py("def twice(n):\n    return n * 2\n")?;
//! // The two surfaces parse to the same body.
//! assert_eq!(ts.functions[0].body, py.functions[0].body);
//!
//! let mut args = Map::new();
//! args.insert("n", json!(21i64));
//! assert_eq!(Interp::new(&ts).call_json("twice", &args)?, Json::Int(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod build;
pub mod builtins;
pub mod check;
mod cursor;
pub mod interp;
mod lexer_py;
mod lexer_ts;
pub mod loc;
mod parser_py;
mod parser_ts;
pub mod pretty;
pub mod token;
mod typeparse;
pub mod value;

pub use ast::{BinOp, Block, Expr, FuncDecl, LValue, Param, Program, Stmt, UnOp};
pub use check::{check_program, CheckError};
pub use interp::{Interp, RuntimeError, DEFAULT_FUEL};
pub use lexer_py::lex_py;
pub use lexer_ts::lex_ts;
pub use parser_py::{parse_py, parse_py_expr};
pub use parser_ts::{parse_ts, parse_ts_expr};
pub use pretty::{print_expr, print_function, print_program, Syntax};
pub use token::SyntaxError;
pub use value::Value;

/// Parses source in the given surface syntax.
///
/// # Errors
///
/// Returns the first [`SyntaxError`].
pub fn parse(source: &str, syntax: Syntax) -> Result<Program, SyntaxError> {
    match syntax {
        Syntax::Ts => parse_ts(source),
        Syntax::Py => parse_py(source),
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;
    use askit_json::{Json, Map};

    fn call(program: &Program, name: &str, args: &[(&str, Json)]) -> Result<Json, RuntimeError> {
        let map: Map = args
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        Interp::new(program).call_json(name, &map)
    }

    #[test]
    fn end_to_end_reverse_string_both_syntaxes() {
        let ts = parse_ts(
            "export function reverseString({s}: {s: string}): string {\n  return s.split('').reverse().join('');\n}",
        )
        .unwrap();
        let py = parse_py("def reverseString(s):\n    return ''.join(list(reversed_chars(s)))\n");
        // The Python variant above calls an unknown helper — it should parse
        // but fail at runtime; the realistic Python spelling uses slicing:
        assert!(py.is_ok());
        let py = parse_py("def reverseString(s):\n    chars = list(s)\n    chars.reverse()\n    return ''.join(chars)\n").unwrap();

        for p in [&ts, &py] {
            let out = call(p, "reverseString", &[("s", Json::from("hello"))]).unwrap();
            assert_eq!(out, Json::from("olleh"));
        }
    }

    #[test]
    fn fuel_limit_stops_infinite_loops() {
        let p = parse_ts(
            "export function spin({}: {}): number { let i = 0; while (true) { i += 1; } return i; }",
        );
        // Zero-parameter destructuring `({}: {})` is accepted as empty params.
        let p = match p {
            Ok(p) => p,
            Err(_) => parse_ts(
                "export function spin(): number { let i = 0; while (true) { i += 1; } return i; }",
            )
            .unwrap(),
        };
        let mut interp = Interp::new(&p).with_fuel(10_000);
        let err = interp.call_json("spin", &Map::new()).unwrap_err();
        assert_eq!(err, RuntimeError::OutOfFuel);
    }

    #[test]
    fn recursion_works_and_overflows_gracefully() {
        let p = parse_ts(
            "export function fib({n}: {n: number}): number {\n  if (n <= 1) { return n; }\n  return fib(n - 1) + fib(n - 2);\n}",
        );
        // Recursive positional self-call uses the single-object convention:
        // MiniLang user-function calls are positional.
        let p = p.unwrap();
        let out = call(&p, "fib", &[("n", Json::Int(10))]).unwrap();
        assert_eq!(out, Json::Int(55));

        let bomb =
            parse_ts("export function boom({n}: {n: number}): number { return boom(n + 1); }")
                .unwrap();
        let err = call(&bomb, "boom", &[("n", Json::Int(0))]).unwrap_err();
        assert_eq!(err, RuntimeError::StackOverflow);
    }

    #[test]
    fn higher_order_builtins() {
        let p = parse_ts(
            "export function evens({ns}: {ns: number[]}): number[] {\n  return ns.filter(n => n % 2 === 0).map(n => n * 10);\n}",
        )
        .unwrap();
        let out = call(&p, "evens", &[("ns", Json::parse("[1,2,3,4]").unwrap())]).unwrap();
        assert_eq!(out, Json::parse("[20,40]").unwrap());
    }

    #[test]
    fn sort_with_comparator() {
        let p = parse_ts(
            "export function sortDesc({ns}: {ns: number[]}): number[] {\n  ns.sort((a, b) => b - a);\n  return ns;\n}",
        )
        .unwrap();
        let out = call(&p, "sortDesc", &[("ns", Json::parse("[3,1,2]").unwrap())]).unwrap();
        assert_eq!(out, Json::parse("[3,2,1]").unwrap());
    }

    #[test]
    fn python_dict_counting_idiom() {
        let src = "def countWords(words):\n    counts = {}\n    for w in words:\n        if w in counts:\n            counts[w] += 1\n        else:\n            counts[w] = 1\n    return counts\n";
        let p = parse_py(src).unwrap();
        let out = call(
            &p,
            "countWords",
            &[("words", Json::parse(r#"["a","b","a"]"#).unwrap())],
        )
        .unwrap();
        assert_eq!(out, Json::parse(r#"{"a":2,"b":1}"#).unwrap());
    }

    #[test]
    fn runtime_errors_surface() {
        let p = parse_ts("export function bad({xs}: {xs: number[]}): number { return xs[99]; }")
            .unwrap();
        let err = call(&p, "bad", &[("xs", Json::parse("[1]").unwrap())]).unwrap_err();
        assert!(matches!(err, RuntimeError::IndexOutOfBounds { .. }));

        let div = parse_ts("export function d({x}: {x: number}): number { return 1 / (x - x); }")
            .unwrap();
        let err = call(&div, "d", &[("x", Json::Int(1))]).unwrap_err();
        assert_eq!(err, RuntimeError::DivideByZero);
    }

    #[test]
    fn string_building_and_interop() {
        let src = "def describe(name, n):\n    return name + ' has ' + str(n) + ' items'\n";
        let p = parse_py(src).unwrap();
        let out = call(
            &p,
            "describe",
            &[("name", Json::from("cart")), ("n", Json::Int(3))],
        )
        .unwrap();
        assert_eq!(out, Json::from("cart has 3 items"));
    }
}
