//! The MiniLang abstract syntax tree.
//!
//! One AST serves both surface syntaxes (MiniTS and MiniPy): the frontends
//! normalize surface differences (method spellings, `x in xs` vs
//! `xs.includes(x)`, `for … of` vs `for … in`) into the canonical forms
//! here, and [`crate::pretty`] re-renders them per syntax.

use askit_types::Type;

/// A whole compilation unit: one or more function declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The declared functions, in source order.
    pub functions: Vec<FuncDecl>,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&FuncDecl> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A function declaration.
///
/// Parameters are *named*: the TS surface syntax is the paper's destructured
/// object style (`function f({x, y}: {x: number, y: number}): number`), the
/// Python surface is a plain `def f(x, y):`.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Named, typed parameters.
    pub params: Vec<Param>,
    /// Declared return type.
    pub ret: Type,
    /// Body statements.
    pub body: Block,
    /// Whether the TS form carries `export`.
    pub exported: bool,
    /// Leading comment lines (without comment markers), e.g. the task
    /// instruction that AskIt plants in the empty function (paper Fig. 4).
    pub doc: Vec<String>,
}

/// A typed parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = e;` / `x = e` (first binding). `mutable` distinguishes
    /// `let` from `const` in the TS rendering.
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        init: Expr,
        /// `let` vs `const` (Python renders both the same).
        mutable: bool,
    },
    /// Assignment to an existing variable or element: `x = e`, `x += e`,
    /// `a[i] = e`.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Compound operator (`None` for plain `=`).
        op: Option<BinOp>,
        /// Right-hand side.
        value: Expr,
    },
    /// `if cond { … } else { … }`.
    If {
        /// Condition (must evaluate to a boolean).
        cond: Expr,
        /// Then-branch.
        then_block: Block,
        /// Else-branch (possibly empty).
        else_block: Block,
    },
    /// `while cond { … }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// A counted loop: TS `for (let i = start; i < end; i++)`,
    /// Python `for i in range(start, end)`.
    ForRange {
        /// Loop variable.
        var: String,
        /// Start (inclusive).
        start: Expr,
        /// End (exclusive, or inclusive when `inclusive`).
        end: Expr,
        /// Whether the end bound is inclusive (TS `<=`).
        inclusive: bool,
        /// Loop body.
        body: Block,
    },
    /// Iteration over a sequence: TS `for (const x of xs)`,
    /// Python `for x in xs`.
    ForOf {
        /// Loop variable.
        var: String,
        /// The iterated expression.
        iter: Expr,
        /// Loop body.
        body: Block,
    },
    /// `return e;` / bare `return`.
    Return(Option<Expr>),
    /// An expression evaluated for effect (e.g. `xs.push(v)`).
    Expr(Expr),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
}

/// An assignable place.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A variable.
    Var(String),
    /// An indexed element `base[index]` (array element or object key).
    Index(Box<Expr>, Box<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `null` / `None`.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Numeric literal (MiniLang numbers are IEEE doubles, like JS).
    Num(f64),
    /// String literal.
    Str(String),
    /// Variable reference.
    Var(String),
    /// Array literal.
    Array(Vec<Expr>),
    /// Object literal with string keys.
    Object(Vec<(String, Expr)>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional: TS `c ? a : b`, Python `a if c else b`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Call of a free function (stdlib builtin or another program function).
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Method call on a receiver, with canonical method names
    /// (see [`crate::builtins`]).
    Method {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Canonical method name (e.g. `to_upper`, `includes`).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Property read (`xs.length`); canonical property names.
    Prop(Box<Expr>, String),
    /// Indexing `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// A one-expression lambda: TS `x => e`, Python `lambda x: e`.
    Lambda {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
    },
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Boolean not (`!` / `not`).
    Not,
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (numbers add, strings concatenate).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (true division).
    Div,
    /// Floor division (Python `//`; TS renders `Math.floor(a / b)`).
    FloorDiv,
    /// `%` (remainder, sign of the dividend).
    Mod,
    /// `**`
    Pow,
    /// `==` (structural).
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Logical and (short-circuiting).
    And,
    /// Logical or (short-circuiting).
    Or,
}

impl BinOp {
    /// Binding strength for the pretty-printer (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::FloorDiv | BinOp::Mod => 6,
            BinOp::Pow => 7,
        }
    }

    /// Whether the operator is right-associative (only `**`).
    pub fn right_assoc(self) -> bool {
        matches!(self, BinOp::Pow)
    }
}

impl Expr {
    /// Convenience: an integer literal.
    pub fn int(n: i64) -> Expr {
        Expr::Num(n as f64)
    }

    /// Convenience: a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience: a string literal.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Str(s.into())
    }

    /// Convenience: a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience: a method call.
    pub fn method(recv: Expr, name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Method {
            recv: Box::new(recv),
            name: name.into(),
            args,
        }
    }

    /// Convenience: a free-function call.
    pub fn call(callee: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            callee: callee.into(),
            args,
        }
    }

    /// Convenience: a property read.
    pub fn prop(recv: Expr, name: impl Into<String>) -> Expr {
        Expr::Prop(Box::new(recv), name.into())
    }

    /// Convenience: indexing.
    pub fn index(base: Expr, idx: Expr) -> Expr {
        Expr::Index(Box::new(base), Box::new(idx))
    }

    /// Number of AST nodes in this expression (used by fault injection to
    /// pick mutation sites deterministically).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Null | Expr::Bool(_) | Expr::Num(_) | Expr::Str(_) | Expr::Var(_) => 1,
            Expr::Array(items) => 1 + items.iter().map(Expr::node_count).sum::<usize>(),
            Expr::Object(fields) => 1 + fields.iter().map(|(_, e)| e.node_count()).sum::<usize>(),
            Expr::Unary(_, e) => 1 + e.node_count(),
            Expr::Binary(_, a, b) => 1 + a.node_count() + b.node_count(),
            Expr::Cond(c, a, b) => 1 + c.node_count() + a.node_count() + b.node_count(),
            Expr::Call { args, .. } => 1 + args.iter().map(Expr::node_count).sum::<usize>(),
            Expr::Method { recv, args, .. } => {
                1 + recv.node_count() + args.iter().map(Expr::node_count).sum::<usize>()
            }
            Expr::Prop(e, _) => 1 + e.node_count(),
            Expr::Index(a, b) => 1 + a.node_count() + b.node_count(),
            Expr::Lambda { body, .. } => 1 + body.node_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_ordering_matches_convention() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
        assert!(BinOp::Pow.precedence() > BinOp::Mul.precedence());
        assert!(BinOp::Pow.right_assoc());
        assert!(!BinOp::Add.right_assoc());
    }

    #[test]
    fn node_count_recurses() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::int(1),
            Expr::method(Expr::var("xs"), "includes", vec![Expr::int(2)]),
        );
        // bin + 1 + method + xs + 2
        assert_eq!(e.node_count(), 5);
    }

    #[test]
    fn program_function_lookup() {
        let p = Program {
            functions: vec![FuncDecl {
                name: "f".into(),
                params: vec![],
                ret: askit_types::void(),
                body: vec![],
                exported: true,
                doc: vec![],
            }],
        };
        assert!(p.function("f").is_some());
        assert!(p.function("g").is_none());
    }
}
