//! The MiniLang standard library and surface-name canonicalization.
//!
//! MiniLang has one canonical set of builtin names; each frontend maps its
//! surface spellings onto them at parse time and each printer maps back:
//!
//! | canonical | MiniTS surface | MiniPy surface |
//! |---|---|---|
//! | `to_upper` | `.toUpperCase()` | `.upper()` |
//! | `index_of` | `.indexOf(x)` | `.find(x)` |
//! | `push` | `.push(x)` | `.append(x)` |
//! | `len` (property) | `.length` | `len(x)` |
//! | `includes` | `.includes(x)` | `x in recv` |
//! | `join` | `xs.join(sep)` | `sep.join(xs)` |
//! | `floor` | `Math.floor(x)` | `math.floor(x)` |
//! | `to_string` | `String(x)` | `str(x)` |
//!
//! Methods that only one surface spells natively (e.g. `count`, `map` in
//! MiniPy) are still accepted and printed verbatim — MiniTS/MiniPy are
//! dialects, not the real languages.

use askit_json::Json;

use crate::interp::{Interp, RuntimeError};
use crate::value::Value;

// ---------------------------------------------------------------------------
// Canonicalization tables
// ---------------------------------------------------------------------------

/// Maps a MiniTS method spelling to the canonical name.
pub fn canonical_method_ts(name: &str) -> &str {
    match name {
        "toUpperCase" => "to_upper",
        "toLowerCase" => "to_lower",
        "trim" => "trim",
        "indexOf" => "index_of",
        "charAt" => "char_at",
        "replaceAll" | "replace" => "replace",
        "startsWith" => "starts_with",
        "endsWith" => "ends_with",
        "padStart" => "pad_start",
        "padEnd" => "pad_end",
        "toString" => "to_string",
        "toFixed" => "to_fixed",
        other => other,
    }
}

/// Maps a canonical method name to its MiniTS spelling.
pub fn ts_method_surface(canonical: &str) -> &str {
    match canonical {
        "to_upper" => "toUpperCase",
        "to_lower" => "toLowerCase",
        "index_of" => "indexOf",
        "char_at" => "charAt",
        "replace" => "replaceAll",
        "starts_with" => "startsWith",
        "ends_with" => "endsWith",
        "pad_start" => "padStart",
        "pad_end" => "padEnd",
        "to_string" => "toString",
        "to_fixed" => "toFixed",
        other => other,
    }
}

/// Maps a MiniPy method spelling to the canonical name.
pub fn canonical_method_py(name: &str) -> &str {
    match name {
        "upper" => "to_upper",
        "lower" => "to_lower",
        "strip" => "trim",
        "find" | "index" => "index_of",
        "startswith" => "starts_with",
        "endswith" => "ends_with",
        "rjust" => "pad_start",
        "ljust" => "pad_end",
        "append" => "push",
        other => other,
    }
}

/// Maps a canonical method name to its MiniPy spelling.
pub fn py_method_surface(canonical: &str) -> &str {
    match canonical {
        "to_upper" => "upper",
        "to_lower" => "lower",
        "trim" => "strip",
        "index_of" => "find",
        "starts_with" => "startswith",
        "ends_with" => "endswith",
        "pad_start" => "rjust",
        "pad_end" => "ljust",
        "push" => "append",
        other => other,
    }
}

/// Canonical free-function names reachable through `Math.` / `math.` member
/// calls (and `JSON.` / `json.`).
pub fn canonical_namespace_call(namespace: &str, member: &str) -> Option<&'static str> {
    match (namespace, member) {
        ("Math" | "math", "abs") => Some("abs"),
        ("Math" | "math", "floor") => Some("floor"),
        ("Math" | "math", "ceil") => Some("ceil"),
        ("Math" | "math", "round") => Some("round"),
        ("Math" | "math", "sqrt") => Some("sqrt"),
        ("Math" | "math", "pow") => Some("pow"),
        ("Math" | "math", "min") => Some("min"),
        ("Math" | "math", "max") => Some("max"),
        ("Math" | "math", "trunc") => Some("trunc"),
        ("JSON", "stringify") | ("json", "dumps") => Some("json_stringify"),
        ("JSON", "parse") | ("json", "loads") => Some("json_parse"),
        ("Object", "keys") => Some("keys"),
        ("Object", "values") => Some("values"),
        _ => None,
    }
}

/// Maps a MiniTS free-function spelling to the canonical name.
pub fn canonical_free_ts(name: &str) -> &str {
    match name {
        "parseInt" => "parse_int",
        "parseFloat" => "parse_float",
        "String" => "to_string",
        "Number" => "to_float",
        "Boolean" => "to_bool",
        other => other,
    }
}

/// Maps a MiniPy free-function spelling to the canonical name.
pub fn canonical_free_py(name: &str) -> &str {
    match name {
        "str" => "to_string",
        "int" => "to_int",
        "float" => "to_float",
        "bool" => "to_bool",
        other => other,
    }
}

/// How a canonical free function prints in MiniTS. `None` = print verbatim.
pub fn ts_free_surface(canonical: &str) -> Option<&'static str> {
    match canonical {
        "parse_int" => Some("parseInt"),
        "parse_float" => Some("parseFloat"),
        "to_string" => Some("String"),
        "to_float" => Some("Number"),
        "to_int" | "trunc" => Some("Math.trunc"),
        "abs" => Some("Math.abs"),
        "floor" => Some("Math.floor"),
        "ceil" => Some("Math.ceil"),
        "round" => Some("Math.round"),
        "sqrt" => Some("Math.sqrt"),
        "pow" => Some("Math.pow"),
        "min" => Some("Math.min"),
        "max" => Some("Math.max"),
        "json_stringify" => Some("JSON.stringify"),
        "json_parse" => Some("JSON.parse"),
        "keys" => Some("Object.keys"),
        "values" => Some("Object.values"),
        _ => None,
    }
}

/// How a canonical free function prints in MiniPy. `None` = print verbatim.
pub fn py_free_surface(canonical: &str) -> Option<&'static str> {
    match canonical {
        "parse_int" | "to_int" | "trunc" => Some("int"),
        "parse_float" | "to_float" => Some("float"),
        "to_string" => Some("str"),
        "floor" => Some("math.floor"),
        "ceil" => Some("math.ceil"),
        "sqrt" => Some("math.sqrt"),
        "json_stringify" => Some("json.dumps"),
        "json_parse" => Some("json.loads"),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Runtime dispatch
// ---------------------------------------------------------------------------

/// Evaluates a canonical free function. Returns `None` when the name is not
/// a builtin (the interpreter then tries user-defined functions).
pub(crate) fn eval_free(
    interp: &mut Interp<'_>,
    name: &str,
    args: &mut [Value],
) -> Option<Result<Value, RuntimeError>> {
    let result = match name {
        "abs" => num1(args, "abs", f64::abs),
        "floor" => num1(args, "floor", f64::floor),
        "ceil" => num1(args, "ceil", f64::ceil),
        "round" => match args.len() {
            1 => num1(args, "round", round_half_away),
            2 => num2(args, "round", |x, digits| {
                let factor = 10f64.powi(digits as i32);
                round_half_away(x * factor) / factor
            }),
            n => Err(arity("round", 1, n)),
        },
        "sqrt" => num1(args, "sqrt", f64::sqrt),
        "trunc" => num1(args, "trunc", f64::trunc),
        "pow" => num2(args, "pow", f64::powf),
        "min" => fold_extremum(args, "min", false),
        "max" => fold_extremum(args, "max", true),
        "sum" => sum(args),
        "len" => match args.len() {
            1 => eval_prop(args[0].clone(), "len"),
            n => Err(arity("len", 1, n)),
        },
        "sorted" => match args.len() {
            1 => sorted_copy(&args[0]),
            n => Err(arity("sorted", 1, n)),
        },
        "range" => range(args),
        "list" => match args.len() {
            1 => to_list(&args[0]),
            n => Err(arity("list", 1, n)),
        },
        "keys" => match args.len() {
            1 => object_keys(&args[0]),
            n => Err(arity("keys", 1, n)),
        },
        "values" => match args.len() {
            1 => object_values(&args[0]),
            n => Err(arity("values", 1, n)),
        },
        "to_string" => match args.len() {
            1 => Ok(Value::Str(args[0].display_string())),
            n => Err(arity("to_string", 1, n)),
        },
        "to_int" | "parse_int" => match args.len() {
            1 => to_int(&args[0]),
            n => Err(arity("to_int", 1, n)),
        },
        "to_float" | "parse_float" => match args.len() {
            1 => to_float(&args[0]),
            n => Err(arity("to_float", 1, n)),
        },
        "to_bool" => match args.len() {
            1 => Ok(Value::Bool(truthy(&args[0]))),
            n => Err(arity("to_bool", 1, n)),
        },
        "json_stringify" => match args.len() {
            1 => args[0]
                .to_json()
                .map(|j| Value::Str(j.to_compact_string()))
                .ok_or_else(|| RuntimeError::TypeMismatch("cannot stringify a function".into())),
            n => Err(arity("json_stringify", 1, n)),
        },
        "json_parse" => match (args.len(), args.first()) {
            (1, Some(Value::Str(s))) => Json::parse(s)
                .map(|j| Value::from_json(&j))
                .map_err(|e| RuntimeError::Other(format!("json_parse: {e}"))),
            (1, Some(other)) => Err(RuntimeError::TypeMismatch(format!(
                "json_parse needs a string, got {}",
                other.type_name()
            ))),
            (n, _) => Err(arity("json_parse", 1, n)),
        },
        "print" => {
            // Benign no-op: generated code sometimes logs.
            Ok(Value::Null)
        }
        _ => return None,
    };
    let _ = interp; // free builtins never re-enter the interpreter today
    Some(result)
}

/// Evaluates a property read (canonical property names; today only `len`,
/// plus object field access).
pub(crate) fn eval_prop(recv: Value, name: &str) -> Result<Value, RuntimeError> {
    match name {
        "len" => match &recv {
            Value::Str(s) => Ok(Value::Num(s.chars().count() as f64)),
            Value::Array(items) => Ok(Value::Num(items.borrow().len() as f64)),
            Value::Object(fields) => Ok(Value::Num(fields.borrow().len() as f64)),
            other => Err(RuntimeError::TypeMismatch(format!(
                "{} has no length",
                other.type_name()
            ))),
        },
        field => match &recv {
            Value::Object(fields) => fields
                .borrow()
                .iter()
                .find(|(k, _)| k == field)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| RuntimeError::MissingKey(field.to_owned())),
            other => Err(RuntimeError::UndefinedMethod {
                recv: other.type_name(),
                name: field.to_owned(),
            }),
        },
    }
}

/// Evaluates a canonical method call.
pub(crate) fn eval_method(
    interp: &mut Interp<'_>,
    recv: Value,
    name: &str,
    args: Vec<Value>,
) -> Result<Value, RuntimeError> {
    match &recv {
        Value::Str(s) => string_method(s, name, &args),
        Value::Array(_) => array_method(interp, &recv, name, args),
        Value::Object(fields) => match name {
            "includes" | "has" => match args.as_slice() {
                [Value::Str(k)] => Ok(Value::Bool(fields.borrow().iter().any(|(key, _)| key == k))),
                _ => Err(RuntimeError::TypeMismatch(
                    "object key must be a string".into(),
                )),
            },
            "keys" => object_keys(&recv),
            "values" => object_values(&recv),
            "get" => match args.as_slice() {
                [Value::Str(k)] => Ok(fields
                    .borrow()
                    .iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v.clone())
                    .unwrap_or(Value::Null)),
                [Value::Str(k), default] => Ok(fields
                    .borrow()
                    .iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_else(|| default.clone())),
                _ => Err(RuntimeError::TypeMismatch(
                    "object key must be a string".into(),
                )),
            },
            other => Err(RuntimeError::UndefinedMethod {
                recv: "object",
                name: other.into(),
            }),
        },
        Value::Num(n) => match name {
            "to_string" => Ok(Value::Str(recv.display_string())),
            "to_fixed" => match args.as_slice() {
                [Value::Num(d)] => Ok(Value::Str(format!("{:.*}", *d as usize, n))),
                _ => Err(RuntimeError::TypeMismatch(
                    "toFixed needs a digit count".into(),
                )),
            },
            other => Err(RuntimeError::UndefinedMethod {
                recv: "number",
                name: other.into(),
            }),
        },
        other => Err(RuntimeError::UndefinedMethod {
            recv: other.type_name(),
            name: name.to_owned(),
        }),
    }
}

fn string_method(s: &str, name: &str, args: &[Value]) -> Result<Value, RuntimeError> {
    let chars: Vec<char> = s.chars().collect();
    match (name, args) {
        ("to_upper", []) => Ok(Value::Str(s.to_uppercase())),
        ("to_lower", []) => Ok(Value::Str(s.to_lowercase())),
        ("trim", []) => Ok(Value::Str(s.trim().to_owned())),
        ("to_string", []) => Ok(Value::Str(s.to_owned())),
        ("split", [Value::Str(sep)]) => {
            let parts: Vec<Value> = if sep.is_empty() {
                chars.iter().map(|c| Value::Str(c.to_string())).collect()
            } else {
                s.split(sep.as_str())
                    .map(|p| Value::Str(p.to_owned()))
                    .collect()
            };
            Ok(Value::array(parts))
        }
        ("includes", [Value::Str(sub)]) => Ok(Value::Bool(s.contains(sub.as_str()))),
        ("index_of", [Value::Str(sub)]) => Ok(Value::Num(match s.find(sub.as_str()) {
            Some(byte_pos) => s[..byte_pos].chars().count() as f64,
            None => -1.0,
        })),
        ("char_at", [Value::Num(i)]) => {
            let idx = *i as usize;
            Ok(Value::Str(
                chars.get(idx).map(|c| c.to_string()).unwrap_or_default(),
            ))
        }
        ("slice", rest) => {
            let (start, end) = slice_bounds(rest, chars.len())?;
            Ok(Value::Str(chars[start..end].iter().collect()))
        }
        ("repeat", [Value::Num(n)]) => {
            if *n < 0.0 || n.fract() != 0.0 || *n > 100_000.0 {
                return Err(RuntimeError::TypeMismatch(format!(
                    "invalid repeat count {n}"
                )));
            }
            Ok(Value::Str(s.repeat(*n as usize)))
        }
        ("replace", [Value::Str(from), Value::Str(to)]) => {
            Ok(Value::Str(s.replace(from.as_str(), to)))
        }
        ("starts_with", [Value::Str(p)]) => Ok(Value::Bool(s.starts_with(p.as_str()))),
        ("ends_with", [Value::Str(p)]) => Ok(Value::Bool(s.ends_with(p.as_str()))),
        ("pad_start", [Value::Num(w), Value::Str(fill)]) => pad(s, &chars, *w, fill, true),
        ("pad_end", [Value::Num(w), Value::Str(fill)]) => pad(s, &chars, *w, fill, false),
        ("count", [Value::Str(sub)]) => {
            if sub.is_empty() {
                return Ok(Value::Num(0.0));
            }
            Ok(Value::Num(s.matches(sub.as_str()).count() as f64))
        }
        _ => Err(RuntimeError::UndefinedMethod {
            recv: "string",
            name: name.to_owned(),
        }),
    }
}

fn pad(
    s: &str,
    chars: &[char],
    width: f64,
    fill: &str,
    at_start: bool,
) -> Result<Value, RuntimeError> {
    let width = width as usize;
    if chars.len() >= width || fill.is_empty() {
        return Ok(Value::Str(s.to_owned()));
    }
    let mut padding = String::new();
    while padding.chars().count() < width - chars.len() {
        padding.push_str(fill);
    }
    let padding: String = padding.chars().take(width - chars.len()).collect();
    Ok(Value::Str(if at_start {
        format!("{padding}{s}")
    } else {
        format!("{s}{padding}")
    }))
}

fn array_method(
    interp: &mut Interp<'_>,
    recv: &Value,
    name: &str,
    args: Vec<Value>,
) -> Result<Value, RuntimeError> {
    let Value::Array(cells) = recv else {
        unreachable!("caller checked")
    };
    match (name, args.as_slice()) {
        ("push", _) => {
            let mut items = cells.borrow_mut();
            for a in args.iter() {
                items.push(a.clone());
            }
            Ok(Value::Num(items.len() as f64))
        }
        ("pop", []) => cells
            .borrow_mut()
            .pop()
            .ok_or_else(|| RuntimeError::Other("pop from empty array".into())),
        ("join", [Value::Str(sep)]) => {
            let items = cells.borrow();
            let parts: Vec<String> = items.iter().map(Value::display_string).collect();
            Ok(Value::Str(parts.join(sep)))
        }
        ("includes", [v]) => Ok(Value::Bool(cells.borrow().iter().any(|x| x.equals(v)))),
        ("index_of", [v]) => Ok(Value::Num(
            cells
                .borrow()
                .iter()
                .position(|x| x.equals(v))
                .map(|i| i as f64)
                .unwrap_or(-1.0),
        )),
        ("count", [v]) => Ok(Value::Num(
            cells.borrow().iter().filter(|x| x.equals(v)).count() as f64,
        )),
        ("slice", rest) => {
            let items = cells.borrow();
            let (start, end) = slice_bounds(rest, items.len())?;
            Ok(Value::array(items[start..end].to_vec()))
        }
        ("concat", [other]) => match other {
            Value::Array(b) => {
                let mut out = cells.borrow().clone();
                out.extend(b.borrow().iter().cloned());
                Ok(Value::array(out))
            }
            v => {
                let mut out = cells.borrow().clone();
                out.push(v.clone());
                Ok(Value::array(out))
            }
        },
        ("reverse", []) => {
            cells.borrow_mut().reverse();
            Ok(recv.clone())
        }
        ("sort", []) => {
            let mut items = cells.borrow().clone();
            sort_values(&mut items)?;
            *cells.borrow_mut() = items;
            Ok(recv.clone())
        }
        ("sort", [cmp @ Value::Closure(_)]) => {
            let mut items = cells.borrow().clone();
            // Insertion sort via the comparator; O(n²) but deterministic and
            // re-entrant-safe for the interpreter callback.
            for i in 1..items.len() {
                let mut j = i;
                while j > 0 {
                    let ord =
                        interp.call_callable(cmp, vec![items[j - 1].clone(), items[j].clone()])?;
                    let Value::Num(n) = ord else {
                        return Err(RuntimeError::TypeMismatch(
                            "comparator must return a number".into(),
                        ));
                    };
                    if n > 0.0 {
                        items.swap(j - 1, j);
                        j -= 1;
                    } else {
                        break;
                    }
                }
            }
            *cells.borrow_mut() = items;
            Ok(recv.clone())
        }
        ("map", [f]) => {
            let items = cells.borrow().clone();
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(interp.call_callable(f, vec![item])?);
            }
            Ok(Value::array(out))
        }
        ("filter", [f]) => {
            let items = cells.borrow().clone();
            let mut out = Vec::new();
            for item in items {
                match interp.call_callable(f, vec![item.clone()])? {
                    Value::Bool(true) => out.push(item),
                    Value::Bool(false) => {}
                    other => {
                        return Err(RuntimeError::TypeMismatch(format!(
                            "filter predicate must return a boolean, got {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(Value::array(out))
        }
        ("reduce", [f, init]) => {
            let items = cells.borrow().clone();
            let mut acc = init.clone();
            for item in items {
                acc = interp.call_callable(f, vec![acc, item])?;
            }
            Ok(acc)
        }
        ("every", [f]) => {
            let items = cells.borrow().clone();
            for item in items {
                if !matches!(interp.call_callable(f, vec![item])?, Value::Bool(true)) {
                    return Ok(Value::Bool(false));
                }
            }
            Ok(Value::Bool(true))
        }
        ("some", [f]) => {
            let items = cells.borrow().clone();
            for item in items {
                if matches!(interp.call_callable(f, vec![item])?, Value::Bool(true)) {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }
        _ => Err(RuntimeError::UndefinedMethod {
            recv: "array",
            name: name.to_owned(),
        }),
    }
}

/// Interprets slice arguments with Python/JS negative-index semantics.
fn slice_bounds(args: &[Value], len: usize) -> Result<(usize, usize), RuntimeError> {
    let resolve = |v: &Value| -> Result<i64, RuntimeError> {
        match v {
            Value::Num(n) if n.fract() == 0.0 => Ok(*n as i64),
            other => Err(RuntimeError::TypeMismatch(format!(
                "slice bound must be an integer, got {}",
                other.type_name()
            ))),
        }
    };
    let clamp = |i: i64| -> usize {
        let i = if i < 0 { i + len as i64 } else { i };
        i.clamp(0, len as i64) as usize
    };
    let (start, end) = match args {
        [] => (0, len),
        [s] => (clamp(resolve(s)?), len),
        [s, e] => (clamp(resolve(s)?), clamp(resolve(e)?)),
        _ => {
            return Err(RuntimeError::TypeMismatch(
                "slice takes at most 2 bounds".into(),
            ))
        }
    };
    Ok((start, end.max(start)))
}

fn sort_values(items: &mut [Value]) -> Result<(), RuntimeError> {
    // Validate homogeneity first so sort_by can be total.
    let all_nums = items.iter().all(|v| matches!(v, Value::Num(_)));
    let all_strs = items.iter().all(|v| matches!(v, Value::Str(_)));
    if !all_nums && !all_strs && !items.is_empty() {
        return Err(RuntimeError::TypeMismatch(
            "sort needs all numbers or all strings".into(),
        ));
    }
    items.sort_by(|a, b| match (a, b) {
        (Value::Num(x), Value::Num(y)) => x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => std::cmp::Ordering::Equal,
    });
    Ok(())
}

fn num1(args: &[Value], name: &str, f: impl Fn(f64) -> f64) -> Result<Value, RuntimeError> {
    match args {
        [Value::Num(n)] => Ok(Value::Num(f(*n))),
        [other] => Err(RuntimeError::TypeMismatch(format!(
            "{name} needs a number, got {}",
            other.type_name()
        ))),
        _ => Err(arity(name, 1, args.len())),
    }
}

fn num2(args: &[Value], name: &str, f: impl Fn(f64, f64) -> f64) -> Result<Value, RuntimeError> {
    match args {
        [Value::Num(a), Value::Num(b)] => Ok(Value::Num(f(*a, *b))),
        [_, _] => Err(RuntimeError::TypeMismatch(format!(
            "{name} needs two numbers"
        ))),
        _ => Err(arity(name, 2, args.len())),
    }
}

fn round_half_away(x: f64) -> f64 {
    x.round()
}

fn fold_extremum(args: &[Value], name: &str, want_max: bool) -> Result<Value, RuntimeError> {
    let items: Vec<Value> = match args {
        [Value::Array(cells)] => cells.borrow().clone(),
        _ => args.to_vec(),
    };
    if items.is_empty() {
        return Err(RuntimeError::Other(format!("{name} of empty sequence")));
    }
    let mut best = items[0].clone();
    for v in &items[1..] {
        let replace = match (&best, v) {
            (Value::Num(a), Value::Num(b)) => {
                if want_max {
                    b > a
                } else {
                    b < a
                }
            }
            (Value::Str(a), Value::Str(b)) => {
                if want_max {
                    b > a
                } else {
                    b < a
                }
            }
            _ => {
                return Err(RuntimeError::TypeMismatch(format!(
                    "{name} needs all numbers or all strings"
                )))
            }
        };
        if replace {
            best = v.clone();
        }
    }
    Ok(best)
}

fn sum(args: &[Value]) -> Result<Value, RuntimeError> {
    let items: Vec<Value> = match args {
        [Value::Array(cells)] => cells.borrow().clone(),
        _ => args.to_vec(),
    };
    let mut total = 0.0;
    for v in &items {
        match v {
            Value::Num(n) => total += n,
            other => {
                return Err(RuntimeError::TypeMismatch(format!(
                    "sum needs numbers, got {}",
                    other.type_name()
                )))
            }
        }
    }
    Ok(Value::Num(total))
}

fn sorted_copy(v: &Value) -> Result<Value, RuntimeError> {
    match v {
        Value::Array(cells) => {
            let mut items = cells.borrow().clone();
            sort_values(&mut items)?;
            Ok(Value::array(items))
        }
        other => Err(RuntimeError::TypeMismatch(format!(
            "sorted needs an array, got {}",
            other.type_name()
        ))),
    }
}

fn range(args: &[Value]) -> Result<Value, RuntimeError> {
    let bounds: Vec<f64> = args
        .iter()
        .map(|v| match v {
            Value::Num(n) => Ok(*n),
            other => Err(RuntimeError::TypeMismatch(format!(
                "range needs numbers, got {}",
                other.type_name()
            ))),
        })
        .collect::<Result<_, _>>()?;
    let (start, end, step) = match bounds.as_slice() {
        [end] => (0.0, *end, 1.0),
        [start, end] => (*start, *end, 1.0),
        [start, end, step] if *step != 0.0 => (*start, *end, *step),
        _ => return Err(RuntimeError::TypeMismatch("invalid range arguments".into())),
    };
    let mut out = Vec::new();
    let mut i = start;
    while (step > 0.0 && i < end) || (step < 0.0 && i > end) {
        out.push(Value::Num(i));
        i += step;
        if out.len() > 1_000_000 {
            return Err(RuntimeError::Other("range too large".into()));
        }
    }
    Ok(Value::array(out))
}

fn to_list(v: &Value) -> Result<Value, RuntimeError> {
    match v {
        Value::Array(cells) => Ok(Value::array(cells.borrow().clone())),
        Value::Str(s) => Ok(Value::array(
            s.chars().map(|c| Value::Str(c.to_string())).collect(),
        )),
        other => Err(RuntimeError::TypeMismatch(format!(
            "list needs an array or string, got {}",
            other.type_name()
        ))),
    }
}

fn object_keys(v: &Value) -> Result<Value, RuntimeError> {
    match v {
        Value::Object(fields) => Ok(Value::array(
            fields
                .borrow()
                .iter()
                .map(|(k, _)| Value::Str(k.clone()))
                .collect(),
        )),
        other => Err(RuntimeError::TypeMismatch(format!(
            "keys needs an object, got {}",
            other.type_name()
        ))),
    }
}

fn object_values(v: &Value) -> Result<Value, RuntimeError> {
    match v {
        Value::Object(fields) => Ok(Value::array(
            fields.borrow().iter().map(|(_, v)| v.clone()).collect(),
        )),
        other => Err(RuntimeError::TypeMismatch(format!(
            "values needs an object, got {}",
            other.type_name()
        ))),
    }
}

fn to_int(v: &Value) -> Result<Value, RuntimeError> {
    match v {
        Value::Num(n) => Ok(Value::Num(n.trunc())),
        Value::Bool(b) => Ok(Value::Num(if *b { 1.0 } else { 0.0 })),
        Value::Str(s) => {
            let t = s.trim();
            // parseInt semantics: consume a leading integer prefix.
            let mut end = 0;
            let bytes = t.as_bytes();
            if end < bytes.len() && (bytes[end] == b'-' || bytes[end] == b'+') {
                end += 1;
            }
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            t[..end]
                .parse::<f64>()
                .map(Value::Num)
                .map_err(|_| RuntimeError::Other(format!("cannot parse integer from {t:?}")))
        }
        other => Err(RuntimeError::TypeMismatch(format!(
            "cannot convert {} to integer",
            other.type_name()
        ))),
    }
}

fn to_float(v: &Value) -> Result<Value, RuntimeError> {
    match v {
        Value::Num(n) => Ok(Value::Num(*n)),
        Value::Bool(b) => Ok(Value::Num(if *b { 1.0 } else { 0.0 })),
        Value::Str(s) => s
            .trim()
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|_| RuntimeError::Other(format!("cannot parse number from {s:?}"))),
        other => Err(RuntimeError::TypeMismatch(format!(
            "cannot convert {} to number",
            other.type_name()
        ))),
    }
}

fn truthy(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Bool(b) => *b,
        Value::Num(n) => *n != 0.0,
        Value::Str(s) => !s.is_empty(),
        Value::Array(items) => !items.borrow().is_empty(),
        Value::Object(fields) => !fields.borrow().is_empty(),
        Value::Closure(_) => true,
    }
}

fn arity(name: &str, expected: usize, found: usize) -> RuntimeError {
    RuntimeError::ArityMismatch {
        name: name.to_owned(),
        expected,
        found,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_is_inverse_per_surface() {
        for canonical in [
            "to_upper",
            "to_lower",
            "trim",
            "index_of",
            "replace",
            "starts_with",
            "ends_with",
            "push",
            "pop",
            "join",
            "sort",
            "map",
        ] {
            assert_eq!(canonical_method_ts(ts_method_surface(canonical)), canonical);
            assert_eq!(canonical_method_py(py_method_surface(canonical)), canonical);
        }
    }

    #[test]
    fn namespace_calls_resolve() {
        assert_eq!(canonical_namespace_call("Math", "floor"), Some("floor"));
        assert_eq!(canonical_namespace_call("math", "floor"), Some("floor"));
        assert_eq!(
            canonical_namespace_call("JSON", "stringify"),
            Some("json_stringify")
        );
        assert_eq!(
            canonical_namespace_call("json", "dumps"),
            Some("json_stringify")
        );
        assert_eq!(canonical_namespace_call("Foo", "bar"), None);
    }

    #[test]
    fn string_methods() {
        let s = "hello world";
        let ok = |m: &str, args: &[Value]| string_method(s, m, args).unwrap();
        assert!(matches!(ok("to_upper", &[]), Value::Str(u) if u == "HELLO WORLD"));
        assert!(matches!(
            ok("split", &[Value::Str(" ".into())]),
            Value::Array(a) if a.borrow().len() == 2
        ));
        assert!(matches!(
            ok("index_of", &[Value::Str("world".into())]),
            Value::Num(n) if n == 6.0
        ));
        assert!(matches!(
            ok("index_of", &[Value::Str("zzz".into())]),
            Value::Num(n) if n == -1.0
        ));
        assert!(matches!(
            ok("slice", &[Value::Num(-5.0)]),
            Value::Str(t) if t == "world"
        ));
        assert!(matches!(
            ok("replace", &[Value::Str("l".into()), Value::Str("L".into())]),
            Value::Str(t) if t == "heLLo worLd"
        ));
        assert!(matches!(
            ok("count", &[Value::Str("l".into())]),
            Value::Num(n) if n == 3.0
        ));
        assert!(string_method(s, "nonsense", &[]).is_err());
    }

    #[test]
    fn unicode_string_ops_count_chars() {
        assert!(matches!(
            eval_prop(Value::Str("héllo".into()), "len").unwrap(),
            Value::Num(n) if n == 5.0
        ));
        assert!(matches!(
            string_method("héllo", "index_of", &[Value::Str("llo".into())]).unwrap(),
            Value::Num(n) if n == 2.0
        ));
    }

    #[test]
    fn pad_start_cycles_fill() {
        let v =
            string_method("7", "pad_start", &[Value::Num(3.0), Value::Str("0".into())]).unwrap();
        assert!(matches!(v, Value::Str(s) if s == "007"));
    }

    #[test]
    fn extremum_accepts_variadic_or_array() {
        let a = fold_extremum(&[Value::Num(3.0), Value::Num(9.0)], "max", true).unwrap();
        assert!(matches!(a, Value::Num(n) if n == 9.0));
        let arr = Value::array(vec![Value::Num(3.0), Value::Num(-1.0)]);
        let b = fold_extremum(&[arr], "min", false).unwrap();
        assert!(matches!(b, Value::Num(n) if n == -1.0));
        assert!(fold_extremum(&[], "min", false).is_err());
    }

    #[test]
    fn to_int_has_parse_int_semantics() {
        assert!(matches!(to_int(&Value::Str(" 42px".into())).unwrap(), Value::Num(n) if n == 42.0));
        assert!(matches!(to_int(&Value::Num(-3.9)).unwrap(), Value::Num(n) if n == -3.0));
        assert!(to_int(&Value::Str("px".into())).is_err());
    }

    #[test]
    fn range_matches_python() {
        let r = range(&[Value::Num(2.0), Value::Num(5.0)]).unwrap();
        let Value::Array(items) = r else { panic!() };
        let nums: Vec<f64> = items
            .borrow()
            .iter()
            .map(|v| match v {
                Value::Num(n) => *n,
                _ => panic!(),
            })
            .collect();
        assert_eq!(nums, [2.0, 3.0, 4.0]);
        assert!(range(&[Value::Num(1.0), Value::Num(0.0)])
            .unwrap()
            .equals(&Value::array(vec![])));
    }

    #[test]
    fn sort_rejects_mixed_types() {
        let mut items = vec![Value::Num(1.0), Value::Str("a".into())];
        assert!(sort_values(&mut items).is_err());
        let mut nums = vec![Value::Num(3.0), Value::Num(1.0), Value::Num(2.0)];
        sort_values(&mut nums).unwrap();
        assert!(nums[0].equals(&Value::Num(1.0)));
    }

    #[test]
    fn slice_bounds_clamp_and_invert() {
        assert_eq!(slice_bounds(&[], 5).unwrap(), (0, 5));
        assert_eq!(slice_bounds(&[Value::Num(-2.0)], 5).unwrap(), (3, 5));
        assert_eq!(
            slice_bounds(&[Value::Num(4.0), Value::Num(2.0)], 5).unwrap(),
            (4, 4)
        );
        assert_eq!(
            slice_bounds(&[Value::Num(0.0), Value::Num(99.0)], 5).unwrap(),
            (0, 5)
        );
    }
}
