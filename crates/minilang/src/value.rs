//! Runtime values for the MiniLang interpreter.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use askit_json::{Json, Map};

use crate::ast::Expr;

/// A runtime value.
///
/// Arrays and objects are reference values (like JS/Python): assigning one to
/// another variable aliases it. Numbers are IEEE doubles, like JavaScript.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null` / `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// A mutable, shared array.
    Array(Rc<RefCell<Vec<Value>>>),
    /// A mutable, shared string-keyed object (insertion-ordered).
    Object(Rc<RefCell<Vec<(String, Value)>>>),
    /// A lambda with its captured environment.
    Closure(Rc<Closure>),
}

/// A lambda value: parameters, body and the captured scope snapshot.
#[derive(Debug)]
pub struct Closure {
    /// Parameter names.
    pub params: Vec<String>,
    /// Body expression.
    pub body: Expr,
    /// Captured variables (a snapshot of the defining scope).
    pub captured: Vec<(String, Value)>,
}

impl Value {
    /// Builds an array value.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Rc::new(RefCell::new(items)))
    }

    /// Builds an object value.
    pub fn object(fields: Vec<(String, Value)>) -> Value {
        Value::Object(Rc::new(RefCell::new(fields)))
    }

    /// The value's type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
            Value::Closure(_) => "function",
        }
    }

    /// Structural equality (`==` in MiniLang). Closures are never equal.
    pub fn equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let a = a.borrow();
                let b = b.borrow();
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.equals(y))
            }
            (Value::Object(a), Value::Object(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let a = a.borrow();
                let b = b.borrow();
                a.len() == b.len()
                    && a.iter().all(|(k, v)| {
                        b.iter()
                            .find(|(k2, _)| k2 == k)
                            .is_some_and(|(_, w)| v.equals(w))
                    })
            }
            _ => false,
        }
    }

    /// Converts from JSON (used to pass test-example inputs into generated
    /// functions).
    pub fn from_json(json: &Json) -> Value {
        match json {
            Json::Null => Value::Null,
            Json::Bool(b) => Value::Bool(*b),
            Json::Int(i) => Value::Num(*i as f64),
            Json::Float(f) => Value::Num(*f),
            Json::Str(s) => Value::Str(s.clone()),
            Json::Array(items) => Value::array(items.iter().map(Value::from_json).collect()),
            Json::Object(map) => Value::object(
                map.iter()
                    .map(|(k, v)| (k.to_owned(), Value::from_json(v)))
                    .collect(),
            ),
        }
    }

    /// Converts to JSON (used to compare generated-function output against
    /// expected test outputs). Integral numbers become [`Json::Int`].
    ///
    /// Returns `None` for closures, which have no JSON form.
    pub fn to_json(&self) -> Option<Json> {
        match self {
            Value::Null => Some(Json::Null),
            Value::Bool(b) => Some(Json::Bool(*b)),
            Value::Num(f) => {
                if f.is_finite() && f.fract() == 0.0 && f.abs() < 9.0e15 {
                    Some(Json::Int(*f as i64))
                } else {
                    Some(Json::Float(*f))
                }
            }
            Value::Str(s) => Some(Json::Str(s.clone())),
            Value::Array(items) => {
                let items = items.borrow();
                let mut out = Vec::with_capacity(items.len());
                for v in items.iter() {
                    out.push(v.to_json()?);
                }
                Some(Json::Array(out))
            }
            Value::Object(fields) => {
                let fields = fields.borrow();
                let mut map = Map::with_capacity(fields.len());
                for (k, v) in fields.iter() {
                    map.insert(k.clone(), v.to_json()?);
                }
                Some(Json::Object(map))
            }
            Value::Closure(_) => None,
        }
    }

    /// The display string (`str(v)` / string concatenation), matching how
    /// scripting languages stringify: numbers drop a trailing `.0`, strings
    /// are bare, containers use JSON-ish notation.
    pub fn display_string(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Num(f) => format_number(*f),
            Value::Null => "null".to_owned(),
            Value::Bool(b) => b.to_string(),
            Value::Closure(_) => "<function>".to_owned(),
            other => other
                .to_json()
                .map(|j| j.to_compact_string())
                .unwrap_or_else(|| "<function>".to_owned()),
        }
    }
}

/// Formats a MiniLang number the way JS does: integral values print without
/// a decimal point.
pub fn format_number(f: f64) -> String {
    if f.is_finite() && f.fract() == 0.0 && f.abs() < 1e21 {
        format!("{}", f as i64)
    } else {
        format!("{f}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_structural() {
        let a = Value::array(vec![Value::Num(1.0), Value::Str("x".into())]);
        let b = Value::array(vec![Value::Num(1.0), Value::Str("x".into())]);
        assert!(a.equals(&b));
        let c = Value::array(vec![Value::Num(2.0)]);
        assert!(!a.equals(&c));
        assert!(!Value::Num(1.0).equals(&Value::Str("1".into())));
    }

    #[test]
    fn arrays_are_reference_values() {
        let a = Value::array(vec![Value::Num(1.0)]);
        let alias = a.clone();
        if let Value::Array(cells) = &a {
            cells.borrow_mut().push(Value::Num(2.0));
        }
        if let Value::Array(cells) = &alias {
            assert_eq!(cells.borrow().len(), 2);
        } else {
            panic!("expected array");
        }
    }

    #[test]
    fn json_roundtrip() {
        let j = Json::parse(r#"{"a": [1, 2.5, "s", null, true]}"#).unwrap();
        let v = Value::from_json(&j);
        assert_eq!(v.to_json().unwrap(), j);
    }

    #[test]
    fn integral_nums_become_ints_in_json() {
        assert_eq!(Value::Num(4.0).to_json().unwrap(), Json::Int(4));
        assert_eq!(Value::Num(4.5).to_json().unwrap(), Json::Float(4.5));
    }

    #[test]
    fn closures_have_no_json_form() {
        let c = Value::Closure(Rc::new(Closure {
            params: vec!["x".into()],
            body: Expr::var("x"),
            captured: vec![],
        }));
        assert!(c.to_json().is_none());
        let arr = Value::array(vec![c]);
        assert!(arr.to_json().is_none());
    }

    #[test]
    fn display_strings_match_scripting_conventions() {
        assert_eq!(Value::Num(4.0).display_string(), "4");
        assert_eq!(Value::Num(4.5).display_string(), "4.5");
        assert_eq!(Value::Str("hi".into()).display_string(), "hi");
        assert_eq!(Value::Bool(true).display_string(), "true");
        assert_eq!(Value::Null.display_string(), "null");
        assert_eq!(Value::array(vec![Value::Num(1.0)]).display_string(), "[1]");
    }

    #[test]
    fn object_equality_is_order_insensitive() {
        let a = Value::object(vec![
            ("x".into(), Value::Num(1.0)),
            ("y".into(), Value::Num(2.0)),
        ]);
        let b = Value::object(vec![
            ("y".into(), Value::Num(2.0)),
            ("x".into(), Value::Num(1.0)),
        ]);
        assert!(a.equals(&b));
    }
}
