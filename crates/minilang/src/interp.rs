//! The MiniLang tree-walking interpreter.
//!
//! Executes generated functions during (a) semantic validation against test
//! examples (paper §III-D Step 3) and (b) actual calls of compiled AskIt
//! functions — the fast path whose speedup over a model round-trip Table III
//! measures.
//!
//! Execution is *fuel-limited*: generated code is untrusted, so every
//! statement/expression costs one unit of fuel and a hung loop surfaces as
//! [`RuntimeError::OutOfFuel`] rather than a hung harness. Call depth is
//! bounded the same way.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use askit_json::{Json, Map};

use crate::ast::{BinOp, Expr, FuncDecl, LValue, Program, Stmt, UnOp};
use crate::builtins;
use crate::value::{Closure, Value};

/// Default fuel budget per top-level call (~millions of AST-node visits).
pub const DEFAULT_FUEL: u64 = 5_000_000;

/// Default maximum call depth (user functions + closures).
///
/// Kept conservative: each MiniLang call costs several Rust stack frames in
/// the tree-walking interpreter, and generated code never recurses deeply.
pub const DEFAULT_CALL_DEPTH: usize = 48;

/// A runtime failure inside MiniLang code.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// Reference to an unbound variable.
    UndefinedVariable(String),
    /// Call of an unknown function.
    UndefinedFunction(String),
    /// Unknown method for the receiver type.
    UndefinedMethod {
        /// Receiver type name.
        recv: &'static str,
        /// Canonical method name.
        name: String,
    },
    /// An operand had the wrong type.
    TypeMismatch(String),
    /// Array index out of range.
    IndexOutOfBounds {
        /// The requested index.
        index: i64,
        /// The container length.
        len: usize,
    },
    /// Missing object key.
    MissingKey(String),
    /// Division (or modulo) by zero.
    DivideByZero,
    /// The fuel budget was exhausted (runaway loop).
    OutOfFuel,
    /// The call-depth limit was exceeded (runaway recursion).
    StackOverflow,
    /// Wrong number of arguments in a call.
    ArityMismatch {
        /// Function name.
        name: String,
        /// Declared parameter count.
        expected: usize,
        /// Provided argument count.
        found: usize,
    },
    /// Anything else (builtin-specific failures).
    Other(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UndefinedVariable(n) => write!(f, "undefined variable '{n}'"),
            RuntimeError::UndefinedFunction(n) => write!(f, "undefined function '{n}'"),
            RuntimeError::UndefinedMethod { recv, name } => {
                write!(f, "no method '{name}' on {recv}")
            }
            RuntimeError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            RuntimeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (length {len})")
            }
            RuntimeError::MissingKey(k) => write!(f, "missing key '{k}'"),
            RuntimeError::DivideByZero => f.write_str("division by zero"),
            RuntimeError::OutOfFuel => f.write_str("execution budget exhausted"),
            RuntimeError::StackOverflow => f.write_str("call depth limit exceeded"),
            RuntimeError::ArityMismatch {
                name,
                expected,
                found,
            } => {
                write!(f, "'{name}' expects {expected} argument(s), got {found}")
            }
            RuntimeError::Other(m) => f.write_str(m),
        }
    }
}

impl Error for RuntimeError {}

/// Non-local control flow inside a function body.
pub(crate) enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// An interpreter instance over one [`Program`].
///
/// # Examples
///
/// ```
/// use minilang::{parse_ts, Interp};
/// use askit_json::{json, Json, Map};
///
/// let src = "export function add({x, y}: {x: number, y: number}): number { return x + y; }";
/// let program = parse_ts(src)?;
/// let mut args = Map::new();
/// args.insert("x", json!(2i64));
/// args.insert("y", json!(40i64));
/// let out = Interp::new(&program).call_json("add", &args)?;
/// assert_eq!(out, Json::Int(42));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Interp<'p> {
    program: &'p Program,
    /// One frame per active call; each frame is a stack of block scopes.
    frames: Vec<Vec<HashMap<String, Value>>>,
    fuel: u64,
    call_depth_limit: usize,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter with default fuel and depth limits.
    pub fn new(program: &'p Program) -> Self {
        Interp {
            program,
            frames: Vec::new(),
            fuel: DEFAULT_FUEL,
            call_depth_limit: DEFAULT_CALL_DEPTH,
        }
    }

    /// Overrides the fuel budget.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Remaining fuel (useful for instrumentation/ablation benches).
    pub fn fuel_remaining(&self) -> u64 {
        self.fuel
    }

    /// Calls a declared function with named JSON arguments and returns its
    /// result as JSON.
    ///
    /// This is the boundary the AskIt runtime uses: test-example inputs and
    /// compiled-function calls are both JSON maps keyed by parameter name.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UndefinedFunction`] for an unknown name,
    /// [`RuntimeError::ArityMismatch`]-style errors for missing arguments,
    /// or whatever the body raises. A function returning a closure is a
    /// [`RuntimeError::TypeMismatch`] (closures have no JSON form).
    pub fn call_json(&mut self, name: &str, args: &Map) -> Result<Json, RuntimeError> {
        let decl = self
            .program
            .function(name)
            .ok_or_else(|| RuntimeError::UndefinedFunction(name.to_owned()))?;
        let mut positional = Vec::with_capacity(decl.params.len());
        for param in &decl.params {
            let v = args.get(&param.name).ok_or_else(|| {
                RuntimeError::Other(format!("missing argument '{}' for '{}'", param.name, name))
            })?;
            positional.push(Value::from_json(v));
        }
        let out = self.call_decl(decl, positional)?;
        out.to_json().ok_or_else(|| {
            RuntimeError::TypeMismatch("function returned a non-JSON value".to_owned())
        })
    }

    /// Calls a declared function with positional values.
    pub fn call_positional(&mut self, name: &str, args: Vec<Value>) -> Result<Value, RuntimeError> {
        let decl = self
            .program
            .function(name)
            .ok_or_else(|| RuntimeError::UndefinedFunction(name.to_owned()))?;
        self.call_decl(decl, args)
    }

    fn call_decl(&mut self, decl: &FuncDecl, args: Vec<Value>) -> Result<Value, RuntimeError> {
        if args.len() != decl.params.len() {
            return Err(RuntimeError::ArityMismatch {
                name: decl.name.clone(),
                expected: decl.params.len(),
                found: args.len(),
            });
        }
        if self.frames.len() >= self.call_depth_limit {
            return Err(RuntimeError::StackOverflow);
        }
        let mut scope = HashMap::with_capacity(decl.params.len());
        for (param, value) in decl.params.iter().zip(args) {
            scope.insert(param.name.clone(), value);
        }
        self.frames.push(vec![scope]);
        // `decl.body` is cloned so the borrow on `self.program` does not
        // entangle with `&mut self`; bodies are small.
        let body = decl.body.clone();
        let result = self.exec_block(&body);
        self.frames.pop();
        match result? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Null), // fell off the end: void-style return
        }
    }

    /// Invokes a callable value (a closure) with positional arguments.
    pub(crate) fn call_callable(
        &mut self,
        callee: &Value,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        match callee {
            Value::Closure(closure) => self.call_closure(closure, args),
            other => Err(RuntimeError::TypeMismatch(format!(
                "cannot call a {}",
                other.type_name()
            ))),
        }
    }

    fn call_closure(&mut self, closure: &Closure, args: Vec<Value>) -> Result<Value, RuntimeError> {
        if args.len() != closure.params.len() {
            return Err(RuntimeError::ArityMismatch {
                name: "<lambda>".to_owned(),
                expected: closure.params.len(),
                found: args.len(),
            });
        }
        if self.frames.len() >= self.call_depth_limit {
            return Err(RuntimeError::StackOverflow);
        }
        let mut scope: HashMap<String, Value> = closure.captured.iter().cloned().collect();
        for (name, value) in closure.params.iter().zip(args) {
            scope.insert(name.clone(), value);
        }
        self.frames.push(vec![scope]);
        let body = closure.body.clone();
        let result = self.eval_expr(&body);
        self.frames.pop();
        result
    }

    fn burn(&mut self) -> Result<(), RuntimeError> {
        if self.fuel == 0 {
            return Err(RuntimeError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn scopes_mut(&mut self) -> &mut Vec<HashMap<String, Value>> {
        self.frames.last_mut().expect("active frame")
    }

    fn lookup(&self, name: &str) -> Option<Value> {
        let frame = self.frames.last()?;
        for scope in frame.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn assign_var(&mut self, name: &str, value: Value) -> Result<(), RuntimeError> {
        let frame = self.scopes_mut();
        for scope in frame.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return Ok(());
            }
        }
        Err(RuntimeError::UndefinedVariable(name.to_owned()))
    }

    /// A snapshot of all visible bindings, innermost-wins (for closures).
    fn visible_bindings(&self) -> Vec<(String, Value)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        if let Some(frame) = self.frames.last() {
            for scope in frame.iter().rev() {
                for (k, v) in scope {
                    if seen.insert(k.clone()) {
                        out.push((k.clone(), v.clone()));
                    }
                }
            }
        }
        out
    }

    pub(crate) fn exec_block(&mut self, block: &[Stmt]) -> Result<Flow, RuntimeError> {
        self.scopes_mut().push(HashMap::new());
        let result = self.exec_stmts(block);
        self.scopes_mut().pop();
        result
    }

    fn exec_stmts(&mut self, block: &[Stmt]) -> Result<Flow, RuntimeError> {
        for stmt in block {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, RuntimeError> {
        self.burn()?;
        match stmt {
            Stmt::Let { name, init, .. } => {
                let v = self.eval_expr(init)?;
                // MiniLang binding semantics are Python's: `x = v` updates an
                // existing visible `x`, otherwise declares it in the current
                // scope. (MiniPy prints every binding as `x = v`, so a
                // re-binding inside a loop body must reach the outer
                // variable; TS-style block shadowing would silently fork it.)
                if self.assign_var(name, v.clone()).is_err() {
                    self.scopes_mut()
                        .last_mut()
                        .expect("block scope")
                        .insert(name.clone(), v);
                }
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, op, value } => {
                let rhs = self.eval_expr(value)?;
                let new_value = match op {
                    None => rhs,
                    Some(op) => {
                        let current = self.read_lvalue(target)?;
                        self.binary(*op, current, rhs)?
                    }
                };
                self.write_lvalue(target, new_value)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                if self.eval_bool(cond)? {
                    self.exec_block(then_block)
                } else {
                    self.exec_block(else_block)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval_bool(cond)? {
                    self.burn()?;
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::ForRange {
                var,
                start,
                end,
                inclusive,
                body,
            } => {
                let start = self.eval_num(start)?;
                let end = self.eval_num(end)?;
                let mut i = start;
                while (*inclusive && i <= end) || (!*inclusive && i < end) {
                    self.burn()?;
                    self.scopes_mut()
                        .push(HashMap::from([(var.clone(), Value::Num(i))]));
                    let flow = self.exec_stmts(body);
                    self.scopes_mut().pop();
                    match flow? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    i += 1.0;
                }
                Ok(Flow::Normal)
            }
            Stmt::ForOf { var, iter, body } => {
                let items = self.iterable_items(iter)?;
                for item in items {
                    self.burn()?;
                    self.scopes_mut().push(HashMap::from([(var.clone(), item)]));
                    let flow = self.exec_stmts(body);
                    self.scopes_mut().pop();
                    match flow? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(expr) => {
                let v = match expr {
                    Some(e) => self.eval_expr(e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Expr(e) => {
                self.eval_expr(e)?;
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn iterable_items(&mut self, iter: &Expr) -> Result<Vec<Value>, RuntimeError> {
        match self.eval_expr(iter)? {
            Value::Array(items) => Ok(items.borrow().clone()),
            Value::Str(s) => Ok(s.chars().map(|c| Value::Str(c.to_string())).collect()),
            Value::Object(fields) => {
                // Iterating an object yields its keys (Python dict semantics).
                Ok(fields
                    .borrow()
                    .iter()
                    .map(|(k, _)| Value::Str(k.clone()))
                    .collect())
            }
            other => Err(RuntimeError::TypeMismatch(format!(
                "cannot iterate over a {}",
                other.type_name()
            ))),
        }
    }

    fn read_lvalue(&mut self, target: &LValue) -> Result<Value, RuntimeError> {
        match target {
            LValue::Var(name) => self
                .lookup(name)
                .ok_or_else(|| RuntimeError::UndefinedVariable(name.clone())),
            LValue::Index(base, index) => {
                let base = self.eval_expr(base)?;
                let index = self.eval_expr(index)?;
                self.index_read(&base, &index)
            }
        }
    }

    fn write_lvalue(&mut self, target: &LValue, value: Value) -> Result<(), RuntimeError> {
        match target {
            LValue::Var(name) => self.assign_var(name, value),
            LValue::Index(base, index) => {
                let base = self.eval_expr(base)?;
                let index = self.eval_expr(index)?;
                match (&base, &index) {
                    (Value::Array(items), Value::Num(n)) => {
                        let mut items = items.borrow_mut();
                        let idx = to_index(*n, items.len() + 1)?;
                        if idx == items.len() {
                            items.push(value); // writing one past the end appends
                        } else {
                            items[idx] = value;
                        }
                        Ok(())
                    }
                    (Value::Object(fields), Value::Str(key)) => {
                        let mut fields = fields.borrow_mut();
                        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                            slot.1 = value;
                        } else {
                            fields.push((key.clone(), value));
                        }
                        Ok(())
                    }
                    (b, i) => Err(RuntimeError::TypeMismatch(format!(
                        "cannot index-assign {}[{}]",
                        b.type_name(),
                        i.type_name()
                    ))),
                }
            }
        }
    }

    fn index_read(&self, base: &Value, index: &Value) -> Result<Value, RuntimeError> {
        match (base, index) {
            (Value::Array(items), Value::Num(n)) => {
                let items = items.borrow();
                let idx = to_index_signed(*n, items.len())?;
                Ok(items[idx].clone())
            }
            (Value::Str(s), Value::Num(n)) => {
                let chars: Vec<char> = s.chars().collect();
                let idx = to_index_signed(*n, chars.len())?;
                Ok(Value::Str(chars[idx].to_string()))
            }
            (Value::Object(fields), Value::Str(key)) => fields
                .borrow()
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| RuntimeError::MissingKey(key.clone())),
            (b, i) => Err(RuntimeError::TypeMismatch(format!(
                "cannot index {} with {}",
                b.type_name(),
                i.type_name()
            ))),
        }
    }

    fn eval_bool(&mut self, e: &Expr) -> Result<bool, RuntimeError> {
        match self.eval_expr(e)? {
            Value::Bool(b) => Ok(b),
            other => Err(RuntimeError::TypeMismatch(format!(
                "condition must be a boolean, got {}",
                other.type_name()
            ))),
        }
    }

    fn eval_num(&mut self, e: &Expr) -> Result<f64, RuntimeError> {
        match self.eval_expr(e)? {
            Value::Num(n) => Ok(n),
            other => Err(RuntimeError::TypeMismatch(format!(
                "expected a number, got {}",
                other.type_name()
            ))),
        }
    }

    pub(crate) fn eval_expr(&mut self, e: &Expr) -> Result<Value, RuntimeError> {
        self.burn()?;
        match e {
            Expr::Null => Ok(Value::Null),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Var(name) => self
                .lookup(name)
                .ok_or_else(|| RuntimeError::UndefinedVariable(name.clone())),
            Expr::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval_expr(item)?);
                }
                Ok(Value::array(out))
            }
            Expr::Object(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (k, v) in fields {
                    out.push((k.clone(), self.eval_expr(v)?));
                }
                Ok(Value::object(out))
            }
            Expr::Unary(op, inner) => {
                let v = self.eval_expr(inner)?;
                match (op, v) {
                    (UnOp::Neg, Value::Num(n)) => Ok(Value::Num(-n)),
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnOp::Neg, other) => Err(RuntimeError::TypeMismatch(format!(
                        "cannot negate a {}",
                        other.type_name()
                    ))),
                    (UnOp::Not, other) => Err(RuntimeError::TypeMismatch(format!(
                        "'not' needs a boolean, got {}",
                        other.type_name()
                    ))),
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                // Short-circuit logical operators.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let l = self.eval_expr(lhs)?;
                    let Value::Bool(l) = l else {
                        return Err(RuntimeError::TypeMismatch(format!(
                            "logical operand must be boolean, got {}",
                            l.type_name()
                        )));
                    };
                    return match (op, l) {
                        (BinOp::And, false) => Ok(Value::Bool(false)),
                        (BinOp::Or, true) => Ok(Value::Bool(true)),
                        _ => {
                            let r = self.eval_expr(rhs)?;
                            match r {
                                Value::Bool(b) => Ok(Value::Bool(b)),
                                other => Err(RuntimeError::TypeMismatch(format!(
                                    "logical operand must be boolean, got {}",
                                    other.type_name()
                                ))),
                            }
                        }
                    };
                }
                let l = self.eval_expr(lhs)?;
                let r = self.eval_expr(rhs)?;
                self.binary(*op, l, r)
            }
            Expr::Cond(cond, then_e, else_e) => {
                if self.eval_bool(cond)? {
                    self.eval_expr(then_e)
                } else {
                    self.eval_expr(else_e)
                }
            }
            Expr::Call { callee, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval_expr(a)?);
                }
                // Builtins shadow user functions; local callable variables
                // (closures in scope) shadow both.
                if let Some(local) = self.lookup(callee) {
                    if matches!(local, Value::Closure(_)) {
                        return self.call_callable(&local, values);
                    }
                }
                if let Some(result) = builtins::eval_free(self, callee, &mut values.clone()) {
                    return result;
                }
                if self.program.function(callee).is_some() {
                    return self.call_positional(callee, values);
                }
                Err(RuntimeError::UndefinedFunction(callee.clone()))
            }
            Expr::Method { recv, name, args } => {
                let recv = self.eval_expr(recv)?;
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval_expr(a)?);
                }
                builtins::eval_method(self, recv, name, values)
            }
            Expr::Prop(recv, name) => {
                let recv = self.eval_expr(recv)?;
                builtins::eval_prop(recv, name)
            }
            Expr::Index(base, index) => {
                let base = self.eval_expr(base)?;
                let index = self.eval_expr(index)?;
                self.index_read(&base, &index)
            }
            Expr::Lambda { params, body } => Ok(Value::Closure(std::rc::Rc::new(Closure {
                params: params.clone(),
                body: (**body).clone(),
                captured: self.visible_bindings(),
            }))),
        }
    }

    pub(crate) fn binary(&self, op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
        use BinOp::*;
        match op {
            Add => match (&l, &r) {
                (Value::Num(a), Value::Num(b)) => Ok(Value::Num(a + b)),
                (Value::Str(_), _) | (_, Value::Str(_)) => Ok(Value::Str(format!(
                    "{}{}",
                    l.display_string(),
                    r.display_string()
                ))),
                (Value::Array(a), Value::Array(b)) => {
                    let mut out = a.borrow().clone();
                    out.extend(b.borrow().iter().cloned());
                    Ok(Value::array(out))
                }
                _ => Err(type_mismatch("+", &l, &r)),
            },
            Sub | Mul | Div | FloorDiv | Mod | Pow => {
                // `*` also means string/array repetition (Python style).
                if op == Mul {
                    if let (Value::Str(s), Value::Num(n)) = (&l, &r) {
                        return repeat_str(s, *n);
                    }
                    if let (Value::Num(n), Value::Str(s)) = (&l, &r) {
                        return repeat_str(s, *n);
                    }
                }
                let (Value::Num(a), Value::Num(b)) = (&l, &r) else {
                    return Err(type_mismatch(op_symbol(op), &l, &r));
                };
                let (a, b) = (*a, *b);
                match op {
                    Sub => Ok(Value::Num(a - b)),
                    Mul => Ok(Value::Num(a * b)),
                    Div => {
                        if b == 0.0 {
                            Err(RuntimeError::DivideByZero)
                        } else {
                            Ok(Value::Num(a / b))
                        }
                    }
                    FloorDiv => {
                        if b == 0.0 {
                            Err(RuntimeError::DivideByZero)
                        } else {
                            Ok(Value::Num((a / b).floor()))
                        }
                    }
                    Mod => {
                        if b == 0.0 {
                            Err(RuntimeError::DivideByZero)
                        } else {
                            Ok(Value::Num(a % b))
                        }
                    }
                    Pow => Ok(Value::Num(a.powf(b))),
                    _ => unreachable!("arithmetic op"),
                }
            }
            Eq => Ok(Value::Bool(l.equals(&r))),
            Ne => Ok(Value::Bool(!l.equals(&r))),
            Lt | Le | Gt | Ge => {
                let ord = match (&l, &r) {
                    (Value::Num(a), Value::Num(b)) => a
                        .partial_cmp(b)
                        .ok_or_else(|| RuntimeError::TypeMismatch("NaN comparison".into()))?,
                    (Value::Str(a), Value::Str(b)) => a.cmp(b),
                    _ => return Err(type_mismatch(op_symbol(op), &l, &r)),
                };
                let b = match op {
                    Lt => ord.is_lt(),
                    Le => ord.is_le(),
                    Gt => ord.is_gt(),
                    Ge => ord.is_ge(),
                    _ => unreachable!("comparison op"),
                };
                Ok(Value::Bool(b))
            }
            And | Or => unreachable!("short-circuited in eval_expr"),
        }
    }
}

fn repeat_str(s: &str, n: f64) -> Result<Value, RuntimeError> {
    if n < 0.0 || n.fract() != 0.0 || n > 100_000.0 {
        return Err(RuntimeError::TypeMismatch(format!(
            "invalid repeat count {n}"
        )));
    }
    Ok(Value::Str(s.repeat(n as usize)))
}

fn op_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::FloorDiv => "//",
        BinOp::Mod => "%",
        BinOp::Pow => "**",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn type_mismatch(op: &str, l: &Value, r: &Value) -> RuntimeError {
    RuntimeError::TypeMismatch(format!(
        "'{op}' not defined for {} and {}",
        l.type_name(),
        r.type_name()
    ))
}

/// Converts an f64 index; `len` is the exclusive bound.
fn to_index(n: f64, len: usize) -> Result<usize, RuntimeError> {
    if n.fract() != 0.0 || n < 0.0 || (n as usize) >= len {
        Err(RuntimeError::IndexOutOfBounds {
            index: n as i64,
            len: len.saturating_sub(1),
        })
    } else {
        Ok(n as usize)
    }
}

/// Like [`to_index`] but supports Python-style negative indices.
fn to_index_signed(n: f64, len: usize) -> Result<usize, RuntimeError> {
    if n.fract() != 0.0 {
        return Err(RuntimeError::IndexOutOfBounds {
            index: n as i64,
            len,
        });
    }
    let i = n as i64;
    let resolved = if i < 0 { i + len as i64 } else { i };
    if resolved < 0 || resolved as usize >= len {
        Err(RuntimeError::IndexOutOfBounds { index: i, len })
    } else {
        Ok(resolved as usize)
    }
}
