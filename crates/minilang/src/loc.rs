//! Lines-of-code counting — the metric of the paper's Table II and Figure 5.
//!
//! "LOC counts only substantive lines, omitting empty lines or comment-only
//! lines" (paper §IV-A1).

/// Counts substantive lines in MiniTS or MiniPy source: lines that are not
/// blank and not comment-only (`//…`, `#…`, or inside `/* … */`).
///
/// ```
/// use minilang::loc::count_loc;
/// let src = "// helper\nlet x = 1;\n\n/*\n block\n*/\nreturn x; // trailing comments don't erase a line\n";
/// assert_eq!(count_loc(src), 2);
/// ```
pub fn count_loc(source: &str) -> usize {
    let mut count = 0;
    let mut in_block_comment = false;
    for line in source.lines() {
        let trimmed = line.trim();
        if in_block_comment {
            if let Some(idx) = trimmed.find("*/") {
                in_block_comment = false;
                let rest = trimmed[idx + 2..].trim();
                if !rest.is_empty() && !is_comment_only(rest, &mut in_block_comment) {
                    count += 1;
                }
            }
            continue;
        }
        if trimmed.is_empty() {
            continue;
        }
        if is_comment_only(trimmed, &mut in_block_comment) {
            continue;
        }
        count += 1;
    }
    count
}

/// Whether a (trimmed, non-empty) line consists only of comments. Updates the
/// block-comment state when the line opens an unterminated `/*`.
fn is_comment_only(trimmed: &str, in_block_comment: &mut bool) -> bool {
    if trimmed.starts_with("//") || trimmed.starts_with('#') {
        return true;
    }
    if let Some(rest) = trimmed.strip_prefix("/*") {
        match rest.find("*/") {
            Some(idx) => {
                let after = rest[idx + 2..].trim();
                if after.is_empty() {
                    return true;
                }
                return is_comment_only(after, in_block_comment);
            }
            None => {
                *in_block_comment = true;
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_lines_do_not_count() {
        assert_eq!(count_loc("a = 1\n\n\nb = 2\n"), 2);
        assert_eq!(count_loc(""), 0);
        assert_eq!(count_loc("\n\n"), 0);
    }

    #[test]
    fn line_comments_do_not_count() {
        assert_eq!(
            count_loc("// only a comment\nx = 1;\n# python comment\n"),
            1
        );
    }

    #[test]
    fn code_with_trailing_comment_counts() {
        assert_eq!(count_loc("x = 1; // note\n"), 1);
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "/*\n * docs\n */\nreturn 1;\n";
        assert_eq!(count_loc(src), 1);
    }

    #[test]
    fn code_after_block_comment_close_counts() {
        assert_eq!(count_loc("/* c */ x = 1;\n"), 1);
        assert_eq!(
            count_loc("/* a */ /* b */\n"),
            0,
            "two comments are still only comments"
        );
        assert_eq!(count_loc("/* open\nstill comment */ y = 2;\n"), 1);
    }

    #[test]
    fn paper_example_shape() {
        // A typical generated function: signature + 3 body lines.
        let src = "export function f({n}: {n: number}): number {\n  // Calculate\n  let acc = 1;\n  return acc;\n}\n";
        assert_eq!(count_loc(src), 4);
    }
}
