//! Parsing AskIt types out of a MiniLang token stream.
//!
//! Function signatures in generated code carry TypeScript type annotations
//! (`{x: number, y: number[]}`). [`askit_types::Type::parse`] works on raw
//! strings; this module provides the equivalent over the parsers' token
//! cursor so signatures parse in one pass.

use askit_json::Json;
use askit_types::Type;

use crate::cursor::Cursor;
use crate::token::{SyntaxError, Tok};

/// Parses a type at the cursor.
///
/// Accepts the same grammar as [`askit_types::Type::parse`]: primitives,
/// literals, `T[]`, `Array<T>`, `{ k: T, … }` objects and `A | B` unions.
pub fn parse_type(c: &mut Cursor) -> Result<Type, SyntaxError> {
    union_type(c)
}

fn union_type(c: &mut Cursor) -> Result<Type, SyntaxError> {
    let mut variants = vec![postfix_type(c)?];
    while c.eat(&Tok::Pipe) {
        variants.push(postfix_type(c)?);
    }
    if variants.len() == 1 {
        Ok(variants.pop().expect("len checked"))
    } else {
        Ok(Type::Union(variants))
    }
}

fn postfix_type(c: &mut Cursor) -> Result<Type, SyntaxError> {
    let mut t = primary_type(c)?;
    while c.peek().tok == Tok::LBracket && c.peek_at(1).tok == Tok::RBracket {
        c.advance();
        c.advance();
        t = Type::List(Box::new(t));
    }
    Ok(t)
}

fn primary_type(c: &mut Cursor) -> Result<Type, SyntaxError> {
    match c.peek().tok.clone() {
        Tok::LBrace => object_type(c),
        Tok::LParen => {
            c.advance();
            let t = union_type(c)?;
            c.expect(&Tok::RParen)?;
            Ok(t)
        }
        Tok::Str(s) => {
            c.advance();
            Ok(Type::Literal(Json::Str(s)))
        }
        Tok::Num(n) => {
            c.advance();
            Ok(Type::Literal(number_literal(n)))
        }
        Tok::Minus => {
            c.advance();
            match c.peek().tok.clone() {
                Tok::Num(n) => {
                    c.advance();
                    Ok(Type::Literal(number_literal(-n)))
                }
                _ => Err(c.error("expected number after '-' in literal type")),
            }
        }
        Tok::Ident(word) => {
            c.advance();
            match word.as_str() {
                "number" | "float" => Ok(Type::Float),
                "int" => Ok(Type::Int),
                "string" | "str" => Ok(Type::Str),
                "boolean" | "bool" => Ok(Type::Bool),
                "void" | "null" | "undefined" | "None" | "none" => Ok(Type::Void),
                "any" | "unknown" | "object" | "Date" => Ok(Type::Any),
                "true" | "True" => Ok(Type::Literal(Json::Bool(true))),
                "false" | "False" => Ok(Type::Literal(Json::Bool(false))),
                "Array" | "List" | "list" => {
                    c.expect(&Tok::Lt)?;
                    let inner = union_type(c)?;
                    c.expect(&Tok::Gt)?;
                    Ok(Type::List(Box::new(inner)))
                }
                other => Err(c.error(format!("unknown type name '{other}'"))),
            }
        }
        other => Err(c.error(format!("expected a type, found {other}"))),
    }
}

fn object_type(c: &mut Cursor) -> Result<Type, SyntaxError> {
    c.expect(&Tok::LBrace)?;
    let mut fields = Vec::new();
    loop {
        if c.eat(&Tok::RBrace) {
            return Ok(Type::Dict(fields));
        }
        let name = match c.peek().tok.clone() {
            Tok::Ident(s) => {
                c.advance();
                s
            }
            Tok::Str(s) => {
                c.advance();
                s
            }
            other => return Err(c.error(format!("expected field name, found {other}"))),
        };
        c.eat(&Tok::Question); // optional-field marker, tolerated
        c.expect(&Tok::Colon)?;
        let ty = union_type(c)?;
        fields.push((name, ty));
        if !(c.eat(&Tok::Comma) || c.eat(&Tok::Semi)) {
            c.expect(&Tok::RBrace)?;
            return Ok(Type::Dict(fields));
        }
    }
}

fn number_literal(n: f64) -> Json {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        Json::Int(n as i64)
    } else {
        Json::Float(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer_ts::lex_ts;
    use askit_types::{boolean, dict, float, list, literal, string, union};

    fn p(src: &str) -> Type {
        let mut c = Cursor::new(lex_ts(src).unwrap());
        let t = parse_type(&mut c).unwrap();
        assert!(c.at_eof(), "trailing tokens in {src:?}");
        t
    }

    #[test]
    fn primitives_and_containers() {
        assert_eq!(p("number"), float());
        assert_eq!(p("string[]"), list(string()));
        assert_eq!(p("Array<boolean>"), list(boolean()));
        assert_eq!(
            p("{ x: number, y: string }"),
            dict([("x", float()), ("y", string())])
        );
    }

    #[test]
    fn literals_and_unions() {
        assert_eq!(p("'a' | 'b'"), union([literal("a"), literal("b")]));
        assert_eq!(p("-3"), literal(-3i64));
        assert_eq!(p("1.5"), literal(1.5f64));
        assert_eq!(
            p("('a' | 'b')[]"),
            list(union([literal("a"), literal("b")]))
        );
    }

    #[test]
    fn agrees_with_string_parser() {
        for src in [
            "number",
            "{ title: string, author: string, year: number }[]",
            "'positive' | 'negative'",
            "number[][]",
        ] {
            assert_eq!(p(src), Type::parse(src).unwrap(), "{src}");
        }
    }
}
