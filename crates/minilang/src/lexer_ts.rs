//! Lexer for the MiniTS (TypeScript-like) surface syntax.

use crate::token::{SyntaxError, Tok, Token};

/// Tokenizes MiniTS source. Comments (`//…` and `/*…*/`) are skipped.
///
/// # Errors
///
/// Returns a [`SyntaxError`] on unterminated strings/comments or stray bytes.
pub fn lex_ts(source: &str) -> Result<Vec<Token>, SyntaxError> {
    let mut lexer = TsLexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    lexer.run()
}

struct TsLexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl TsLexer {
    fn run(&mut self) -> Result<Vec<Token>, SyntaxError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token::new(Tok::Eof, line, col));
                return Ok(out);
            };
            let tok = match c {
                '(' => self.take(Tok::LParen),
                ')' => self.take(Tok::RParen),
                '{' => self.take(Tok::LBrace),
                '}' => self.take(Tok::RBrace),
                '[' => self.take(Tok::LBracket),
                ']' => self.take(Tok::RBracket),
                ',' => self.take(Tok::Comma),
                ';' => self.take(Tok::Semi),
                ':' => self.take(Tok::Colon),
                '.' => self.take(Tok::Dot),
                '?' => self.take(Tok::Question),
                '%' => self.take(Tok::Percent),
                '|' => {
                    self.bump();
                    if self.peek() == Some('|') {
                        self.bump();
                        Tok::PipePipe
                    } else {
                        Tok::Pipe
                    }
                }
                '&' => {
                    self.bump();
                    if self.peek() == Some('&') {
                        self.bump();
                        Tok::AmpAmp
                    } else {
                        return Err(SyntaxError::new("unexpected '&'", line, col));
                    }
                }
                '+' => {
                    self.bump();
                    match self.peek() {
                        Some('+') => {
                            self.bump();
                            Tok::PlusPlus
                        }
                        Some('=') => {
                            self.bump();
                            Tok::PlusAssign
                        }
                        _ => Tok::Plus,
                    }
                }
                '-' => {
                    self.bump();
                    match self.peek() {
                        Some('-') => {
                            self.bump();
                            Tok::MinusMinus
                        }
                        Some('=') => {
                            self.bump();
                            Tok::MinusAssign
                        }
                        _ => Tok::Minus,
                    }
                }
                '*' => {
                    self.bump();
                    match self.peek() {
                        Some('*') => {
                            self.bump();
                            Tok::StarStar
                        }
                        Some('=') => {
                            self.bump();
                            Tok::StarAssign
                        }
                        _ => Tok::Star,
                    }
                }
                '/' => {
                    // Comments were consumed by skip_trivia; this is division.
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::SlashAssign
                    } else {
                        Tok::Slash
                    }
                }
                '=' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            if self.peek() == Some('=') {
                                self.bump(); // `===` means the same as `==` here
                            }
                            Tok::EqEq
                        }
                        Some('>') => {
                            self.bump();
                            Tok::FatArrow
                        }
                        _ => Tok::Assign,
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        if self.peek() == Some('=') {
                            self.bump(); // `!==`
                        }
                        Tok::NotEq
                    } else {
                        Tok::Bang
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                '\'' | '"' => self.string(c)?,
                c if c.is_ascii_digit() => self.number()?,
                c if c.is_ascii_alphabetic() || c == '_' || c == '$' => self.ident(),
                other => {
                    return Err(SyntaxError::new(
                        format!("unexpected character '{other}'"),
                        line,
                        col,
                    ))
                }
            };
            out.push(Token::new(tok, line, col));
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn take(&mut self, tok: Tok) -> Tok {
        self.bump();
        tok
    }

    fn skip_trivia(&mut self) -> Result<(), SyntaxError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let (line, col) = (self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some('*') if self.peek2() == Some('/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(SyntaxError::new(
                                    "unterminated block comment",
                                    line,
                                    col,
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn string(&mut self, quote: char) -> Result<Tok, SyntaxError> {
        let (line, col) = (self.line, self.col);
        self.bump();
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(SyntaxError::new("unterminated string", line, col)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('0') => s.push('\0'),
                    Some(c @ ('\'' | '"' | '\\' | '`')) => s.push(c),
                    Some(other) => {
                        return Err(SyntaxError::new(
                            format!("invalid escape '\\{other}'"),
                            self.line,
                            self.col,
                        ))
                    }
                    None => return Err(SyntaxError::new("unterminated string", line, col)),
                },
                Some(c) if c == quote => return Ok(Tok::Str(s)),
                Some('\n') => return Err(SyntaxError::new("newline in string", line, col)),
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Tok, SyntaxError> {
        let (line, col) = (self.line, self.col);
        let mut text = String::new();
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            text.push(self.bump().expect("digit"));
        }
        if self.peek() == Some('.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            text.push(self.bump().expect("dot"));
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                text.push(self.bump().expect("digit"));
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            text.push(self.bump().expect("e"));
            if matches!(self.peek(), Some('+' | '-')) {
                text.push(self.bump().expect("sign"));
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(SyntaxError::new(
                    "missing exponent digits",
                    self.line,
                    self.col,
                ));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                text.push(self.bump().expect("digit"));
            }
        }
        text.parse::<f64>()
            .map(Tok::Num)
            .map_err(|_| SyntaxError::new("invalid number", line, col))
    }

    fn ident(&mut self) -> Tok {
        let mut s = String::new();
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '$') {
            s.push(self.bump().expect("ident char"));
        }
        Tok::Ident(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex_ts(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_a_function_header() {
        let got = toks("export function f({x}: {x: number}): number {");
        assert_eq!(
            got,
            vec![
                Tok::Ident("export".into()),
                Tok::Ident("function".into()),
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::LBrace,
                Tok::Ident("x".into()),
                Tok::RBrace,
                Tok::Colon,
                Tok::LBrace,
                Tok::Ident("x".into()),
                Tok::Colon,
                Tok::Ident("number".into()),
                Tok::RBrace,
                Tok::RParen,
                Tok::Colon,
                Tok::Ident("number".into()),
                Tok::LBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let got = toks("a // line\n/* block\nstill */ b");
        assert_eq!(
            got,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn triple_equals_normalizes() {
        assert_eq!(
            toks("a === b !== c"),
            vec![
                Tok::Ident("a".into()),
                Tok::EqEq,
                Tok::Ident("b".into()),
                Tok::NotEq,
                Tok::Ident("c".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            toks("i++ x += 1 y ** 2 p => q a && b || !c"),
            vec![
                Tok::Ident("i".into()),
                Tok::PlusPlus,
                Tok::Ident("x".into()),
                Tok::PlusAssign,
                Tok::Num(1.0),
                Tok::Ident("y".into()),
                Tok::StarStar,
                Tok::Num(2.0),
                Tok::Ident("p".into()),
                Tok::FatArrow,
                Tok::Ident("q".into()),
                Tok::Ident("a".into()),
                Tok::AmpAmp,
                Tok::Ident("b".into()),
                Tok::PipePipe,
                Tok::Bang,
                Tok::Ident("c".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#"'a\'b' "c\n""#),
            vec![Tok::Str("a'b".into()), Tok::Str("c\n".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("0 42 3.5 1e3 2.5e-1"),
            vec![
                Tok::Num(0.0),
                Tok::Num(42.0),
                Tok::Num(3.5),
                Tok::Num(1000.0),
                Tok::Num(0.25),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn member_access_vs_float() {
        // `xs.length` must lex as ident dot ident, not a malformed number.
        assert_eq!(
            toks("xs.length"),
            vec![
                Tok::Ident("xs".into()),
                Tok::Dot,
                Tok::Ident("length".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn errors_have_positions() {
        let err = lex_ts("let a = 'oops").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.col, 9);
        assert!(lex_ts("/* never closed").is_err());
        assert!(lex_ts("a @ b").is_err());
    }
}
