//! Pretty-printing MiniLang ASTs back to MiniTS or MiniPy source.
//!
//! The mock language model *synthesizes ASTs* and prints them here, so this
//! printer is literally the code-generation backend of the simulated LLM; it
//! is also what renders the empty function skeleton in the Figure 4 prompt.
//! `parse(print(ast))` is the identity on canonical ASTs (see the crate's
//! property tests).

use askit_types::Type;

use crate::ast::{BinOp, Block, Expr, FuncDecl, LValue, Program, Stmt, UnOp};
use crate::builtins;
use crate::value::format_number;

/// Which surface syntax to print (mirrors the paper's TS and Python AskIt
/// implementations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Syntax {
    /// MiniTS — TypeScript-like.
    Ts,
    /// MiniPy — Python-like.
    Py,
}

impl Syntax {
    /// The markdown fence language tag for this syntax (paper §III-D: the
    /// reply is expected in a ```` ```typescript ```` block).
    pub fn fence_tag(self) -> &'static str {
        match self {
            Syntax::Ts => "typescript",
            Syntax::Py => "python",
        }
    }

    /// Display name used in prompts and reports.
    pub fn display_name(self) -> &'static str {
        match self {
            Syntax::Ts => "TypeScript",
            Syntax::Py => "Python",
        }
    }
}

/// Prints a whole program.
pub fn print_program(program: &Program, syntax: Syntax) -> String {
    let mut out = String::new();
    for (i, f) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_function(f, syntax));
    }
    out
}

/// Prints one function declaration.
pub fn print_function(f: &FuncDecl, syntax: Syntax) -> String {
    let mut p = Printer {
        syntax,
        out: String::new(),
        indent: 0,
    };
    p.function(f);
    p.out
}

/// Prints a single expression (mostly for tests and error messages).
pub fn print_expr(e: &Expr, syntax: Syntax) -> String {
    let mut p = Printer {
        syntax,
        out: String::new(),
        indent: 0,
    };
    p.expr(e, 0);
    p.out
}

struct Printer {
    syntax: Syntax,
    out: String,
    indent: usize,
}

impl Printer {
    fn push(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn newline(&mut self) {
        self.out.push('\n');
        let width = match self.syntax {
            Syntax::Ts => 2,
            Syntax::Py => 4,
        };
        for _ in 0..self.indent * width {
            self.out.push(' ');
        }
    }

    fn function(&mut self, f: &FuncDecl) {
        match self.syntax {
            Syntax::Ts => {
                if f.exported {
                    self.push("export ");
                }
                self.push("function ");
                self.push(&f.name);
                self.push("(");
                if !f.params.is_empty() {
                    self.push("{");
                    let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
                    self.push(&names.join(", "));
                    self.push("}: ");
                    let dict = Type::Dict(
                        f.params
                            .iter()
                            .map(|p| (p.name.clone(), p.ty.clone()))
                            .collect(),
                    );
                    self.push(&dict.to_typescript());
                }
                self.push("): ");
                self.push(&f.ret.to_typescript());
                self.push(" {");
                self.indent += 1;
                for line in &f.doc {
                    self.newline();
                    self.push("// ");
                    self.push(line);
                }
                self.block_body(&f.body, false);
                self.indent -= 1;
                self.newline();
                self.push("}");
            }
            Syntax::Py => {
                self.push("def ");
                self.push(&f.name);
                self.push("(");
                let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
                self.push(&names.join(", "));
                self.push("):");
                self.indent += 1;
                for line in &f.doc {
                    self.newline();
                    self.push("# ");
                    self.push(line);
                }
                // Comments are not statements: an empty body always needs
                // `pass`, even under a doc comment (the Figure 4 skeleton).
                self.block_body(&f.body, true);
                self.indent -= 1;
            }
        }
        self.out.push('\n');
    }

    /// Prints the statements of an (already indented) body. For MiniPy an
    /// empty body must still contain `pass` (when `need_pass`).
    fn block_body(&mut self, body: &Block, need_pass: bool) {
        if body.is_empty() {
            if self.syntax == Syntax::Py && need_pass {
                self.newline();
                self.push("pass");
            }
            return;
        }
        for stmt in body {
            self.newline();
            self.stmt(stmt);
        }
    }

    /// Prints a braced block (TS) or an indented suite (Py).
    fn nested_block(&mut self, body: &Block) {
        match self.syntax {
            Syntax::Ts => {
                self.push(" {");
                self.indent += 1;
                self.block_body(body, false);
                self.indent -= 1;
                self.newline();
                self.push("}");
            }
            Syntax::Py => {
                self.push(":");
                self.indent += 1;
                self.block_body(body, true);
                self.indent -= 1;
            }
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let {
                name,
                init,
                mutable,
            } => match self.syntax {
                Syntax::Ts => {
                    self.push(if *mutable { "let " } else { "const " });
                    self.push(name);
                    self.push(" = ");
                    self.expr(init, 0);
                    self.push(";");
                }
                Syntax::Py => {
                    self.push(name);
                    self.push(" = ");
                    self.expr(init, 0);
                }
            },
            Stmt::Assign { target, op, value } => {
                match target {
                    LValue::Var(name) => self.push(name),
                    LValue::Index(base, idx) => {
                        self.expr(base, 9);
                        self.push("[");
                        self.expr(idx, 0);
                        self.push("]");
                    }
                }
                match op {
                    None => self.push(" = "),
                    Some(BinOp::Add) => self.push(" += "),
                    Some(BinOp::Sub) => self.push(" -= "),
                    Some(BinOp::Mul) => self.push(" *= "),
                    Some(BinOp::Div) => self.push(" /= "),
                    Some(other) => {
                        // No compound form: print `x = x <op> v`… conservatively.
                        self.push(" = ");
                        match target {
                            LValue::Var(name) => {
                                let var = Expr::var(name.clone());
                                self.expr(&Expr::bin(*other, var, value.clone()), 0);
                                if self.syntax == Syntax::Ts {
                                    self.push(";");
                                }
                                return;
                            }
                            LValue::Index(..) => self.push("/* unsupported compound op */ "),
                        }
                    }
                }
                self.expr(value, 0);
                if self.syntax == Syntax::Ts {
                    self.push(";");
                }
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                self.if_chain(cond, then_block, else_block, true);
            }
            Stmt::While { cond, body } => {
                match self.syntax {
                    Syntax::Ts => {
                        self.push("while (");
                        self.expr(cond, 0);
                        self.push(")");
                    }
                    Syntax::Py => {
                        self.push("while ");
                        self.expr(cond, 0);
                    }
                }
                self.nested_block(body);
            }
            Stmt::ForRange {
                var,
                start,
                end,
                inclusive,
                body,
            } => {
                match self.syntax {
                    Syntax::Ts => {
                        self.push("for (let ");
                        self.push(var);
                        self.push(" = ");
                        self.expr(start, 0);
                        self.push("; ");
                        self.push(var);
                        self.push(if *inclusive { " <= " } else { " < " });
                        self.expr(end, 0);
                        self.push("; ");
                        self.push(var);
                        self.push("++)");
                    }
                    Syntax::Py => {
                        self.push("for ");
                        self.push(var);
                        self.push(" in range(");
                        self.expr(start, 0);
                        self.push(", ");
                        if *inclusive {
                            // Python ranges are half-open; widen the bound.
                            self.expr(&Expr::bin(BinOp::Add, end.clone(), Expr::Num(1.0)), 5);
                        } else {
                            self.expr(end, 0);
                        }
                        self.push(")");
                    }
                }
                self.nested_block(body);
            }
            Stmt::ForOf { var, iter, body } => {
                match self.syntax {
                    Syntax::Ts => {
                        self.push("for (const ");
                        self.push(var);
                        self.push(" of ");
                        self.expr(iter, 0);
                        self.push(")");
                    }
                    Syntax::Py => {
                        self.push("for ");
                        self.push(var);
                        self.push(" in ");
                        self.expr(iter, 0);
                    }
                }
                self.nested_block(body);
            }
            Stmt::Return(value) => {
                self.push("return");
                if let Some(v) = value {
                    self.push(" ");
                    self.expr(v, 0);
                }
                if self.syntax == Syntax::Ts {
                    self.push(";");
                }
            }
            Stmt::Expr(Expr::Null) if self.syntax == Syntax::Py => {
                self.push("pass");
            }
            Stmt::Expr(e) => {
                self.expr(e, 0);
                if self.syntax == Syntax::Ts {
                    self.push(";");
                }
            }
            Stmt::Break => {
                self.push(if self.syntax == Syntax::Ts {
                    "break;"
                } else {
                    "break"
                });
            }
            Stmt::Continue => {
                self.push(if self.syntax == Syntax::Ts {
                    "continue;"
                } else {
                    "continue"
                });
            }
        }
    }

    fn if_chain(&mut self, cond: &Expr, then_block: &Block, else_block: &Block, head: bool) {
        match self.syntax {
            Syntax::Ts => {
                self.push(if head { "if (" } else { " else if (" });
                self.expr(cond, 0);
                self.push(")");
                self.nested_block(then_block);
                if else_block.is_empty() {
                    return;
                }
                if let [Stmt::If {
                    cond,
                    then_block,
                    else_block,
                }] = else_block.as_slice()
                {
                    self.if_chain(cond, then_block, else_block, false);
                } else {
                    self.push(" else");
                    self.nested_block(else_block);
                }
            }
            Syntax::Py => {
                self.push(if head { "if " } else { "elif " });
                self.expr(cond, 0);
                self.nested_block(then_block);
                if else_block.is_empty() {
                    return;
                }
                if let [Stmt::If {
                    cond,
                    then_block,
                    else_block,
                }] = else_block.as_slice()
                {
                    self.newline();
                    self.if_chain(cond, then_block, else_block, false);
                } else {
                    self.newline();
                    self.push("else");
                    self.nested_block(else_block);
                }
            }
        }
    }

    /// Prints `e`, parenthesizing when its precedence is below `min_prec`.
    fn expr(&mut self, e: &Expr, min_prec: u8) {
        let prec = self.expr_prec(e);
        if prec < min_prec {
            self.push("(");
            self.expr_inner(e);
            self.push(")");
        } else {
            self.expr_inner(e);
        }
    }

    /// The effective precedence of an expression *as printed* in the current
    /// syntax (MiniPy prints some methods as operators).
    fn expr_prec(&self, e: &Expr) -> u8 {
        match e {
            Expr::Cond(..) | Expr::Lambda { .. } => 0,
            Expr::Binary(op, _, _) => op.precedence(),
            // Python's `not` binds looser than comparisons; `!` binds tight.
            Expr::Unary(UnOp::Not, _) if self.syntax == Syntax::Py => 2,
            Expr::Unary(..) => 8,
            Expr::Method { name, .. } if self.syntax == Syntax::Py => match name.as_str() {
                "includes" => 3, // printed as `x in recv`
                "repeat" => 6,   // printed as `recv * n`
                "concat" => 5,   // printed as `recv + other`
                _ => 9,
            },
            Expr::Call { .. } | Expr::Method { .. } | Expr::Prop(..) | Expr::Index(..) => 9,
            _ => 10,
        }
    }

    fn expr_inner(&mut self, e: &Expr) {
        match e {
            Expr::Null => self.push(match self.syntax {
                Syntax::Ts => "null",
                Syntax::Py => "None",
            }),
            Expr::Bool(b) => self.push(match (self.syntax, b) {
                (Syntax::Ts, true) => "true",
                (Syntax::Ts, false) => "false",
                (Syntax::Py, true) => "True",
                (Syntax::Py, false) => "False",
            }),
            Expr::Num(n) => self.push(&format_number(*n)),
            Expr::Str(s) => self.push(&quote_string(s)),
            Expr::Var(name) => self.push(name),
            Expr::Array(items) => {
                self.push("[");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(item, 0);
                }
                self.push("]");
            }
            Expr::Object(fields) => {
                if fields.is_empty() {
                    self.push("{}");
                    return;
                }
                self.push("{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    match self.syntax {
                        Syntax::Ts if is_identifier(k) => self.push(k),
                        _ => self.push(&quote_string(k)),
                    }
                    self.push(": ");
                    self.expr(v, 0);
                }
                self.push("}");
            }
            Expr::Unary(op, inner) => {
                match (self.syntax, op) {
                    (Syntax::Ts, UnOp::Not) => self.push("!"),
                    (Syntax::Py, UnOp::Not) => self.push("not "),
                    (_, UnOp::Neg) => self.push("-"),
                }
                // `-(-x)` must not print as `--x` (which lexes as decrement),
                // so a negation's operand is parenthesized unless it binds
                // tighter than prefix operators.
                let operand_min = match op {
                    UnOp::Neg => 9,
                    UnOp::Not => 8,
                };
                self.expr(inner, operand_min);
            }
            Expr::Binary(op, lhs, rhs) => {
                let prec = op.precedence();
                let (mut lmin, mut rmin) = if op.right_assoc() {
                    (prec + 1, prec)
                } else {
                    (prec, prec + 1)
                };
                if self.syntax == Syntax::Py {
                    // Python's `**` binds tighter than a prefix minus on its
                    // left (`-x ** y` is `-(x ** y)`), so a unary left
                    // operand needs parentheses there.
                    if *op == BinOp::Pow {
                        lmin = 9;
                    }
                    // Python chains comparisons (`a < b < c` is a
                    // conjunction), so comparison operands that are
                    // themselves comparisons must be parenthesized.
                    if matches!(
                        op,
                        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                    ) {
                        lmin = 5;
                        rmin = 5;
                    }
                }
                // Special-case: MiniTS has no `//`; print floor division as
                // Math.floor(a / b).
                if *op == BinOp::FloorDiv && self.syntax == Syntax::Ts {
                    self.push("Math.floor(");
                    self.expr(lhs, BinOp::Div.precedence());
                    self.push(" / ");
                    self.expr(rhs, BinOp::Div.precedence() + 1);
                    self.push(")");
                    return;
                }
                self.expr(lhs, lmin);
                self.push(" ");
                self.push(self.op_symbol(*op));
                self.push(" ");
                self.expr(rhs, rmin);
            }
            Expr::Cond(cond, then_e, else_e) => match self.syntax {
                Syntax::Ts => {
                    self.expr(cond, 1);
                    self.push(" ? ");
                    self.expr(then_e, 1);
                    self.push(" : ");
                    self.expr(else_e, 0);
                }
                Syntax::Py => {
                    self.expr(then_e, 1);
                    self.push(" if ");
                    self.expr(cond, 1);
                    self.push(" else ");
                    self.expr(else_e, 0);
                }
            },
            Expr::Call { callee, args } => self.call(callee, args),
            Expr::Method { recv, name, args } => self.method(recv, name, args),
            Expr::Prop(recv, name) => match (self.syntax, name.as_str()) {
                (Syntax::Ts, "len") => {
                    self.expr(recv, 9);
                    self.push(".length");
                }
                (Syntax::Py, "len") => {
                    self.push("len(");
                    self.expr(recv, 0);
                    self.push(")");
                }
                (Syntax::Ts, field) => {
                    self.expr(recv, 9);
                    self.push(".");
                    self.push(field);
                }
                (Syntax::Py, field) => {
                    self.expr(recv, 9);
                    self.push("[");
                    self.push(&quote_string(field));
                    self.push("]");
                }
            },
            Expr::Index(base, idx) => {
                self.expr(base, 9);
                self.push("[");
                self.expr(idx, 0);
                self.push("]");
            }
            Expr::Lambda { params, body } => match self.syntax {
                Syntax::Ts => {
                    if params.len() == 1 {
                        self.push(&params[0]);
                    } else {
                        self.push("(");
                        self.push(&params.join(", "));
                        self.push(")");
                    }
                    self.push(" => ");
                    self.expr(body, 1);
                }
                Syntax::Py => {
                    self.push("lambda ");
                    self.push(&params.join(", "));
                    self.push(": ");
                    self.expr(body, 1);
                }
            },
        }
    }

    fn op_symbol(&self, op: BinOp) -> &'static str {
        match (op, self.syntax) {
            (BinOp::And, Syntax::Ts) => "&&",
            (BinOp::And, Syntax::Py) => "and",
            (BinOp::Or, Syntax::Ts) => "||",
            (BinOp::Or, Syntax::Py) => "or",
            (BinOp::Eq, Syntax::Ts) => "===",
            (BinOp::Eq, Syntax::Py) => "==",
            (BinOp::Ne, Syntax::Ts) => "!==",
            (BinOp::Ne, Syntax::Py) => "!=",
            (BinOp::Add, _) => "+",
            (BinOp::Sub, _) => "-",
            (BinOp::Mul, _) => "*",
            (BinOp::Div, _) => "/",
            (BinOp::FloorDiv, _) => "//",
            (BinOp::Mod, _) => "%",
            (BinOp::Pow, _) => "**",
            (BinOp::Lt, _) => "<",
            (BinOp::Le, _) => "<=",
            (BinOp::Gt, _) => ">",
            (BinOp::Ge, _) => ">=",
        }
    }

    fn call(&mut self, callee: &str, args: &[Expr]) {
        let surface = match self.syntax {
            Syntax::Ts => builtins::ts_free_surface(callee),
            Syntax::Py => builtins::py_free_surface(callee),
        };
        // `keys`/`values` print as `list(x.keys())` in MiniPy.
        if self.syntax == Syntax::Py && (callee == "keys" || callee == "values") {
            if let [obj] = args {
                self.push("list(");
                self.expr(obj, 9);
                self.push(".");
                self.push(callee);
                self.push("())");
                return;
            }
        }
        self.push(surface.unwrap_or(callee));
        self.push("(");
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.expr(a, 0);
        }
        self.push(")");
    }

    fn method(&mut self, recv: &Expr, name: &str, args: &[Expr]) {
        if self.syntax == Syntax::Py {
            match (name, args) {
                // `xs.includes(x)` prints as `x in xs`. Like the comparison
                // operators, `in` participates in Python's chaining, so both
                // operands print above comparison precedence.
                ("includes", [x]) => {
                    self.expr(x, 5);
                    self.push(" in ");
                    self.expr(recv, 5);
                    return;
                }
                // `xs.join(sep)` prints as `sep.join(xs)`.
                ("join", [sep]) => {
                    self.expr(sep, 9);
                    self.push(".join(");
                    self.expr(recv, 0);
                    self.push(")");
                    return;
                }
                // `s.char_at(i)` prints as `s[i]`.
                ("char_at", [i]) => {
                    self.expr(recv, 9);
                    self.push("[");
                    self.expr(i, 0);
                    self.push("]");
                    return;
                }
                // `s.repeat(n)` prints as `s * n`.
                ("repeat", [n]) => {
                    self.expr(recv, 6);
                    self.push(" * ");
                    self.expr(n, 7);
                    return;
                }
                // `a.concat(b)` prints as `a + b`.
                ("concat", [b]) => {
                    self.expr(recv, 5);
                    self.push(" + ");
                    self.expr(b, 6);
                    return;
                }
                // `s.slice(a, b)` prints as `s[a:b]`.
                ("slice", bounds) if bounds.len() <= 2 => {
                    self.expr(recv, 9);
                    self.push("[");
                    match bounds {
                        [] => self.push(":"),
                        [start] => {
                            self.expr(start, 0);
                            self.push(":");
                        }
                        [start, end] => {
                            self.expr(start, 0);
                            self.push(":");
                            self.expr(end, 0);
                        }
                        _ => unreachable!("guarded above"),
                    }
                    self.push("]");
                    return;
                }
                _ => {}
            }
        }
        let surface = match self.syntax {
            Syntax::Ts => builtins::ts_method_surface(name),
            Syntax::Py => builtins::py_method_surface(name),
        };
        self.expr(recv, 9);
        self.push(".");
        self.push(surface);
        self.push("(");
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.expr(a, 0);
        }
        self.push(")");
    }
}

/// Quotes a string literal with single quotes (both surfaces accept them).
fn quote_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        match c {
            '\'' => out.push_str("\\'"),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('\'');
    out
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser_py::parse_py;
    use crate::parser_ts::parse_ts;
    use askit_types::float;

    fn sample_fn() -> FuncDecl {
        FuncDecl {
            name: "addAll".into(),
            params: vec![
                crate::ast::Param {
                    name: "x".into(),
                    ty: float(),
                },
                crate::ast::Param {
                    name: "ys".into(),
                    ty: askit_types::list(float()),
                },
            ],
            ret: float(),
            body: vec![
                Stmt::Let {
                    name: "total".into(),
                    init: Expr::var("x"),
                    mutable: true,
                },
                Stmt::ForOf {
                    var: "y".into(),
                    iter: Expr::var("ys"),
                    body: vec![Stmt::Assign {
                        target: LValue::Var("total".into()),
                        op: Some(BinOp::Add),
                        value: Expr::var("y"),
                    }],
                },
                Stmt::Return(Some(Expr::var("total"))),
            ],
            exported: true,
            doc: vec!["add 'x' and every element of 'ys'".into()],
        }
    }

    #[test]
    fn ts_rendering_matches_figure_4_style() {
        let text = print_function(&sample_fn(), Syntax::Ts);
        let expected = "export function addAll({x, ys}: { x: number, ys: number[] }): number {\n  // add 'x' and every element of 'ys'\n  let total = x;\n  for (const y of ys) {\n    total += y;\n  }\n  return total;\n}\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn py_rendering() {
        let text = print_function(&sample_fn(), Syntax::Py);
        let expected = "def addAll(x, ys):\n    # add 'x' and every element of 'ys'\n    total = x\n    for y in ys:\n        total += y\n    return total\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn printed_ts_reparses() {
        let mut f = sample_fn();
        f.doc.clear();
        let text = print_function(&f, Syntax::Ts);
        let back = parse_ts(&text).unwrap();
        assert_eq!(back.functions[0], f);
    }

    #[test]
    fn printed_py_reparses() {
        let mut f = sample_fn();
        f.doc.clear();
        // The Python surface erases types; compare modulo types.
        let text = print_function(&f, Syntax::Py);
        let back = parse_py(&text).unwrap();
        assert_eq!(back.functions[0].body, f.body);
        assert_eq!(back.functions[0].name, f.name);
    }

    #[test]
    fn py_surface_idioms() {
        let e = Expr::method(Expr::var("xs"), "includes", vec![Expr::var("x")]);
        assert_eq!(print_expr(&e, Syntax::Py), "x in xs");
        assert_eq!(print_expr(&e, Syntax::Ts), "xs.includes(x)");

        let j = Expr::method(Expr::var("parts"), "join", vec![Expr::str(", ")]);
        assert_eq!(print_expr(&j, Syntax::Py), "', '.join(parts)");
        assert_eq!(print_expr(&j, Syntax::Ts), "parts.join(', ')");

        let s = Expr::method(
            Expr::var("s"),
            "slice",
            vec![Expr::Num(1.0), Expr::Num(3.0)],
        );
        assert_eq!(print_expr(&s, Syntax::Py), "s[1:3]");
        assert_eq!(print_expr(&s, Syntax::Ts), "s.slice(1, 3)");

        let l = Expr::prop(Expr::var("xs"), "len");
        assert_eq!(print_expr(&l, Syntax::Py), "len(xs)");
        assert_eq!(print_expr(&l, Syntax::Ts), "xs.length");
    }

    #[test]
    fn precedence_parenthesization() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")),
            Expr::var("c"),
        );
        assert_eq!(print_expr(&e, Syntax::Ts), "(a + b) * c");
        let f = Expr::bin(
            BinOp::Add,
            Expr::var("a"),
            Expr::bin(BinOp::Add, Expr::var("b"), Expr::var("c")),
        );
        // Left-assoc printing needs parens on the right child.
        assert_eq!(print_expr(&f, Syntax::Ts), "a + (b + c)");
    }

    #[test]
    fn not_in_python_gets_a_space() {
        let e = Expr::Unary(
            UnOp::Not,
            Box::new(Expr::method(
                Expr::var("xs"),
                "includes",
                vec![Expr::var("x")],
            )),
        );
        assert_eq!(print_expr(&e, Syntax::Py), "not (x in xs)");
        assert_eq!(print_expr(&e, Syntax::Ts), "!xs.includes(x)");
    }

    #[test]
    fn floor_div_prints_per_surface() {
        let e = Expr::bin(BinOp::FloorDiv, Expr::var("a"), Expr::var("b"));
        assert_eq!(print_expr(&e, Syntax::Py), "a // b");
        assert_eq!(print_expr(&e, Syntax::Ts), "Math.floor(a / b)");
    }

    #[test]
    fn free_function_surfaces() {
        let e = Expr::call("parse_int", vec![Expr::var("s")]);
        assert_eq!(print_expr(&e, Syntax::Ts), "parseInt(s)");
        assert_eq!(print_expr(&e, Syntax::Py), "int(s)");

        let k = Expr::call("keys", vec![Expr::var("o")]);
        assert_eq!(print_expr(&k, Syntax::Ts), "Object.keys(o)");
        assert_eq!(print_expr(&k, Syntax::Py), "list(o.keys())");
    }

    #[test]
    fn empty_python_body_prints_pass() {
        let f = FuncDecl {
            name: "noop".into(),
            params: vec![],
            ret: askit_types::void(),
            body: vec![],
            exported: false,
            doc: vec![],
        };
        assert_eq!(print_function(&f, Syntax::Py), "def noop():\n    pass\n");
    }

    #[test]
    fn cond_and_lambda_rendering() {
        let e = Expr::Cond(
            Box::new(Expr::bin(BinOp::Gt, Expr::var("x"), Expr::Num(0.0))),
            Box::new(Expr::str("pos")),
            Box::new(Expr::str("neg")),
        );
        assert_eq!(print_expr(&e, Syntax::Ts), "x > 0 ? 'pos' : 'neg'");
        assert_eq!(print_expr(&e, Syntax::Py), "'pos' if x > 0 else 'neg'");

        let l = Expr::Lambda {
            params: vec!["a".into(), "b".into()],
            body: Box::new(Expr::bin(BinOp::Sub, Expr::var("a"), Expr::var("b"))),
        };
        assert_eq!(print_expr(&l, Syntax::Ts), "(a, b) => a - b");
        assert_eq!(print_expr(&l, Syntax::Py), "lambda a, b: a - b");
    }
}
