//! Lexer for the MiniPy (Python-like) surface syntax.
//!
//! On top of ordinary tokenization this lexer implements Python's layout
//! rules: [`Tok::Newline`] ends each logical line, [`Tok::Indent`] /
//! [`Tok::Dedent`] bracket nested suites, blank and comment-only lines are
//! invisible, and newlines inside `()`, `[]`, `{}` are implicit line joins.

use crate::token::{SyntaxError, Tok, Token};

/// Tokenizes MiniPy source.
///
/// # Errors
///
/// Returns a [`SyntaxError`] on bad indentation, unterminated strings, or
/// stray bytes.
pub fn lex_py(source: &str) -> Result<Vec<Token>, SyntaxError> {
    let mut lx = PyLexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        indents: vec![0],
        bracket_depth: 0,
        at_line_start: true,
        out: Vec::new(),
    };
    lx.run()?;
    Ok(lx.out)
}

struct PyLexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    indents: Vec<usize>,
    bracket_depth: usize,
    at_line_start: bool,
    out: Vec<Token>,
}

impl PyLexer {
    fn run(&mut self) -> Result<(), SyntaxError> {
        loop {
            if self.at_line_start && self.bracket_depth == 0 && !self.handle_indentation()? {
                break; // EOF reached
            }
            self.skip_inline_space();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                self.finish_at_eof(line, col);
                break;
            };
            match c {
                '\n' => {
                    self.bump();
                    if self.bracket_depth == 0 {
                        self.push(Tok::Newline, line, col);
                        self.at_line_start = true;
                    }
                }
                '#' => {
                    while let Some(ch) = self.peek() {
                        if ch == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '(' => self.single(Tok::LParen, 1),
                ')' => self.single(Tok::RParen, usize::MAX),
                '[' => self.single(Tok::LBracket, 1),
                ']' => self.single(Tok::RBracket, usize::MAX),
                '{' => self.single(Tok::LBrace, 1),
                '}' => self.single(Tok::RBrace, usize::MAX),
                ',' => self.single(Tok::Comma, 0),
                ':' => self.single(Tok::Colon, 0),
                ';' => self.single(Tok::Semi, 0),
                '.' => self.single(Tok::Dot, 0),
                '%' => self.single(Tok::Percent, 0),
                '|' => self.single(Tok::Pipe, 0),
                '+' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::PlusAssign, line, col);
                    } else {
                        self.push(Tok::Plus, line, col);
                    }
                }
                '-' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            self.push(Tok::MinusAssign, line, col);
                        }
                        Some('>') => {
                            self.bump();
                            self.push(Tok::ThinArrow, line, col);
                        }
                        _ => self.push(Tok::Minus, line, col),
                    }
                }
                '*' => {
                    self.bump();
                    match self.peek() {
                        Some('*') => {
                            self.bump();
                            self.push(Tok::StarStar, line, col);
                        }
                        Some('=') => {
                            self.bump();
                            self.push(Tok::StarAssign, line, col);
                        }
                        _ => self.push(Tok::Star, line, col),
                    }
                }
                '/' => {
                    self.bump();
                    match self.peek() {
                        Some('/') => {
                            self.bump();
                            self.push(Tok::SlashSlash, line, col);
                        }
                        Some('=') => {
                            self.bump();
                            self.push(Tok::SlashAssign, line, col);
                        }
                        _ => self.push(Tok::Slash, line, col),
                    }
                }
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::EqEq, line, col);
                    } else {
                        self.push(Tok::Assign, line, col);
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::NotEq, line, col);
                    } else {
                        return Err(SyntaxError::new("unexpected '!'", line, col));
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::Le, line, col);
                    } else {
                        self.push(Tok::Lt, line, col);
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::Ge, line, col);
                    } else {
                        self.push(Tok::Gt, line, col);
                    }
                }
                '\'' | '"' => {
                    let tok = self.string(c)?;
                    self.push(tok, line, col);
                }
                d if d.is_ascii_digit() => {
                    let tok = self.number()?;
                    self.push(tok, line, col);
                }
                a if a.is_ascii_alphabetic() || a == '_' => {
                    let tok = self.ident();
                    self.push(tok, line, col);
                }
                other => {
                    return Err(SyntaxError::new(
                        format!("unexpected character '{other}'"),
                        line,
                        col,
                    ))
                }
            }
        }
        Ok(())
    }

    /// Measures the indentation of the next non-blank, non-comment line and
    /// emits Indent/Dedent tokens. Returns `false` at end of input.
    fn handle_indentation(&mut self) -> Result<bool, SyntaxError> {
        loop {
            let mut width = 0;
            let start_line = self.line;
            loop {
                match self.peek() {
                    Some(' ') => {
                        width += 1;
                        self.bump();
                    }
                    Some('\t') => {
                        width += 4;
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                None => {
                    let (line, col) = (self.line, self.col);
                    self.finish_at_eof(line, col);
                    return Ok(false);
                }
                Some('\n') => {
                    self.bump(); // blank line: invisible
                    continue;
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                Some(_) => {
                    let current = *self.indents.last().expect("indent stack non-empty");
                    if width > current {
                        self.indents.push(width);
                        self.push(Tok::Indent, start_line, 1);
                    } else if width < current {
                        while *self.indents.last().expect("non-empty") > width {
                            self.indents.pop();
                            self.push(Tok::Dedent, start_line, 1);
                        }
                        if *self.indents.last().expect("non-empty") != width {
                            return Err(SyntaxError::new("inconsistent dedent", start_line, 1));
                        }
                    }
                    self.at_line_start = false;
                    return Ok(true);
                }
            }
        }
    }

    fn finish_at_eof(&mut self, line: usize, col: usize) {
        // Close the last logical line and any open suites.
        if matches!(
            self.out.last().map(|t| &t.tok),
            Some(Tok::Newline) | Some(Tok::Dedent) | None
        ) {
            // already terminated
        } else {
            self.push(Tok::Newline, line, col);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.push(Tok::Dedent, line, col);
        }
        self.push(Tok::Eof, line, col);
    }

    fn single(&mut self, tok: Tok, depth_delta: usize) {
        let (line, col) = (self.line, self.col);
        self.bump();
        match depth_delta {
            1 => self.bracket_depth += 1,
            usize::MAX => self.bracket_depth = self.bracket_depth.saturating_sub(1),
            _ => {}
        }
        self.push(tok, line, col);
    }

    fn push(&mut self, tok: Tok, line: usize, col: usize) {
        self.out.push(Token::new(tok, line, col));
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_inline_space(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r')) {
            self.bump();
        }
        // Backslash line continuation.
        if self.peek() == Some('\\') && self.chars.get(self.pos + 1) == Some(&'\n') {
            self.bump();
            self.bump();
            self.skip_inline_space();
        }
    }

    fn string(&mut self, quote: char) -> Result<Tok, SyntaxError> {
        let (line, col) = (self.line, self.col);
        self.bump();
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(SyntaxError::new("unterminated string", line, col)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('0') => s.push('\0'),
                    Some(c @ ('\'' | '"' | '\\')) => s.push(c),
                    Some(other) => {
                        return Err(SyntaxError::new(
                            format!("invalid escape '\\{other}'"),
                            self.line,
                            self.col,
                        ))
                    }
                    None => return Err(SyntaxError::new("unterminated string", line, col)),
                },
                Some(c) if c == quote => return Ok(Tok::Str(s)),
                Some('\n') => return Err(SyntaxError::new("newline in string", line, col)),
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Tok, SyntaxError> {
        let (line, col) = (self.line, self.col);
        let mut text = String::new();
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            text.push(self.bump().expect("digit"));
        }
        if self.peek() == Some('.')
            && matches!(self.chars.get(self.pos + 1), Some(c) if c.is_ascii_digit())
        {
            text.push(self.bump().expect("dot"));
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                text.push(self.bump().expect("digit"));
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            text.push(self.bump().expect("e"));
            if matches!(self.peek(), Some('+' | '-')) {
                text.push(self.bump().expect("sign"));
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(SyntaxError::new(
                    "missing exponent digits",
                    self.line,
                    self.col,
                ));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                text.push(self.bump().expect("digit"));
            }
        }
        text.parse::<f64>()
            .map(Tok::Num)
            .map_err(|_| SyntaxError::new("invalid number", line, col))
    }

    fn ident(&mut self) -> Tok {
        let mut s = String::new();
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            s.push(self.bump().expect("ident char"));
        }
        Tok::Ident(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex_py(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn indentation_brackets_suites() {
        let src = "def f(x):\n    return x\n";
        assert_eq!(
            toks(src),
            vec![
                Tok::Ident("def".into()),
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::Colon,
                Tok::Newline,
                Tok::Indent,
                Tok::Ident("return".into()),
                Tok::Ident("x".into()),
                Tok::Newline,
                Tok::Dedent,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn nested_dedents_unwind() {
        let src = "def f():\n    if x:\n        y = 1\n    return y\n";
        let ts = toks(src);
        let dedents = ts.iter().filter(|t| **t == Tok::Dedent).count();
        let indents = ts.iter().filter(|t| **t == Tok::Indent).count();
        assert_eq!(indents, 2);
        assert_eq!(dedents, 2);
    }

    #[test]
    fn blank_and_comment_lines_are_invisible() {
        let src = "def f():\n\n    # comment\n    return 1\n";
        let ts = toks(src);
        assert_eq!(ts.iter().filter(|t| **t == Tok::Indent).count(), 1);
        assert_eq!(ts.iter().filter(|t| **t == Tok::Newline).count(), 2);
    }

    #[test]
    fn brackets_join_lines() {
        let src = "x = [1,\n     2]\n";
        let ts = toks(src);
        // Only one Newline: the bracketed line-break is invisible.
        assert_eq!(ts.iter().filter(|t| **t == Tok::Newline).count(), 1);
    }

    #[test]
    fn eof_without_trailing_newline_still_closes() {
        let ts = toks("def f():\n    return 1");
        assert_eq!(ts.last().cloned(), Some(Tok::Eof));
        assert!(ts.contains(&Tok::Dedent));
        // Newline was synthesized before the dedent.
        let newline_idx = ts.iter().rposition(|t| *t == Tok::Newline).unwrap();
        let dedent_idx = ts.iter().position(|t| *t == Tok::Dedent).unwrap();
        assert!(newline_idx < dedent_idx);
    }

    #[test]
    fn python_operators() {
        assert_eq!(
            toks("a // b ** c -> d != e\n"),
            vec![
                Tok::Ident("a".into()),
                Tok::SlashSlash,
                Tok::Ident("b".into()),
                Tok::StarStar,
                Tok::Ident("c".into()),
                Tok::ThinArrow,
                Tok::Ident("d".into()),
                Tok::NotEq,
                Tok::Ident("e".into()),
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn inconsistent_dedent_is_an_error() {
        let src = "def f():\n        x = 1\n    y = 2\n";
        assert!(lex_py(src).is_err());
    }

    #[test]
    fn backslash_continuation() {
        let ts = toks("x = 1 + \\\n    2\n");
        assert_eq!(ts.iter().filter(|t| **t == Tok::Newline).count(), 1);
        assert!(!ts.contains(&Tok::Indent));
    }
}
