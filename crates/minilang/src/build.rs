//! Fluent AST construction helpers.
//!
//! The mock model's code synthesizer and the dataset reference solutions
//! build MiniLang ASTs programmatically; these helpers keep that code
//! readable. Everything here is a thin constructor around [`crate::ast`].

use askit_types::Type;

use crate::ast::{BinOp, Block, Expr, FuncDecl, LValue, Param, Program, Stmt, UnOp};

/// Builds a function declaration.
pub fn func(
    name: impl Into<String>,
    params: impl IntoIterator<Item = (&'static str, Type)>,
    ret: Type,
    body: Block,
) -> FuncDecl {
    FuncDecl {
        name: name.into(),
        params: params
            .into_iter()
            .map(|(n, ty)| Param {
                name: n.to_owned(),
                ty,
            })
            .collect(),
        ret,
        body,
        exported: true,
        doc: vec![],
    }
}

/// Wraps a single function into a [`Program`].
pub fn program(f: FuncDecl) -> Program {
    Program { functions: vec![f] }
}

/// `let name = init;`
pub fn let_(name: impl Into<String>, init: Expr) -> Stmt {
    Stmt::Let {
        name: name.into(),
        init,
        mutable: true,
    }
}

/// `const name = init;`
pub fn const_(name: impl Into<String>, init: Expr) -> Stmt {
    Stmt::Let {
        name: name.into(),
        init,
        mutable: false,
    }
}

/// `name = value;`
pub fn assign(name: impl Into<String>, value: Expr) -> Stmt {
    Stmt::Assign {
        target: LValue::Var(name.into()),
        op: None,
        value,
    }
}

/// `name <op>= value;`
pub fn assign_op(name: impl Into<String>, op: BinOp, value: Expr) -> Stmt {
    Stmt::Assign {
        target: LValue::Var(name.into()),
        op: Some(op),
        value,
    }
}

/// `base[idx] = value;`
pub fn assign_index(base: Expr, idx: Expr, value: Expr) -> Stmt {
    Stmt::Assign {
        target: LValue::Index(Box::new(base), Box::new(idx)),
        op: None,
        value,
    }
}

/// `return value;`
pub fn ret(value: Expr) -> Stmt {
    Stmt::Return(Some(value))
}

/// `return;`
pub fn ret_void() -> Stmt {
    Stmt::Return(None)
}

/// `if cond { then_block }`
pub fn if_(cond: Expr, then_block: Block) -> Stmt {
    Stmt::If {
        cond,
        then_block,
        else_block: vec![],
    }
}

/// `if cond { then_block } else { else_block }`
pub fn if_else(cond: Expr, then_block: Block, else_block: Block) -> Stmt {
    Stmt::If {
        cond,
        then_block,
        else_block,
    }
}

/// `while cond { body }`
pub fn while_(cond: Expr, body: Block) -> Stmt {
    Stmt::While { cond, body }
}

/// `for (let var = start; var < end; var++) { body }`
pub fn for_range(var: impl Into<String>, start: Expr, end: Expr, body: Block) -> Stmt {
    Stmt::ForRange {
        var: var.into(),
        start,
        end,
        inclusive: false,
        body,
    }
}

/// `for (let var = start; var <= end; var++) { body }`
pub fn for_range_incl(var: impl Into<String>, start: Expr, end: Expr, body: Block) -> Stmt {
    Stmt::ForRange {
        var: var.into(),
        start,
        end,
        inclusive: true,
        body,
    }
}

/// `for (const var of iter) { body }`
pub fn for_of(var: impl Into<String>, iter: Expr, body: Block) -> Stmt {
    Stmt::ForOf {
        var: var.into(),
        iter,
        body,
    }
}

/// An expression statement.
pub fn expr_stmt(e: Expr) -> Stmt {
    Stmt::Expr(e)
}

/// Numeric literal.
pub fn num(n: f64) -> Expr {
    Expr::Num(n)
}

/// Variable reference (re-export of [`Expr::var`] for symmetry).
pub fn var(name: impl Into<String>) -> Expr {
    Expr::var(name)
}

/// String literal.
pub fn s(text: impl Into<String>) -> Expr {
    Expr::str(text)
}

/// `a + b`
pub fn add(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Add, a, b)
}

/// `a - b`
pub fn sub(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Sub, a, b)
}

/// `a * b`
pub fn mul(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Mul, a, b)
}

/// `a / b`
pub fn div(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Div, a, b)
}

/// `a % b`
pub fn modulo(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Mod, a, b)
}

/// `a == b`
pub fn eq(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Eq, a, b)
}

/// `a != b`
pub fn ne(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Ne, a, b)
}

/// `a < b`
pub fn lt(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Lt, a, b)
}

/// `a <= b`
pub fn le(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Le, a, b)
}

/// `a > b`
pub fn gt(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Gt, a, b)
}

/// `a >= b`
pub fn ge(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Ge, a, b)
}

/// `a && b`
pub fn and(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::And, a, b)
}

/// `a || b`
pub fn or(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Or, a, b)
}

/// `!a`
pub fn not(a: Expr) -> Expr {
    Expr::Unary(UnOp::Not, Box::new(a))
}

/// `-a`
pub fn neg(a: Expr) -> Expr {
    Expr::Unary(UnOp::Neg, Box::new(a))
}

/// `cond ? a : b`
pub fn cond(c: Expr, a: Expr, b: Expr) -> Expr {
    Expr::Cond(Box::new(c), Box::new(a), Box::new(b))
}

/// `x.length` / `len(x)`
pub fn len(x: Expr) -> Expr {
    Expr::prop(x, "len")
}

/// A one-parameter lambda.
pub fn lambda1(p: &str, body: Expr) -> Expr {
    Expr::Lambda {
        params: vec![p.to_owned()],
        body: Box::new(body),
    }
}

/// A two-parameter lambda.
pub fn lambda2(p1: &str, p2: &str, body: Expr) -> Expr {
    Expr::Lambda {
        params: vec![p1.to_owned(), p2.to_owned()],
        body: Box::new(body),
    }
}

/// An array literal.
pub fn array(items: Vec<Expr>) -> Expr {
    Expr::Array(items)
}

/// An object literal.
pub fn object(fields: Vec<(&str, Expr)>) -> Expr {
    Expr::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Lifts a JSON value into a literal expression (used when the mock model
/// "hallucinates" a default return value for an unknown task).
pub fn expr_of_json(value: &askit_json::Json) -> Expr {
    use askit_json::Json;
    match value {
        Json::Null => Expr::Null,
        Json::Bool(b) => Expr::Bool(*b),
        Json::Int(i) => Expr::Num(*i as f64),
        Json::Float(f) => Expr::Num(*f),
        Json::Str(s) => Expr::Str(s.clone()),
        Json::Array(items) => Expr::Array(items.iter().map(expr_of_json).collect()),
        Json::Object(map) => Expr::Object(
            map.iter()
                .map(|(k, v)| (k.to_owned(), expr_of_json(v)))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::pretty::{print_function, Syntax};
    use askit_json::{Json, Map};
    use askit_types::{float, int, list};

    /// Build factorial with the helpers, print it, run it.
    #[test]
    fn build_print_run_factorial() {
        let f = func(
            "calculateFactorial",
            [("n", int())],
            int(),
            vec![
                let_("acc", num(1.0)),
                for_range_incl(
                    "i",
                    num(2.0),
                    var("n"),
                    vec![assign_op("acc", BinOp::Mul, var("i"))],
                ),
                ret(var("acc")),
            ],
        );
        let ts = print_function(&f, Syntax::Ts);
        assert!(ts.contains("for (let i = 2; i <= n; i++)"), "{ts}");
        let py = print_function(&f, Syntax::Py);
        assert!(py.contains("for i in range(2, n + 1):"), "{py}");

        let p = program(f);
        let mut args = Map::new();
        args.insert("n", Json::Int(5));
        let out = Interp::new(&p)
            .call_json("calculateFactorial", &args)
            .unwrap();
        assert_eq!(out, Json::Int(120));
    }

    #[test]
    fn build_sum_with_for_of() {
        let f = func(
            "sumAll",
            [("ns", list(float()))],
            float(),
            vec![
                let_("total", num(0.0)),
                for_of(
                    "v",
                    var("ns"),
                    vec![assign_op("total", BinOp::Add, var("v"))],
                ),
                ret(var("total")),
            ],
        );
        let p = program(f);
        let mut args = Map::new();
        args.insert("ns", Json::parse("[1, 2, 3.5]").unwrap());
        let out = Interp::new(&p).call_json("sumAll", &args).unwrap();
        assert_eq!(out, Json::Float(6.5));
    }
}
