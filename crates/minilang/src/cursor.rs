//! A token cursor shared by the MiniTS and MiniPy parsers.

use crate::token::{SyntaxError, Tok, Token};

/// A peekable cursor over a token stream.
#[derive(Debug)]
pub struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
}

impl Cursor {
    /// Wraps a token stream (must end with [`Tok::Eof`]).
    pub fn new(tokens: Vec<Token>) -> Self {
        debug_assert!(matches!(tokens.last().map(|t| &t.tok), Some(Tok::Eof)));
        Cursor { tokens, pos: 0 }
    }

    /// The current token (never past `Eof`).
    pub fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    /// The token `n` ahead of the current one.
    pub fn peek_at(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    /// Current position (for lookahead save/restore).
    pub fn mark(&self) -> usize {
        self.pos
    }

    /// Restores a position saved by [`Cursor::mark`].
    pub fn reset(&mut self, mark: usize) {
        self.pos = mark;
    }

    /// Consumes and returns the current token.
    pub fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// Consumes the current token if it equals `tok`.
    pub fn eat(&mut self, tok: &Tok) -> bool {
        if &self.peek().tok == tok {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Consumes the current token if it is the identifier `word`.
    pub fn eat_kw(&mut self, word: &str) -> bool {
        if self.at_kw(word) {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Whether the current token is the identifier `word`.
    pub fn at_kw(&self, word: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == word)
    }

    /// Consumes `tok` or errors.
    pub fn expect(&mut self, tok: &Tok) -> Result<Token, SyntaxError> {
        if &self.peek().tok == tok {
            Ok(self.advance())
        } else {
            Err(SyntaxError::at(
                format!("expected {tok}, found {}", self.peek().tok),
                self.peek(),
            ))
        }
    }

    /// Consumes the identifier `word` or errors.
    pub fn expect_kw(&mut self, word: &str) -> Result<(), SyntaxError> {
        if self.eat_kw(word) {
            Ok(())
        } else {
            Err(SyntaxError::at(
                format!("expected '{word}', found {}", self.peek().tok),
                self.peek(),
            ))
        }
    }

    /// Consumes any identifier and returns its text.
    pub fn expect_ident(&mut self) -> Result<String, SyntaxError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(SyntaxError::at(
                format!("expected identifier, found {other}"),
                self.peek(),
            )),
        }
    }

    /// Builds an error at the current token.
    pub fn error(&self, message: impl Into<String>) -> SyntaxError {
        SyntaxError::at(message, self.peek())
    }

    /// Whether the cursor is at end of input.
    pub fn at_eof(&self) -> bool {
        matches!(self.peek().tok, Tok::Eof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cur(toks: Vec<Tok>) -> Cursor {
        let mut tokens: Vec<Token> = toks
            .into_iter()
            .enumerate()
            .map(|(i, t)| Token::new(t, 1, i + 1))
            .collect();
        tokens.push(Token::new(Tok::Eof, 1, 99));
        Cursor::new(tokens)
    }

    #[test]
    fn peek_never_walks_past_eof() {
        let mut c = cur(vec![Tok::Comma]);
        assert_eq!(c.advance().tok, Tok::Comma);
        assert_eq!(c.advance().tok, Tok::Eof);
        assert_eq!(c.advance().tok, Tok::Eof);
        assert!(c.at_eof());
    }

    #[test]
    fn eat_and_expect() {
        let mut c = cur(vec![
            Tok::Ident("let".into()),
            Tok::Ident("x".into()),
            Tok::Assign,
        ]);
        assert!(c.eat_kw("let"));
        assert_eq!(c.expect_ident().unwrap(), "x");
        assert!(c.expect(&Tok::Assign).is_ok());
        assert!(c.expect(&Tok::Comma).is_err());
    }

    #[test]
    fn mark_reset_backtracks() {
        let mut c = cur(vec![Tok::LParen, Tok::Ident("x".into()), Tok::RParen]);
        let m = c.mark();
        c.advance();
        c.advance();
        c.reset(m);
        assert_eq!(c.peek().tok, Tok::LParen);
    }
}
