//! Best-effort static checking of MiniLang functions.
//!
//! The paper's Step 3 validation is "a syntactic check and a semantic check
//! using execution with test examples" (§III-D). Parsing already gives the
//! syntactic check; this module adds a conservative static pass that catches
//! the kinds of nonsense code a confused model emits — unbound variables,
//! unknown callees, obviously mistyped returns — *without* rejecting code it
//! cannot understand (anything uncertain types as `any`).

use std::collections::HashMap;
use std::fmt;

use askit_types::Type;

use crate::ast::{Block, Expr, FuncDecl, LValue, Program, Stmt};

/// A finding from the static checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Function in which the problem occurs.
    pub function: String,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in '{}': {}", self.function, self.message)
    }
}

/// Canonical free builtins the interpreter provides.
const FREE_BUILTINS: &[&str] = &[
    "abs",
    "floor",
    "ceil",
    "round",
    "sqrt",
    "trunc",
    "pow",
    "min",
    "max",
    "sum",
    "len",
    "sorted",
    "range",
    "list",
    "keys",
    "values",
    "to_string",
    "to_int",
    "to_float",
    "to_bool",
    "parse_int",
    "parse_float",
    "json_stringify",
    "json_parse",
    "print",
];

/// Canonical method names the interpreter provides.
const METHODS: &[&str] = &[
    "to_upper",
    "to_lower",
    "trim",
    "split",
    "includes",
    "index_of",
    "char_at",
    "slice",
    "repeat",
    "replace",
    "starts_with",
    "ends_with",
    "pad_start",
    "pad_end",
    "count",
    "push",
    "pop",
    "join",
    "reverse",
    "sort",
    "concat",
    "map",
    "filter",
    "reduce",
    "every",
    "some",
    "get",
    "has",
    "keys",
    "values",
    "to_fixed",
    "to_string",
];

/// Checks every function of a program. Empty result = no findings.
pub fn check_program(program: &Program) -> Vec<CheckError> {
    let mut errors = Vec::new();
    for f in &program.functions {
        check_function(program, f, &mut errors);
    }
    errors
}

fn check_function(program: &Program, f: &FuncDecl, errors: &mut Vec<CheckError>) {
    let mut cx = Cx {
        program,
        function: f.name.clone(),
        scopes: vec![f
            .params
            .iter()
            .map(|p| (p.name.clone(), p.ty.clone()))
            .collect()],
        errors,
        saw_return_value: false,
        ret: f.ret.clone(),
    };
    cx.block(&f.body);
    // A non-void function whose body never returns a value is suspicious.
    if !matches!(f.ret, Type::Void | Type::Any) && !cx.saw_return_value {
        cx.errors.push(CheckError {
            function: f.name.clone(),
            message: format!("declared to return {} but never returns a value", f.ret),
        });
    }
}

struct Cx<'a> {
    program: &'a Program,
    function: String,
    scopes: Vec<HashMap<String, Type>>,
    errors: &'a mut Vec<CheckError>,
    saw_return_value: bool,
    ret: Type,
}

impl Cx<'_> {
    fn error(&mut self, message: impl Into<String>) {
        self.errors.push(CheckError {
            function: self.function.clone(),
            message: message.into(),
        });
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn block(&mut self, block: &Block) {
        self.scopes.push(HashMap::new());
        for stmt in block {
            self.stmt(stmt);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let { name, init, .. } => {
                let ty = self.expr(init);
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), ty);
            }
            Stmt::Assign { target, value, .. } => {
                self.expr(value);
                match target {
                    LValue::Var(name) => {
                        if self.lookup(name).is_none() {
                            self.error(format!("assignment to undeclared variable '{name}'"));
                        }
                    }
                    LValue::Index(base, idx) => {
                        self.expr(base);
                        self.expr(idx);
                    }
                }
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                self.require_bool(cond, "if condition");
                self.block(then_block);
                self.block(else_block);
            }
            Stmt::While { cond, body } => {
                self.require_bool(cond, "while condition");
                self.block(body);
            }
            Stmt::ForRange {
                var,
                start,
                end,
                body,
                ..
            } => {
                self.require_num(start, "loop start");
                self.require_num(end, "loop end");
                self.scopes.push(HashMap::from([(var.clone(), Type::Int)]));
                for s in body {
                    self.stmt(s);
                }
                self.scopes.pop();
            }
            Stmt::ForOf { var, iter, body } => {
                let iter_ty = self.expr(iter);
                let elem = match iter_ty {
                    Type::List(t) => *t,
                    Type::Str => Type::Str,
                    Type::Any | Type::Dict(_) | Type::Union(_) => Type::Any,
                    other => {
                        self.error(format!("cannot iterate over {other}"));
                        Type::Any
                    }
                };
                self.scopes.push(HashMap::from([(var.clone(), elem)]));
                for s in body {
                    self.stmt(s);
                }
                self.scopes.pop();
            }
            Stmt::Return(value) => {
                if let Some(v) = value {
                    let ty = self.expr(v);
                    self.saw_return_value = true;
                    let declared = self.ret.clone();
                    if !compatible(&declared, &ty) {
                        self.error(format!("returns {ty} but is declared to return {declared}"));
                    }
                } else if !matches!(self.ret, Type::Void | Type::Any) {
                    self.error("bare return in a function that must return a value".to_owned());
                }
            }
            Stmt::Expr(e) => {
                self.expr(e);
            }
            Stmt::Break | Stmt::Continue => {}
        }
    }

    fn require_bool(&mut self, e: &Expr, what: &str) {
        let ty = self.expr(e);
        if !matches!(ty, Type::Bool | Type::Any) {
            self.error(format!("{what} must be boolean, found {ty}"));
        }
    }

    fn require_num(&mut self, e: &Expr, what: &str) {
        let ty = self.expr(e);
        if !matches!(ty, Type::Int | Type::Float | Type::Any) {
            self.error(format!("{what} must be a number, found {ty}"));
        }
    }

    /// Infers an approximate type; `Any` means "unknown, don't complain".
    fn expr(&mut self, e: &Expr) -> Type {
        use crate::ast::BinOp::*;
        match e {
            Expr::Null => Type::Void,
            Expr::Bool(_) => Type::Bool,
            Expr::Num(n) => {
                if n.fract() == 0.0 {
                    Type::Int
                } else {
                    Type::Float
                }
            }
            Expr::Str(_) => Type::Str,
            Expr::Var(name) => match self.lookup(name) {
                Some(t) => t.clone(),
                None => {
                    self.error(format!("undefined variable '{name}'"));
                    Type::Any
                }
            },
            Expr::Array(items) => {
                let mut elem: Option<Type> = None;
                for item in items {
                    let t = self.expr(item);
                    elem = Some(match elem {
                        None => t,
                        Some(prev) if compatible(&prev, &t) => prev,
                        Some(_) => Type::Any,
                    });
                }
                Type::List(Box::new(elem.unwrap_or(Type::Any)))
            }
            Expr::Object(fields) => Type::Dict(
                fields
                    .iter()
                    .map(|(k, v)| (k.clone(), self.expr(v)))
                    .collect(),
            ),
            Expr::Unary(op, inner) => {
                let t = self.expr(inner);
                match op {
                    crate::ast::UnOp::Neg => {
                        if !matches!(t, Type::Int | Type::Float | Type::Any) {
                            self.error(format!("cannot negate {t}"));
                        }
                        t
                    }
                    crate::ast::UnOp::Not => {
                        if !matches!(t, Type::Bool | Type::Any) {
                            self.error(format!("'not' needs a boolean, found {t}"));
                        }
                        Type::Bool
                    }
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                match op {
                    Add => {
                        if matches!(l, Type::Str) || matches!(r, Type::Str) {
                            Type::Str
                        } else if is_numeric(&l) && is_numeric(&r) {
                            numeric_join(&l, &r)
                        } else if matches!(l, Type::List(_)) && matches!(r, Type::List(_)) {
                            l
                        } else if matches!(l, Type::Any) || matches!(r, Type::Any) {
                            Type::Any
                        } else {
                            self.error(format!("'+' not defined for {l} and {r}"));
                            Type::Any
                        }
                    }
                    Sub | Mul | Div | FloorDiv | Mod | Pow => {
                        if (is_numeric(&l) || matches!(l, Type::Any))
                            && (is_numeric(&r) || matches!(r, Type::Any))
                        {
                            match op {
                                Div | Pow => Type::Float,
                                _ => numeric_join(&l, &r),
                            }
                        } else if *op == Mul
                            && (matches!(l, Type::Str) && is_numeric(&r)
                                || matches!(r, Type::Str) && is_numeric(&l))
                        {
                            Type::Str
                        } else {
                            self.error(format!("arithmetic on {l} and {r}"));
                            Type::Any
                        }
                    }
                    Eq | Ne => Type::Bool,
                    Lt | Le | Gt | Ge => {
                        let comparable =
                            |t: &Type| matches!(t, Type::Int | Type::Float | Type::Str | Type::Any);
                        if !comparable(&l) || !comparable(&r) {
                            self.error(format!("cannot order {l} and {r}"));
                        }
                        Type::Bool
                    }
                    And | Or => {
                        if !matches!(l, Type::Bool | Type::Any)
                            || !matches!(r, Type::Bool | Type::Any)
                        {
                            self.error("logical operator on non-boolean".to_owned());
                        }
                        Type::Bool
                    }
                }
            }
            Expr::Cond(cond, a, b) => {
                self.require_bool(cond, "conditional");
                let ta = self.expr(a);
                let tb = self.expr(b);
                if compatible(&ta, &tb) {
                    ta
                } else {
                    Type::Any
                }
            }
            Expr::Call { callee, args } => {
                for a in args {
                    self.expr(a);
                }
                if FREE_BUILTINS.contains(&callee.as_str()) {
                    return builtin_return_type(callee);
                }
                if let Some(f) = self.program.function(callee) {
                    if f.params.len() != args.len() {
                        self.error(format!(
                            "'{callee}' expects {} argument(s), got {}",
                            f.params.len(),
                            args.len()
                        ));
                    }
                    return f.ret.clone();
                }
                if self.lookup(callee).is_some() {
                    return Type::Any; // calling a local closure
                }
                self.error(format!("call to unknown function '{callee}'"));
                Type::Any
            }
            Expr::Method { recv, name, args } => {
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
                if !METHODS.contains(&name.as_str()) {
                    self.error(format!("unknown method '{name}'"));
                }
                method_return_type(name)
            }
            Expr::Prop(recv, name) => {
                let t = self.expr(recv);
                if name == "len" {
                    if !matches!(t, Type::Str | Type::List(_) | Type::Dict(_) | Type::Any) {
                        self.error(format!("{t} has no length"));
                    }
                    return Type::Int;
                }
                match t {
                    Type::Dict(fields) => fields
                        .iter()
                        .find(|(k, _)| k == name)
                        .map(|(_, v)| v.clone())
                        .unwrap_or(Type::Any),
                    _ => Type::Any,
                }
            }
            Expr::Index(base, idx) => {
                let bt = self.expr(base);
                self.expr(idx);
                match bt {
                    Type::List(t) => *t,
                    Type::Str => Type::Str,
                    _ => Type::Any,
                }
            }
            Expr::Lambda { params, body } => {
                self.scopes
                    .push(params.iter().map(|p| (p.clone(), Type::Any)).collect());
                self.expr(body);
                self.scopes.pop();
                Type::Any
            }
        }
    }
}

fn is_numeric(t: &Type) -> bool {
    matches!(t, Type::Int | Type::Float)
}

fn numeric_join(l: &Type, r: &Type) -> Type {
    if matches!(l, Type::Float) || matches!(r, Type::Float) {
        Type::Float
    } else if matches!(l, Type::Any) || matches!(r, Type::Any) {
        Type::Any
    } else {
        Type::Int
    }
}

/// Loose compatibility for the checker: `Any` is compatible with everything,
/// ints with floats, literals with their base types, unions with members.
fn compatible(a: &Type, b: &Type) -> bool {
    match (a, b) {
        (Type::Any, _) | (_, Type::Any) => true,
        _ => a.erase_ints().accepts(&b.erase_ints()) || b.erase_ints().accepts(&a.erase_ints()),
    }
}

fn builtin_return_type(name: &str) -> Type {
    match name {
        "abs" | "pow" | "sqrt" | "min" | "max" | "sum" | "to_float" | "parse_float" => Type::Float,
        "floor" | "ceil" | "round" | "trunc" | "len" | "to_int" | "parse_int" => Type::Int,
        "to_string" | "json_stringify" => Type::Str,
        "to_bool" => Type::Bool,
        "sorted" | "range" | "list" | "keys" | "values" => Type::List(Box::new(Type::Any)),
        "json_parse" => Type::Any,
        _ => Type::Any,
    }
}

fn method_return_type(name: &str) -> Type {
    match name {
        "to_upper" | "to_lower" | "trim" | "char_at" | "repeat" | "replace" | "pad_start"
        | "pad_end" | "join" | "to_fixed" | "to_string" => Type::Str,
        "includes" | "starts_with" | "ends_with" | "every" | "some" | "has" => Type::Bool,
        "index_of" | "push" | "count" => Type::Int,
        "split" | "map" | "filter" | "concat" | "keys" | "values" => {
            Type::List(Box::new(Type::Any))
        }
        // `slice`, `sort`, `reverse` return the receiver's type; `pop`,
        // `reduce`, `get` return element types — unknown here.
        _ => Type::Any,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser_ts::parse_ts;

    fn errors_of(src: &str) -> Vec<String> {
        let p = parse_ts(src).unwrap();
        check_program(&p).into_iter().map(|e| e.message).collect()
    }

    #[test]
    fn clean_function_has_no_findings() {
        let src = r#"
function f({n}: {n: number}): number {
  let acc = 1;
  for (let i = 2; i <= n; i++) {
    acc *= i;
  }
  return acc;
}"#;
        assert!(errors_of(src).is_empty(), "{:?}", errors_of(src));
    }

    #[test]
    fn undefined_variable_is_caught() {
        let errs = errors_of("function f({x}: {x: number}): number { return y; }");
        assert!(
            errs.iter().any(|m| m.contains("undefined variable 'y'")),
            "{errs:?}"
        );
    }

    #[test]
    fn unknown_function_is_caught() {
        let errs = errors_of("function f({x}: {x: number}): number { return mystery(x); }");
        assert!(
            errs.iter()
                .any(|m| m.contains("unknown function 'mystery'")),
            "{errs:?}"
        );
    }

    #[test]
    fn wrong_return_kind_is_caught() {
        let errs = errors_of("function f({x}: {x: number}): number { return 'nope'; }");
        assert!(
            errs.iter().any(|m| m.contains("declared to return")),
            "{errs:?}"
        );
    }

    #[test]
    fn missing_return_value_is_caught() {
        let errs = errors_of("function f({x}: {x: number}): number { let y = x; }");
        assert!(
            errs.iter().any(|m| m.contains("never returns a value")),
            "{errs:?}"
        );
    }

    #[test]
    fn assignment_to_undeclared_is_caught() {
        let errs = errors_of("function f({x}: {x: number}): void { y = x; }");
        assert!(
            errs.iter().any(|m| m.contains("undeclared variable 'y'")),
            "{errs:?}"
        );
    }

    #[test]
    fn non_boolean_condition_is_caught() {
        let errs = errors_of("function f({x}: {x: number}): void { if (x) { } }");
        assert!(
            errs.iter().any(|m| m.contains("must be boolean")),
            "{errs:?}"
        );
    }

    #[test]
    fn any_suppresses_complaints() {
        let src = "function f({o}: {o: any}): number { return o.whatever + 1; }";
        assert!(errors_of(src).is_empty(), "{:?}", errors_of(src));
    }

    #[test]
    fn cross_function_calls_typecheck_arity() {
        let src = r#"
function helper({a}: {a: number}): number { return a; }
function f({x}: {x: number}): number { return helper(x, x); }"#;
        let errs = errors_of(src);
        assert!(
            errs.iter().any(|m| m.contains("expects 1 argument")),
            "{errs:?}"
        );
    }

    #[test]
    fn string_plus_number_is_string_concat() {
        let src = "function f({n}: {n: number}): string { return 'v' + n; }";
        assert!(errors_of(src).is_empty(), "{:?}", errors_of(src));
    }
}
