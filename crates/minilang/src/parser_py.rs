//! Parser for the MiniPy (Python-like) surface syntax.
//!
//! Accepts the paper's Python-flavoured generated code:
//!
//! ```text
//! def func(x, y):
//!     total = 0
//!     for v in y:
//!         total += v
//!     return total + x
//! ```
//!
//! Python spellings are canonicalized while parsing: `len(x)` becomes the
//! `len` property, `x in xs` becomes `includes`, `sep.join(xs)` swaps its
//! receiver into canonical `xs.join(sep)` form, `s[a:b]` becomes `slice`.

use crate::ast::{BinOp, Block, Expr, FuncDecl, LValue, Param, Program, Stmt, UnOp};
use crate::builtins;
use crate::cursor::Cursor;
use crate::lexer_py::lex_py;
use crate::token::{SyntaxError, Tok};
use crate::typeparse::parse_type;

/// Reserved words that may not be used as variable names.
const KEYWORDS: &[&str] = &[
    "def", "return", "if", "elif", "else", "while", "for", "in", "not", "and", "or", "lambda",
    "True", "False", "None", "break", "continue", "pass",
];

/// Parses a MiniPy compilation unit.
///
/// # Errors
///
/// Returns the first [`SyntaxError`] encountered.
pub fn parse_py(source: &str) -> Result<Program, SyntaxError> {
    let tokens = lex_py(source)?;
    let mut c = Cursor::new(tokens);
    let mut functions = Vec::new();
    loop {
        while c.eat(&Tok::Newline) {}
        if c.at_eof() {
            break;
        }
        functions.push(function(&mut c)?);
    }
    if functions.is_empty() {
        return Err(c.error("expected at least one function definition"));
    }
    Ok(Program { functions })
}

/// Parses a single MiniPy expression.
pub fn parse_py_expr(source: &str) -> Result<Expr, SyntaxError> {
    let tokens = lex_py(source)?;
    let mut c = Cursor::new(tokens);
    let e = expr(&mut c)?;
    c.eat(&Tok::Newline);
    if !c.at_eof() {
        return Err(c.error("unexpected trailing input"));
    }
    Ok(e)
}

fn function(c: &mut Cursor) -> Result<FuncDecl, SyntaxError> {
    c.expect_kw("def")?;
    let name = c.expect_ident()?;
    c.expect(&Tok::LParen)?;
    let mut params = Vec::new();
    if !c.eat(&Tok::RParen) {
        loop {
            let pname = c.expect_ident()?;
            let ty = if c.eat(&Tok::Colon) {
                parse_type(c)?
            } else {
                askit_types::any()
            };
            params.push(Param { name: pname, ty });
            if !c.eat(&Tok::Comma) {
                break;
            }
        }
        c.expect(&Tok::RParen)?;
    }
    let ret = if c.eat(&Tok::ThinArrow) {
        parse_type(c)?
    } else {
        askit_types::any()
    };
    c.expect(&Tok::Colon)?;
    let body = suite(c)?;
    Ok(FuncDecl {
        name,
        params,
        ret,
        body,
        exported: true,
        doc: vec![],
    })
}

fn suite(c: &mut Cursor) -> Result<Block, SyntaxError> {
    c.expect(&Tok::Newline)?;
    c.expect(&Tok::Indent)?;
    let mut stmts = Vec::new();
    loop {
        while c.eat(&Tok::Newline) {}
        if c.eat(&Tok::Dedent) {
            break;
        }
        if c.at_eof() {
            return Err(c.error("unterminated suite"));
        }
        stmts.push(stmt(c)?);
    }
    Ok(stmts)
}

fn stmt(c: &mut Cursor) -> Result<Stmt, SyntaxError> {
    if c.at_kw("if") {
        return if_stmt(c);
    }
    if c.eat_kw("while") {
        let cond = expr(c)?;
        c.expect(&Tok::Colon)?;
        let body = suite(c)?;
        return Ok(Stmt::While { cond, body });
    }
    if c.eat_kw("for") {
        let var = c.expect_ident()?;
        c.expect_kw("in")?;
        let iter = expr(c)?;
        c.expect(&Tok::Colon)?;
        let body = suite(c)?;
        // `for i in range(a, b)` is the canonical counted loop.
        if let Expr::Call { callee, args } = &iter {
            if callee == "range" {
                match args.as_slice() {
                    [end] => {
                        return Ok(Stmt::ForRange {
                            var,
                            start: Expr::Num(0.0),
                            end: end.clone(),
                            inclusive: false,
                            body,
                        })
                    }
                    [start, end] => {
                        return Ok(Stmt::ForRange {
                            var,
                            start: start.clone(),
                            end: end.clone(),
                            inclusive: false,
                            body,
                        })
                    }
                    _ => {} // range with a step falls through to ForOf
                }
            }
        }
        return Ok(Stmt::ForOf { var, iter, body });
    }
    // Simple statements (terminated by NEWLINE).
    let s = simple_stmt(c)?;
    if !c.eat(&Tok::Newline) && !c.at_eof() {
        return Err(c.error(format!("expected end of line, found {}", c.peek().tok)));
    }
    Ok(s)
}

fn if_stmt(c: &mut Cursor) -> Result<Stmt, SyntaxError> {
    // Handles both `if` and `elif` heads (caller consumed neither).
    if !(c.eat_kw("if") || c.eat_kw("elif")) {
        return Err(c.error("expected 'if'"));
    }
    let cond = expr(c)?;
    c.expect(&Tok::Colon)?;
    let then_block = suite(c)?;
    let else_block = if c.at_kw("elif") {
        vec![if_stmt(c)?]
    } else if c.eat_kw("else") {
        c.expect(&Tok::Colon)?;
        suite(c)?
    } else {
        vec![]
    };
    Ok(Stmt::If {
        cond,
        then_block,
        else_block,
    })
}

fn simple_stmt(c: &mut Cursor) -> Result<Stmt, SyntaxError> {
    if c.eat_kw("return") {
        let value = if matches!(c.peek().tok, Tok::Newline | Tok::Eof) {
            None
        } else {
            Some(expr(c)?)
        };
        return Ok(Stmt::Return(value));
    }
    if c.eat_kw("break") {
        return Ok(Stmt::Break);
    }
    if c.eat_kw("continue") {
        return Ok(Stmt::Continue);
    }
    if c.eat_kw("pass") {
        return Ok(Stmt::Expr(Expr::Null));
    }
    let e = expr(c)?;
    let op = match c.peek().tok {
        Tok::Assign => None,
        Tok::PlusAssign => Some(BinOp::Add),
        Tok::MinusAssign => Some(BinOp::Sub),
        Tok::StarAssign => Some(BinOp::Mul),
        Tok::SlashAssign => Some(BinOp::Div),
        _ => return Ok(Stmt::Expr(e)),
    };
    c.advance();
    let value = expr(c)?;
    match (op, e) {
        // Python has no `let`; a plain `name = value` both declares and
        // assigns. We encode it as `Let`, and the interpreter's innermost
        // scope semantics make re-assignment work through `Let` too — but to
        // keep ASTs canonical the parser emits Let only for plain `=` on a
        // bare name, like the TS frontend's `let`.
        (None, Expr::Var(name)) => Ok(Stmt::Let {
            name,
            init: value,
            mutable: true,
        }),
        (op, target) => {
            let target = to_lvalue(c, target)?;
            Ok(Stmt::Assign { target, op, value })
        }
    }
}

fn to_lvalue(c: &Cursor, e: Expr) -> Result<LValue, SyntaxError> {
    match e {
        Expr::Var(name) => Ok(LValue::Var(name)),
        Expr::Index(base, idx) => Ok(LValue::Index(base, idx)),
        Expr::Prop(base, field) if field != "len" => {
            Ok(LValue::Index(base, Box::new(Expr::Str(field))))
        }
        _ => Err(c.error("invalid assignment target")),
    }
}

// --- expressions -----------------------------------------------------------

pub(crate) fn expr(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    if c.at_kw("lambda") {
        return lambda(c);
    }
    let value = or_expr(c)?;
    // Conditional expression: `a if cond else b`.
    if c.eat_kw("if") {
        let cond = or_expr(c)?;
        c.expect_kw("else")?;
        let else_e = expr(c)?;
        return Ok(Expr::Cond(
            Box::new(cond),
            Box::new(value),
            Box::new(else_e),
        ));
    }
    Ok(value)
}

fn lambda(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    c.expect_kw("lambda")?;
    let mut params = Vec::new();
    if c.peek().tok != Tok::Colon {
        loop {
            params.push(c.expect_ident()?);
            if !c.eat(&Tok::Comma) {
                break;
            }
        }
    }
    c.expect(&Tok::Colon)?;
    let body = expr(c)?;
    Ok(Expr::Lambda {
        params,
        body: Box::new(body),
    })
}

fn or_expr(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    let mut lhs = and_expr(c)?;
    while c.eat_kw("or") {
        let rhs = and_expr(c)?;
        lhs = Expr::bin(BinOp::Or, lhs, rhs);
    }
    Ok(lhs)
}

fn and_expr(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    let mut lhs = not_expr(c)?;
    while c.eat_kw("and") {
        let rhs = not_expr(c)?;
        lhs = Expr::bin(BinOp::And, lhs, rhs);
    }
    Ok(lhs)
}

fn not_expr(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    if c.eat_kw("not") {
        let inner = not_expr(c)?;
        return Ok(Expr::Unary(UnOp::Not, Box::new(inner)));
    }
    comparison(c)
}

fn comparison(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    let lhs = arith(c)?;
    // Membership: `x in xs` / `x not in xs`.
    if c.at_kw("in") {
        c.advance();
        let container = arith(c)?;
        return Ok(Expr::method(container, "includes", vec![lhs]));
    }
    if c.at_kw("not") && matches!(&c.peek_at(1).tok, Tok::Ident(s) if s == "in") {
        c.advance();
        c.advance();
        let container = arith(c)?;
        return Ok(Expr::Unary(
            UnOp::Not,
            Box::new(Expr::method(container, "includes", vec![lhs])),
        ));
    }
    let op = match c.peek().tok {
        Tok::EqEq => BinOp::Eq,
        Tok::NotEq => BinOp::Ne,
        Tok::Lt => BinOp::Lt,
        Tok::Le => BinOp::Le,
        Tok::Gt => BinOp::Gt,
        Tok::Ge => BinOp::Ge,
        _ => return Ok(lhs),
    };
    c.advance();
    let rhs = arith(c)?;
    Ok(Expr::bin(op, lhs, rhs))
}

fn arith(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    let mut lhs = term(c)?;
    loop {
        let op = match c.peek().tok {
            Tok::Plus => BinOp::Add,
            Tok::Minus => BinOp::Sub,
            _ => return Ok(lhs),
        };
        c.advance();
        let rhs = term(c)?;
        lhs = Expr::bin(op, lhs, rhs);
    }
}

fn term(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    let mut lhs = factor(c)?;
    loop {
        let op = match c.peek().tok {
            Tok::Star => BinOp::Mul,
            Tok::Slash => BinOp::Div,
            Tok::SlashSlash => BinOp::FloorDiv,
            Tok::Percent => BinOp::Mod,
            _ => return Ok(lhs),
        };
        c.advance();
        let rhs = factor(c)?;
        lhs = Expr::bin(op, lhs, rhs);
    }
}

fn factor(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    if c.eat(&Tok::Minus) {
        let inner = factor(c)?;
        return Ok(Expr::Unary(UnOp::Neg, Box::new(inner)));
    }
    power(c)
}

fn power(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    let base = postfix(c)?;
    if c.eat(&Tok::StarStar) {
        // Right-associative, and `-x ** y` binds the `**` tighter (Python).
        let exp = factor(c)?;
        return Ok(Expr::bin(BinOp::Pow, base, exp));
    }
    Ok(base)
}

fn postfix(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    let mut e = primary(c)?;
    loop {
        match c.peek().tok {
            Tok::LParen => {
                c.advance();
                let args = call_args(c)?;
                e = make_call(c, e, args)?;
            }
            Tok::LBracket => {
                c.advance();
                e = index_or_slice(c, e)?;
            }
            Tok::Dot => {
                c.advance();
                let member = c.expect_ident()?;
                if c.peek().tok == Tok::LParen {
                    c.advance();
                    let args = call_args(c)?;
                    e = make_member_call(e, &member, args);
                } else {
                    e = Expr::prop(e, member);
                }
            }
            _ => return Ok(e),
        }
    }
}

fn make_call(c: &Cursor, callee: Expr, args: Vec<Expr>) -> Result<Expr, SyntaxError> {
    match callee {
        Expr::Var(name) => {
            if name == "len" {
                if args.len() != 1 {
                    return Err(c.error("len() takes exactly one argument"));
                }
                let mut args = args;
                return Ok(Expr::prop(args.remove(0), "len"));
            }
            Ok(Expr::Call {
                callee: builtins::canonical_free_py(&name).to_owned(),
                args,
            })
        }
        Expr::Lambda { .. } => Err(c.error("immediately-invoked lambdas are not supported")),
        _ => Err(c.error("only named functions can be called")),
    }
}

fn make_member_call(recv: Expr, member: &str, args: Vec<Expr>) -> Expr {
    if let Expr::Var(ns) = &recv {
        if let Some(canonical) = builtins::canonical_namespace_call(ns, member) {
            return Expr::Call {
                callee: canonical.to_owned(),
                args,
            };
        }
    }
    // Python's `sep.join(xs)` has the receiver and argument swapped relative
    // to the canonical (JS-style) `xs.join(sep)`.
    if member == "join" && args.len() == 1 {
        let mut args = args;
        let xs = args.remove(0);
        return Expr::method(xs, "join", vec![recv]);
    }
    let canonical = builtins::canonical_method_py(member);
    if canonical == "keys" && args.is_empty() {
        return Expr::call("keys", vec![recv]);
    }
    if canonical == "values" && args.is_empty() {
        return Expr::call("values", vec![recv]);
    }
    Expr::method(recv, canonical, args)
}

fn index_or_slice(c: &mut Cursor, base: Expr) -> Result<Expr, SyntaxError> {
    // `[i]`, `[a:b]`, `[:b]`, `[a:]`, `[:]`
    let start = if matches!(c.peek().tok, Tok::Colon) {
        None
    } else {
        Some(expr(c)?)
    };
    if c.eat(&Tok::Colon) {
        let end = if matches!(c.peek().tok, Tok::RBracket) {
            None
        } else {
            Some(expr(c)?)
        };
        c.expect(&Tok::RBracket)?;
        let mut args = Vec::new();
        match (start, end) {
            (Some(s), Some(e)) => {
                args.push(s);
                args.push(e);
            }
            (Some(s), None) => args.push(s),
            (None, Some(e)) => {
                args.push(Expr::Num(0.0));
                args.push(e);
            }
            (None, None) => {}
        }
        return Ok(Expr::method(base, "slice", args));
    }
    let idx = start.ok_or_else(|| c.error("expected index expression"))?;
    c.expect(&Tok::RBracket)?;
    Ok(Expr::index(base, idx))
}

fn call_args(c: &mut Cursor) -> Result<Vec<Expr>, SyntaxError> {
    let mut args = Vec::new();
    if c.eat(&Tok::RParen) {
        return Ok(args);
    }
    loop {
        args.push(expr(c)?);
        if !c.eat(&Tok::Comma) {
            break;
        }
        if c.peek().tok == Tok::RParen {
            break;
        }
    }
    c.expect(&Tok::RParen)?;
    Ok(args)
}

fn primary(c: &mut Cursor) -> Result<Expr, SyntaxError> {
    match c.peek().tok.clone() {
        Tok::Num(n) => {
            c.advance();
            Ok(Expr::Num(n))
        }
        Tok::Str(s) => {
            c.advance();
            Ok(Expr::Str(s))
        }
        Tok::Ident(word) => {
            c.advance();
            match word.as_str() {
                "True" => Ok(Expr::Bool(true)),
                "False" => Ok(Expr::Bool(false)),
                "None" => Ok(Expr::Null),
                w if KEYWORDS.contains(&w) => {
                    Err(c.error(format!("unexpected keyword '{w}' in expression")))
                }
                _ => Ok(Expr::Var(word)),
            }
        }
        Tok::LParen => {
            c.advance();
            let e = expr(c)?;
            c.expect(&Tok::RParen)?;
            Ok(e)
        }
        Tok::LBracket => {
            c.advance();
            let mut items = Vec::new();
            if c.eat(&Tok::RBracket) {
                return Ok(Expr::Array(items));
            }
            loop {
                items.push(expr(c)?);
                if !c.eat(&Tok::Comma) {
                    break;
                }
                if c.peek().tok == Tok::RBracket {
                    break;
                }
            }
            c.expect(&Tok::RBracket)?;
            Ok(Expr::Array(items))
        }
        Tok::LBrace => {
            c.advance();
            let mut fields = Vec::new();
            if c.eat(&Tok::RBrace) {
                return Ok(Expr::Object(fields));
            }
            loop {
                let key = match c.peek().tok.clone() {
                    Tok::Str(k) => {
                        c.advance();
                        k
                    }
                    other => {
                        return Err(
                            c.error(format!("dict keys must be string literals, found {other}"))
                        )
                    }
                };
                c.expect(&Tok::Colon)?;
                fields.push((key, expr(c)?));
                if !c.eat(&Tok::Comma) {
                    break;
                }
                if c.peek().tok == Tok::RBrace {
                    break;
                }
            }
            c.expect(&Tok::RBrace)?;
            Ok(Expr::Object(fields))
        }
        other => Err(c.error(format!("unexpected {other} in expression"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_def() {
        let p = parse_py("def add(x, y):\n    return x + y\n").unwrap();
        let f = &p.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(
            f.body,
            vec![Stmt::Return(Some(Expr::bin(
                BinOp::Add,
                Expr::var("x"),
                Expr::var("y")
            )))]
        );
    }

    #[test]
    fn typed_signature_with_arrow() {
        let p = parse_py("def f(n: int) -> number[]:\n    return []\n").unwrap();
        assert_eq!(p.functions[0].params[0].ty, askit_types::int());
        assert_eq!(p.functions[0].ret, askit_types::list(askit_types::float()));
    }

    #[test]
    fn range_loops_become_for_range() {
        let p = parse_py(
            "def fact(n):\n    acc = 1\n    for i in range(2, n + 1):\n        acc *= i\n    return acc\n",
        )
        .unwrap();
        let Stmt::ForRange {
            start, inclusive, ..
        } = &p.functions[0].body[1]
        else {
            panic!("expected ForRange, got {:?}", p.functions[0].body[1]);
        };
        assert_eq!(*start, Expr::Num(2.0));
        assert!(!inclusive);
    }

    #[test]
    fn single_arg_range_starts_at_zero() {
        let p = parse_py("def f(n):\n    for i in range(n):\n        pass\n").unwrap();
        let Stmt::ForRange { start, .. } = &p.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(*start, Expr::Num(0.0));
    }

    #[test]
    fn for_over_values_is_for_of() {
        let p = parse_py("def f(xs):\n    for x in xs:\n        pass\n").unwrap();
        assert!(matches!(p.functions[0].body[0], Stmt::ForOf { .. }));
    }

    #[test]
    fn len_and_free_functions_canonicalize() {
        assert_eq!(
            parse_py_expr("len(xs)").unwrap(),
            Expr::prop(Expr::var("xs"), "len")
        );
        assert_eq!(
            parse_py_expr("str(n)").unwrap(),
            Expr::call("to_string", vec![Expr::var("n")])
        );
        assert_eq!(
            parse_py_expr("int(s)").unwrap(),
            Expr::call("to_int", vec![Expr::var("s")])
        );
        assert_eq!(
            parse_py_expr("math.floor(x)").unwrap(),
            Expr::call("floor", vec![Expr::var("x")])
        );
        assert_eq!(
            parse_py_expr("json.dumps(o)").unwrap(),
            Expr::call("json_stringify", vec![Expr::var("o")])
        );
    }

    #[test]
    fn membership_and_not_in() {
        assert_eq!(
            parse_py_expr("x in xs").unwrap(),
            Expr::method(Expr::var("xs"), "includes", vec![Expr::var("x")])
        );
        assert_eq!(
            parse_py_expr("x not in xs").unwrap(),
            Expr::Unary(
                UnOp::Not,
                Box::new(Expr::method(
                    Expr::var("xs"),
                    "includes",
                    vec![Expr::var("x")]
                ))
            )
        );
    }

    #[test]
    fn join_receiver_swaps_to_canonical() {
        assert_eq!(
            parse_py_expr("', '.join(parts)").unwrap(),
            Expr::method(Expr::var("parts"), "join", vec![Expr::str(", ")])
        );
    }

    #[test]
    fn method_spellings_canonicalize() {
        assert_eq!(
            parse_py_expr("s.upper().strip()").unwrap(),
            Expr::method(
                Expr::method(Expr::var("s"), "to_upper", vec![]),
                "trim",
                vec![]
            )
        );
        assert_eq!(
            parse_py_expr("xs.append(1)").unwrap(),
            Expr::method(Expr::var("xs"), "push", vec![Expr::Num(1.0)])
        );
    }

    #[test]
    fn slices_become_slice_method() {
        assert_eq!(
            parse_py_expr("s[1:3]").unwrap(),
            Expr::method(
                Expr::var("s"),
                "slice",
                vec![Expr::Num(1.0), Expr::Num(3.0)]
            )
        );
        assert_eq!(
            parse_py_expr("s[2:]").unwrap(),
            Expr::method(Expr::var("s"), "slice", vec![Expr::Num(2.0)])
        );
        assert_eq!(
            parse_py_expr("s[:2]").unwrap(),
            Expr::method(
                Expr::var("s"),
                "slice",
                vec![Expr::Num(0.0), Expr::Num(2.0)]
            )
        );
        assert_eq!(
            parse_py_expr("s[:]").unwrap(),
            Expr::method(Expr::var("s"), "slice", vec![])
        );
        assert_eq!(
            parse_py_expr("s[i]").unwrap(),
            Expr::index(Expr::var("s"), Expr::var("i"))
        );
    }

    #[test]
    fn boolean_operators_and_conditional_expression() {
        assert_eq!(
            parse_py_expr("a and not b or c").unwrap(),
            Expr::bin(
                BinOp::Or,
                Expr::bin(
                    BinOp::And,
                    Expr::var("a"),
                    Expr::Unary(UnOp::Not, Box::new(Expr::var("b")))
                ),
                Expr::var("c")
            )
        );
        assert_eq!(
            parse_py_expr("'yes' if ok else 'no'").unwrap(),
            Expr::Cond(
                Box::new(Expr::var("ok")),
                Box::new(Expr::str("yes")),
                Box::new(Expr::str("no"))
            )
        );
    }

    #[test]
    fn lambdas() {
        assert_eq!(
            parse_py_expr("lambda x: x * 2").unwrap(),
            Expr::Lambda {
                params: vec!["x".into()],
                body: Box::new(Expr::bin(BinOp::Mul, Expr::var("x"), Expr::Num(2.0))),
            }
        );
    }

    #[test]
    fn floor_division_and_power() {
        assert_eq!(
            parse_py_expr("a // b ** 2").unwrap(),
            Expr::bin(
                BinOp::FloorDiv,
                Expr::var("a"),
                Expr::bin(BinOp::Pow, Expr::var("b"), Expr::Num(2.0))
            )
        );
    }

    #[test]
    fn elif_chains() {
        let src = "def sign(x):\n    if x > 0:\n        return 'pos'\n    elif x < 0:\n        return 'neg'\n    else:\n        return 'zero'\n";
        let p = parse_py(src).unwrap();
        let Stmt::If { else_block, .. } = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(else_block[0], Stmt::If { .. }));
    }

    #[test]
    fn plain_assignment_is_let_compound_is_assign() {
        let p = parse_py("def f(xs):\n    n = 0\n    n += 1\n    xs[0] = 5\n").unwrap();
        assert!(matches!(p.functions[0].body[0], Stmt::Let { .. }));
        assert!(matches!(
            p.functions[0].body[1],
            Stmt::Assign {
                op: Some(BinOp::Add),
                ..
            }
        ));
        assert!(matches!(
            p.functions[0].body[2],
            Stmt::Assign {
                target: LValue::Index(..),
                op: None,
                ..
            }
        ));
    }

    #[test]
    fn dict_literals_and_membership_on_dicts() {
        let e = parse_py_expr("{'a': 1, 'b': 2}").unwrap();
        assert!(matches!(e, Expr::Object(ref fields) if fields.len() == 2));
        assert!(
            parse_py_expr("{a: 1}").is_err(),
            "bare identifiers are not dict keys"
        );
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse_py("def f(:\n    pass\n").is_err());
        assert!(parse_py("x = 1\n").is_err(), "top level must be defs");
        let err = parse_py("def f():\n    return +\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
