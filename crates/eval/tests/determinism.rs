//! Thread-count invariance: the engine fan-out must never change what the
//! experiments measure, only how fast they run.

use std::time::Duration;

use askit_core::{args, Askit, AskitConfig, ModelChoice};
use askit_eval::table3::{self, Table3Column};
use askit_exec::EngineConfig;
use askit_llm::{MockLlm, MockLlmConfig, Oracle};

/// The fully simulated (bit-deterministic) fields of a column. Execution
/// time, the speedup derived from it, and the real-validation share of
/// compilation time are measured wall-clock and handled separately.
fn simulated_fields(col: &Table3Column) -> impl PartialEq + std::fmt::Debug {
    (col.attempted, col.solved_direct, col.generated, col.latency)
}

/// Asserts two columns agree: simulated fields bit-for-bit, compilation
/// within the sub-millisecond jitter its measured validation share adds.
fn assert_columns_agree(a: &Table3Column, b: &Table3Column, label: &str) {
    assert_eq!(
        simulated_fields(a),
        simulated_fields(b),
        "{label} column diverged across thread counts"
    );
    let drift = a.compilation.abs_diff(b.compilation);
    assert!(
        drift < std::time::Duration::from_millis(5),
        "{label} compilation drifted {drift:?} (simulated share must match; \
         only measured validation time may jitter)"
    );
}

/// The persistence acceptance check: a **warm** table3 run (served from the
/// disk cache a previous run populated) must be bit-identical to the cold
/// run, at any thread width. Caching may only change wall-clock, never what
/// the experiment measures — solve counts, attempts, and the simulated
/// latency column all ride on cached completions being byte-exact replays.
#[test]
fn table3_warm_start_is_bit_identical_to_cold() {
    let dir = std::env::temp_dir().join(format!(
        "askit-table3-warm-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = table3::CacheSetup {
        dir: Some(dir.clone()),
        ttl: None,
        shared: false,
    };

    let cold = table3::run_with_cache(24, 20240302, 1, &cache);
    let warm_wide = table3::run_with_cache(24, 20240302, 8, &cache);
    assert_columns_agree(&cold.ts, &warm_wide.ts, "TypeScript (warm, 8 threads)");
    assert_columns_agree(&cold.py, &warm_wide.py, "Python (warm, 8 threads)");
    let warm_again = table3::run_with_cache(24, 20240302, 4, &cache);
    assert_columns_agree(&warm_wide.ts, &warm_again.ts, "TypeScript (warm rerun)");
    assert_columns_agree(&warm_wide.py, &warm_again.py, "Python (warm rerun)");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The multi-process acceptance check, in-process: a table3 sweep split
/// into shards that share one `--shared-cache` directory must merge to the
/// bit-exact digest of a single full run — cold *and* warm — and the warm
/// pass must be served almost entirely from the shared store.
#[test]
fn sharded_shared_cache_sweep_merges_to_the_full_run() {
    let dir = std::env::temp_dir().join(format!(
        "askit-table3-sharded-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = table3::CacheSetup {
        dir: Some(dir.clone()),
        ttl: None,
        shared: true,
    };
    let full = table3::run_with_threads(24, 20240302, 2);
    let sweep = || {
        let fragments: Vec<_> = (0..2)
            .map(|i| {
                let policy = table3::SweepPolicy::default()
                    .with_threads(2)
                    .with_cache(cache.clone())
                    .with_shard(i, 2);
                let report = table3::run_policy(24, 20240302, &policy, &table3::Backend::Mock);
                table3::fragment(&report, (i, 2), 24, 20240302)
            })
            .collect();
        table3::merge_fragments(&fragments).unwrap()
    };

    let cold = sweep();
    assert_eq!(
        table3::digest(&cold),
        table3::digest(&full),
        "merged shards must reproduce the full run exactly (cold)"
    );
    let warm = sweep();
    assert_eq!(
        table3::digest(&warm),
        table3::digest(&full),
        "merged shards must reproduce the full run exactly (warm)"
    );
    let (hits, misses) = (
        warm.ts.cache.hits + warm.py.cache.hits,
        warm.ts.cache.misses + warm.py.cache.misses,
    );
    let rate = hits as f64 / (hits + misses).max(1) as f64;
    assert!(
        rate >= 0.9,
        "warm sharded sweep must serve from the shared store: {hits} hits / {misses} misses"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--threads 1` and `--threads 8` must produce identical table3 numbers.
#[test]
fn table3_is_identical_across_thread_counts() {
    let serial = table3::run_with_threads(36, 20240302, 1);
    let wide = table3::run_with_threads(36, 20240302, 8);
    assert_columns_agree(&serial.ts, &wide.ts, "TypeScript");
    assert_columns_agree(&serial.py, &wide.py, "Python");
    // And a repeated run at the same width reproduces the same numbers.
    let again = table3::run_with_threads(36, 20240302, 8);
    assert_columns_agree(&wide.ts, &again.ts, "TypeScript (rerun)");
    assert_columns_agree(&wide.py, &again.py, "Python (rerun)");
}

/// A mixed-model `run_batch` must return order-preserved typed results that
/// are bit-identical at `--threads 1` and `--threads 8`: the fan-out may
/// change scheduling, never what any query computes.
#[test]
fn run_batch_is_identical_across_thread_counts() {
    let run = |threads: usize| -> Vec<(i64, usize, Duration)> {
        let askit = Askit::new(MockLlm::new(
            MockLlmConfig::gpt4().with_seed(4242),
            Oracle::standard(),
        ))
        .with_engine_config(EngineConfig::default().with_workers(threads));
        // Twelve queries alternating between the routed models — the
        // per-request options ride the whole stack down to the mock.
        let queries: Vec<_> = (0..12i64)
            .map(|i| {
                askit
                    .query::<i64>("What is {{x}} plus {{y}}?")
                    .args(args! { x: i, y: 1000 })
                    .model(if i % 2 == 0 {
                        ModelChoice::Gpt35
                    } else {
                        ModelChoice::Gpt4
                    })
                    .build()
                    .expect("template parses")
            })
            .collect();
        askit
            .run_batch_detailed(&queries)
            .into_iter()
            .map(|outcome| {
                let outcome = outcome.expect("arithmetic oracle answers");
                let value = outcome.value.as_i64().expect("typed int");
                (value, outcome.attempts, outcome.latency)
            })
            .collect()
    };

    let serial = run(1);
    let wide = run(8);
    assert_eq!(serial.len(), 12);
    // Order preserved: query i answers i + 1000.
    for (i, (value, _, _)) in serial.iter().enumerate() {
        assert_eq!(*value, i as i64 + 1000);
    }
    // Bit-identical outcomes (values, attempts, simulated latencies) at
    // both widths, and again on a rerun.
    assert_eq!(serial, wide, "thread count changed batch results");
    assert_eq!(wide, run(8), "rerun diverged");
}

/// Speculative retry prefetch must never change what the experiment
/// measures: with the mock's fault injection on, many problems walk the
/// retry loop, so `run_direct` predicts and prefetches feedback turns
/// throughout this sweep — and every column must still match the
/// non-speculative run bit-for-bit, at every thread width.
#[test]
fn table3_with_speculative_prefetch_is_bit_identical() {
    let base = table3::run_with_threads(24, 20240302, 4);
    let no_cache = table3::CacheSetup::default();
    for threads in [1usize, 4, 8] {
        let speculative = table3::run_full(24, 20240302, threads, &no_cache, true);
        assert_columns_agree(
            &base.ts,
            &speculative.ts,
            &format!("TypeScript (speculate, {threads} threads)"),
        );
        assert_columns_agree(
            &base.py,
            &speculative.py,
            &format!("Python (speculate, {threads} threads)"),
        );
    }
}

/// AIMD width adaptation must never change what the experiment measures:
/// the scheduler's per-model gates throttle *admission*, not content, so a
/// table3 sweep with `--adaptive` must be bit-identical to the plain run at
/// every thread width — adaptation may only move wall-clock time.
#[test]
fn table3_with_adaptive_widths_is_bit_identical() {
    let base = table3::run_with_threads(24, 20240302, 4);
    for threads in [1usize, 4, 8] {
        let policy = table3::SweepPolicy::default()
            .with_threads(threads)
            .with_adaptive(true);
        let adaptive = table3::run_policy(24, 20240302, &policy, &table3::Backend::Mock);
        assert_columns_agree(
            &base.ts,
            &adaptive.ts,
            &format!("TypeScript (adaptive, {threads} threads)"),
        );
        assert_columns_agree(
            &base.py,
            &adaptive.py,
            &format!("Python (adaptive, {threads} threads)"),
        );
    }
}

/// A workload that re-asks the same templates must hit the engine's
/// completion cache (the acceptance check for `CacheStats`).
#[test]
fn repeated_template_workload_hits_the_cache() {
    let askit = Askit::new(MockLlm::new(MockLlmConfig::gpt4(), Oracle::standard()))
        .with_config(AskitConfig::default())
        .with_engine_config(EngineConfig::default().with_workers(4));
    let task = askit
        .define(askit_types::int(), "What is {{x}} plus {{y}}?")
        .unwrap();

    // Warm the cache with the three distinct bindings, then re-ask each
    // four times across the pool: every batched call is answerable from
    // cache.
    for i in 0..3 {
        let _ = task.call(args! { x: i, y: 10 }).unwrap();
    }
    let bindings: Vec<_> = (0..12).map(|i| args! { x: i % 3, y: 10 }).collect();
    let outcomes = task.call_batch(&bindings);
    for (i, outcome) in outcomes.iter().enumerate() {
        let value = &outcome.as_ref().expect("arithmetic oracle answers").value;
        assert_eq!(value, &askit_json::Json::Int((i as i64 % 3) + 10));
    }

    let stats = askit.cache_stats();
    assert!(
        stats.hits >= 12,
        "repeated templates must hit the cache: {stats:?}"
    );
    assert!(
        stats.entries <= 4,
        "only distinct conversations stored: {stats:?}"
    );
}
