//! Table III: GSM8K — direct LLM answering vs generated code.
//!
//! For every problem the harness (1) answers it directly through the AskIt
//! runtime, recording the simulated model latency; (2) if solved, compiles
//! the same template and measures the *real* execution time of the generated
//! function plus its compilation time. The headline is the speedup ratio.
//!
//! Problems are independent, so the sweep fans out over the execution
//! engine's worker pool — full-scale runs touch 1,319 problems twice. The
//! mock model derives its randomness per conversation, so every thread
//! count produces identical simulated numbers (solve counts, latency,
//! compilation time); only the measured execution-time column varies with
//! the machine.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use askit_core::{Askit, AskitConfig, Example};
use askit_datasets::gsm8k::{self, Gsm8kProblem};
use askit_exec::{CacheStats, EngineConfig};
use askit_json::Json;
use askit_llm::{Escalation, LanguageModel, MockLlm, MockLlmConfig, Oracle};
use minilang::Syntax;

use crate::report::Table;

/// Exact integer aggregates for one pipeline, in nanoseconds.
///
/// The report's mean columns are *derived* from these sums by integer
/// division, so fragments produced by disjoint shards of one sweep add up
/// to exactly the whole: `merge`d means are bit-identical to the means a
/// single full run computes. (Floating-point accumulation would make the
/// merged report depend on summation order.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Table3Sums {
    /// Total simulated model latency over directly-solved problems.
    pub latency_ns: u64,
    /// Total compilation time over generated programs. Mostly simulated
    /// model latency, but it includes the *measured* test-validation
    /// share, so it jitters by sub-millisecond amounts across runs and is
    /// excluded from determinism digests.
    pub compile_ns: u64,
    /// Total measured execution time over generated programs
    /// (machine-dependent; excluded from determinism digests).
    pub execution_ns: u64,
}

impl Table3Sums {
    fn add(&mut self, other: &Table3Sums) {
        self.latency_ns += other.latency_ns;
        self.compile_ns += other.compile_ns;
        self.execution_ns += other.execution_ns;
    }
}

/// Aggregates for one pipeline (one column of Table III).
#[derive(Debug, Clone)]
pub struct Table3Column {
    /// The pipeline's surface syntax.
    pub syntax: Syntax,
    /// Problems attempted.
    pub attempted: usize,
    /// Problems the model solved directly (paper: 1,138 TS / 1,159 Py).
    pub solved_direct: usize,
    /// Problems whose code generation also succeeded (paper: 1,114 / 1,134).
    pub generated: usize,
    /// Mean model latency per direct answer (paper: 13.28 s / 22.97 s).
    pub latency: Duration,
    /// Mean execution time of generated functions (paper: 49.11 µs / 5.09 µs).
    pub execution: Duration,
    /// Mean compilation time (paper: 14.19 s / 20.38 s).
    pub compilation: Duration,
    /// latency / execution (paper: 275,092.55× / 6,969,904.73×).
    pub speedup: f64,
    /// Completion-cache counters at the end of the sweep (hit rate,
    /// invalidations from rejected attempts, entries loaded from disk).
    pub cache: CacheStats,
    /// The exact integer aggregates the mean columns derive from (see
    /// [`Table3Sums`]); these are what shard fragments carry and what
    /// [`merge_fragments`] adds up.
    pub sums: Table3Sums,
}

/// The full experiment output.
#[derive(Debug, Clone)]
pub struct Table3Report {
    /// The TypeScript pipeline column.
    pub ts: Table3Column,
    /// The Python pipeline column.
    pub py: Table3Column,
}

/// Per-problem outcome collected by the workers.
struct Outcome {
    solved: bool,
    latency: Duration,
    generated: Option<(Duration, Duration)>, // (compile, execution)
}

/// Cache-persistence knobs for a sweep: where the completion cache spills
/// to, and how long its entries stay servable. With a directory set, a
/// rerun of the same experiment warm-starts from the previous process's
/// completions instead of re-deriving them.
#[derive(Debug, Clone, Default)]
pub struct CacheSetup {
    /// Root directory; each pipeline persists under its own subdirectory
    /// (see [`run_with_cache`]). `None` = in-memory only.
    pub dir: Option<PathBuf>,
    /// Default entry TTL (`None` = entries never expire).
    pub ttl: Option<Duration>,
    /// Open the directory in *shared* mode: completions go through the
    /// content-addressed object store with per-shard file locks, so any
    /// number of concurrent eval processes (e.g. disjoint [`SweepPolicy`]
    /// shards) can point at one directory and their flushes merge instead
    /// of overwriting. Ignored without a directory.
    pub shared: bool,
}

/// Every execution-policy knob of a sweep in one place: how wide the
/// engine fans out, where completions persist, and which of the optional
/// scheduling features are on.
///
/// `threads`, `cache`, `speculate`, and `adaptive` may only change *how*
/// the sweep runs — the report is bit-identical with any combination (the
/// determinism suite holds thread counts 1/4/8 with adaptation on to the
/// same columns). `escalate` is the exception: it deliberately changes
/// routing (first attempts go to the cheap tier), so its latency column
/// reflects the ladder, not the strong model alone.
#[derive(Debug, Clone, Default)]
pub struct SweepPolicy {
    /// Engine worker threads (`0` = auto: `ASKIT_WORKERS`, then the
    /// machine's available parallelism).
    pub threads: usize,
    /// Completion-cache persistence (see [`CacheSetup`]).
    pub cache: CacheSetup,
    /// Speculative retry prefetch (see [`run_full`]).
    pub speculate: bool,
    /// Per-model AIMD width adaptation: the engine grows each model's
    /// admission width on success and cuts it on throttles/timeouts
    /// (`askit_exec::Scheduler`). Timing-only; results never change.
    pub adaptive: bool,
    /// Tiered model escalation: route first attempts to the cheap tier and
    /// climb the [`Escalation::cheap_first`] ladder on validation failure.
    pub escalate: bool,
    /// Run only the `(index, total)` slice of the problem list (problems
    /// whose position satisfies `pos % total == index`). The full list is
    /// generated first, so every shard sees the same problems a full run
    /// would — a shard's completions are byte-identical to the full run's,
    /// which is what lets concurrent shards share one cache directory.
    /// Fragments from all `total` shards [`merge_fragments`] into exactly
    /// the full run's report. `None` = the whole list.
    pub shard: Option<(usize, usize)>,
}

impl SweepPolicy {
    /// Overrides the engine worker count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides cache persistence.
    #[must_use]
    pub fn with_cache(mut self, cache: CacheSetup) -> Self {
        self.cache = cache;
        self
    }

    /// Enables speculative retry prefetch.
    #[must_use]
    pub fn with_speculation(mut self, speculate: bool) -> Self {
        self.speculate = speculate;
        self
    }

    /// Enables AIMD width adaptation.
    #[must_use]
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Enables tiered model escalation.
    #[must_use]
    pub fn with_escalation(mut self, escalate: bool) -> Self {
        self.escalate = escalate;
        self
    }

    /// Restricts the sweep to one `(index, total)` shard of the problem
    /// list (see [`SweepPolicy::shard`]).
    #[must_use]
    pub fn with_shard(mut self, index: usize, total: usize) -> Self {
        self.shard = Some((index, total));
        self
    }
}

/// Which language-model backend serves a sweep.
///
/// The reproduction's default is the simulated GPT ([`Backend::Mock`]),
/// whose answers are derived from the dataset oracle — deterministic at
/// any thread count. With the `http` cargo feature, `Backend::Http`
/// points the *same* harness (engine, cache, retry loop, grading) at an
/// OpenAI-compatible service instead; solve counts then measure the real
/// model behind that endpoint.
#[derive(Debug, Clone, Default)]
pub enum Backend {
    /// The deterministic simulated GPT (the default).
    #[default]
    Mock,
    /// An OpenAI-compatible HTTP service (boxed: the configuration is an
    /// order of magnitude larger than the unit `Mock` variant).
    #[cfg(feature = "http")]
    Http(Box<askit_llm_http::HttpLlmConfig>),
}

fn syntax_tag(syntax: Syntax) -> &'static str {
    match syntax {
        Syntax::Ts => "ts",
        Syntax::Py => "py",
    }
}

fn run_pipeline(
    problems: &[Gsm8kProblem],
    syntax: Syntax,
    run_seed: u64,
    policy: &SweepPolicy,
    backend: &Backend,
) -> Table3Column {
    match backend {
        Backend::Mock => {
            let mut oracle = Oracle::standard();
            gsm8k::register_oracle(&mut oracle, problems, run_seed);
            let llm = MockLlm::new(MockLlmConfig::gpt4().with_seed(run_seed), oracle);
            run_pipeline_with(llm, problems, syntax, run_seed, policy)
        }
        #[cfg(feature = "http")]
        Backend::Http(config) => {
            // Construction only fails on a malformed base URL (the eval
            // CLI validates up front; library callers hit this directly).
            let llm = askit_llm_http::HttpLlm::new((**config).clone())
                .unwrap_or_else(|e| panic!("invalid http backend configuration: {e}"));
            run_pipeline_with(llm, problems, syntax, run_seed, policy)
        }
    }
}

fn run_pipeline_with<L: LanguageModel + 'static>(
    llm: L,
    problems: &[Gsm8kProblem],
    syntax: Syntax,
    run_seed: u64,
    policy: &SweepPolicy,
) -> Table3Column {
    let mut engine_config = EngineConfig::default()
        .with_workers(policy.threads)
        .with_adaptive(policy.adaptive);
    if let Some(dir) = &policy.cache.dir {
        // One cache universe per (pipeline, run seed): the mock's responses
        // depend on its seed, so pipelines must never share entries — a TS
        // completion replayed into the Python sweep would silently change
        // its numbers.
        engine_config.cache_dir = Some(dir.join(format!("{}-{run_seed}", syntax_tag(syntax))));
        engine_config.cache_ttl = policy.cache.ttl;
        engine_config.shared_cache = policy.cache.shared;
    }
    let mut askit_config = AskitConfig::default().with_speculation(policy.speculate);
    if policy.escalate {
        askit_config = askit_config.with_escalation(Escalation::cheap_first());
    }
    let askit = Askit::new(llm)
        .with_config(askit_config)
        .with_engine_config(engine_config);
    if policy.adaptive || policy.escalate {
        let engine = askit.engine();
        askit_obs::info!(
            "askit_eval",
            "table3[{}]: scheduler widths: {}{}",
            syntax_tag(syntax),
            engine.describe_widths(),
            if policy.escalate {
                "  escalation: gpt35 -> gpt4"
            } else {
                ""
            },
        );
    }

    let outcomes: Vec<Outcome> = askit
        .engine()
        .map(problems, |_, problem| run_problem(&askit, problem, syntax));
    // Dropping `askit` would flush too; flushing explicitly lets us surface
    // I/O problems instead of swallowing them in the destructor.
    if let Err(e) = askit.persist_cache() {
        askit_obs::warn!(
            "askit_eval",
            "table3: could not persist the completion cache: {e}"
        );
    }
    let solved: Vec<&Outcome> = outcomes.iter().filter(|o| o.solved).collect();
    let generated: Vec<&(Duration, Duration)> = outcomes
        .iter()
        .filter_map(|o| o.generated.as_ref())
        .collect();
    // Exact integer sums: fragments of a sharded sweep add up to precisely
    // what a single full run computes (see `Table3Sums`).
    let sums = Table3Sums {
        latency_ns: solved.iter().map(|o| duration_ns(o.latency)).sum(),
        compile_ns: generated.iter().map(|g| duration_ns(g.0)).sum(),
        execution_ns: generated.iter().map(|g| duration_ns(g.1)).sum(),
    };
    column_from_sums(
        syntax,
        problems.len(),
        solved.len(),
        generated.len(),
        sums,
        askit.cache_stats(),
    )
}

/// A duration as whole nanoseconds (saturating far beyond any real sweep).
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Derives the mean columns from exact counts and sums — the single place
/// both a direct run and [`merge_fragments`] compute report numbers, so
/// the two cannot drift.
fn column_from_sums(
    syntax: Syntax,
    attempted: usize,
    solved: usize,
    generated: usize,
    sums: Table3Sums,
    cache: CacheStats,
) -> Table3Column {
    let int_mean = |total_ns: u64, n: usize| {
        if n == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(total_ns / n as u64)
        }
    };
    let latency = int_mean(sums.latency_ns, solved);
    let execution = int_mean(sums.execution_ns, generated).max(Duration::from_nanos(1));
    let compilation = int_mean(sums.compile_ns, generated);
    Table3Column {
        syntax,
        attempted,
        solved_direct: solved,
        generated,
        latency,
        execution,
        compilation,
        speedup: latency.as_secs_f64() / execution.as_secs_f64(),
        cache,
        sums,
    }
}

fn run_problem<L: LanguageModel + 'static>(
    askit: &Askit<L>,
    problem: &Gsm8kProblem,
    syntax: Syntax,
) -> Outcome {
    let task = match askit.define(askit_types::int(), &problem.template) {
        Ok(t) => t.with_tests([Example {
            input: problem.args.clone(),
            output: problem.answer.clone(),
        }]),
        Err(_) => {
            return Outcome {
                solved: false,
                latency: Duration::ZERO,
                generated: None,
            }
        }
    };

    // Direct mode (paper: "using GPT-4 as part of the application").
    let direct = match task.call_detailed(problem.args.clone()) {
        Ok(outcome) => outcome,
        Err(_) => {
            return Outcome {
                solved: false,
                latency: Duration::ZERO,
                generated: None,
            }
        }
    };
    let solved = direct.value.loosely_equals(&problem.answer);
    if !solved {
        return Outcome {
            solved: false,
            latency: direct.latency,
            generated: None,
        };
    }

    // Compiled mode, only for directly-solved problems (as in the paper:
    // "We use these 1,138 and 1,159 problems for program generation").
    let generated = task.compile(syntax).ok().map(|compiled| {
        // Warm once, then measure a tight loop for a stable µs figure.
        let _ = compiled.call(problem.args.clone());
        const ITERS: u32 = 20;
        let started = Instant::now();
        for _ in 0..ITERS {
            let _ = compiled.call(problem.args.clone());
        }
        let execution = started.elapsed() / ITERS;
        (compiled.compile_time(), execution)
    });
    Outcome {
        solved: true,
        latency: direct.latency,
        generated,
    }
}

/// Runs the full Table III experiment over `count` problems with the
/// default (auto) worker count.
pub fn run(count: usize, seed: u64) -> Table3Report {
    run_with_threads(count, seed, 0)
}

/// Runs the experiment with an explicit engine worker count (`0` = auto).
///
/// The simulated columns of the report are identical for every `threads`
/// value; only wall-clock (and the measured execution column) change.
pub fn run_with_threads(count: usize, seed: u64, threads: usize) -> Table3Report {
    run_with_cache(count, seed, threads, &CacheSetup::default())
}

/// Runs the experiment with an explicit worker count and cache persistence.
///
/// With [`CacheSetup::dir`] set, completions spill to disk per pipeline and
/// a rerun against the same directory **warm-starts**: cached conversations
/// are served without touching the model, and the report is bit-identical
/// to the cold run that populated the cache (the determinism suite enforces
/// this at several thread widths).
pub fn run_with_cache(count: usize, seed: u64, threads: usize, cache: &CacheSetup) -> Table3Report {
    run_full(count, seed, threads, cache, false)
}

/// The fully-general entry point: explicit worker count, cache
/// persistence, and speculative retry prefetch.
///
/// With `speculate` on, `run_direct` prefetches likely feedback turns
/// through the engine's pool ahead of validation. The report is
/// bit-identical with speculation on or off (the determinism suite holds
/// runs where prefetch fires to the same columns); only wall-clock and
/// cache counters may differ.
pub fn run_full(
    count: usize,
    seed: u64,
    threads: usize,
    cache: &CacheSetup,
    speculate: bool,
) -> Table3Report {
    run_full_with_backend(count, seed, threads, cache, speculate, &Backend::Mock)
}

/// Runs the experiment under an explicit [`SweepPolicy`] — the most
/// general entry point; everything else here is a shorthand for it.
pub fn run_policy(
    count: usize,
    seed: u64,
    policy: &SweepPolicy,
    backend: &Backend,
) -> Table3Report {
    let mut problems = gsm8k::problems(count, seed);
    if let Some((index, total)) = policy.shard {
        assert!(total > 0 && index < total, "shard {index}/{total}");
        // Slice *after* generating the full list: problem i is the same
        // object in every shard and in the full run, so per-problem
        // outcomes (and cached completions) are identical everywhere.
        problems = problems
            .into_iter()
            .enumerate()
            .filter_map(|(i, p)| (i % total == index).then_some(p))
            .collect();
    }
    // Distinct run seeds per pipeline: the paper attributes the TS/Py solve
    // difference to response randomness.
    let ts = run_pipeline(&problems, Syntax::Ts, seed.wrapping_add(1), policy, backend);
    let py = run_pipeline(&problems, Syntax::Py, seed.wrapping_add(2), policy, backend);
    Table3Report { ts, py }
}

/// [`run_full`] with an explicit model backend: the mock (default) or,
/// behind the `http` feature, an OpenAI-compatible HTTP service — the
/// whole harness (engine, cache, persistence, speculation, grading) is
/// identical either way.
///
/// # Panics
///
/// With an HTTP backend whose base URL does not parse (e.g. an `https://`
/// endpoint — the offline build has no TLS). Validate configurations up
/// front with `askit_llm_http::HttpLlm::new` where a panic is
/// unacceptable; the eval CLI does exactly that.
pub fn run_full_with_backend(
    count: usize,
    seed: u64,
    threads: usize,
    cache: &CacheSetup,
    speculate: bool,
    backend: &Backend,
) -> Table3Report {
    let policy = SweepPolicy::default()
        .with_threads(threads)
        .with_cache(cache.clone())
        .with_speculation(speculate);
    run_policy(count, seed, &policy, backend)
}

/// The schema tag stamped on fragment files.
const FRAGMENT_SCHEMA: &str = "askit.table3_fragment.v1";

/// One shard's contribution to a sharded Table III sweep: the shard
/// coordinates, the sweep parameters (so merging can refuse mismatched
/// fragments), and the per-pipeline counts and exact sums.
///
/// Written as JSON by `askit-eval table3 --shard I/N --fragment PATH`,
/// merged by `askit-eval merge-table3`.
#[derive(Debug, Clone)]
pub struct Table3Fragment {
    /// This shard's index in `0..shard_total`.
    pub shard_index: usize,
    /// How many shards the sweep was split into.
    pub shard_total: usize,
    /// The `--count` of the *full* sweep (not this shard's slice).
    pub count: usize,
    /// The base RNG seed of the sweep.
    pub seed: u64,
    /// This shard's report (means derived over the shard's slice only —
    /// the sums are what merging consumes).
    pub report: Table3Report,
}

impl Table3Fragment {
    /// Serializes the fragment as JSON.
    pub fn to_json(&self) -> String {
        let column = |c: &Table3Column| {
            let mut m = askit_json::Map::new();
            m.insert("syntax", Json::Str(syntax_tag(c.syntax).to_owned()));
            m.insert("attempted", int(c.attempted as u64));
            m.insert("solved", int(c.solved_direct as u64));
            m.insert("generated", int(c.generated as u64));
            m.insert("latency_ns", int(c.sums.latency_ns));
            m.insert("compile_ns", int(c.sums.compile_ns));
            m.insert("execution_ns", int(c.sums.execution_ns));
            let mut cache = askit_json::Map::new();
            for (key, value) in [
                ("hits", c.cache.hits),
                ("misses", c.cache.misses),
                ("insertions", c.cache.insertions),
                ("evictions", c.cache.evictions),
                ("invalidations", c.cache.invalidations),
                ("loaded", c.cache.loaded),
                ("expired", c.cache.expired),
                ("flushed", c.cache.flushed),
                ("entries", c.cache.entries as u64),
            ] {
                cache.insert(key, int(value));
            }
            m.insert("cache", Json::Object(cache));
            Json::Object(m)
        };
        let mut root = askit_json::Map::new();
        root.insert("schema", Json::Str(FRAGMENT_SCHEMA.to_owned()));
        root.insert("shard_index", int(self.shard_index as u64));
        root.insert("shard_total", int(self.shard_total as u64));
        root.insert("count", int(self.count as u64));
        root.insert("seed", int(self.seed));
        root.insert(
            "columns",
            Json::Array(vec![column(&self.report.ts), column(&self.report.py)]),
        );
        Json::Object(root).to_pretty_string()
    }

    /// Parses a fragment back from JSON.
    ///
    /// # Errors
    ///
    /// A description of the first problem found: malformed JSON, a wrong
    /// or missing schema tag, or missing/mistyped fields.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = Json::parse(text).map_err(|e| format!("malformed fragment: {e}"))?;
        let field = |obj: &Json, key: &str| -> Result<u64, String> {
            obj.get_key(key)
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("fragment field '{key}' missing or not a count"))
        };
        match root.get_key("schema").and_then(Json::as_str) {
            Some(FRAGMENT_SCHEMA) => {}
            Some(other) => return Err(format!("unknown fragment schema '{other}'")),
            None => return Err("fragment has no schema tag".to_owned()),
        }
        let columns = root
            .get_key("columns")
            .and_then(Json::as_array)
            .ok_or("fragment has no columns array")?;
        let [ts, py] = columns else {
            return Err(format!("expected 2 columns, found {}", columns.len()));
        };
        let parse_column = |obj: &Json, expect: Syntax| -> Result<Table3Column, String> {
            let tag = obj
                .get_key("syntax")
                .and_then(Json::as_str)
                .ok_or("column has no syntax tag")?;
            if tag != syntax_tag(expect) {
                return Err(format!(
                    "column order mismatch: expected {expect:?}, found '{tag}'"
                ));
            }
            let cache_obj = obj.get_key("cache").ok_or("column has no cache object")?;
            let cache = CacheStats {
                hits: field(cache_obj, "hits")?,
                misses: field(cache_obj, "misses")?,
                insertions: field(cache_obj, "insertions")?,
                evictions: field(cache_obj, "evictions")?,
                invalidations: field(cache_obj, "invalidations")?,
                loaded: field(cache_obj, "loaded")?,
                expired: field(cache_obj, "expired")?,
                flushed: field(cache_obj, "flushed")?,
                entries: field(cache_obj, "entries")? as usize,
            };
            let sums = Table3Sums {
                latency_ns: field(obj, "latency_ns")?,
                compile_ns: field(obj, "compile_ns")?,
                execution_ns: field(obj, "execution_ns")?,
            };
            Ok(column_from_sums(
                expect,
                field(obj, "attempted")? as usize,
                field(obj, "solved")? as usize,
                field(obj, "generated")? as usize,
                sums,
                cache,
            ))
        };
        Ok(Table3Fragment {
            shard_index: field(&root, "shard_index")? as usize,
            shard_total: field(&root, "shard_total")? as usize,
            count: field(&root, "count")? as usize,
            seed: field(&root, "seed")?,
            report: Table3Report {
                ts: parse_column(ts, Syntax::Ts)?,
                py: parse_column(py, Syntax::Py)?,
            },
        })
    }
}

fn int(v: u64) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Builds a fragment from one shard's report.
pub fn fragment(
    report: &Table3Report,
    shard: (usize, usize),
    count: usize,
    seed: u64,
) -> Table3Fragment {
    Table3Fragment {
        shard_index: shard.0,
        shard_total: shard.1,
        count,
        seed,
        report: report.clone(),
    }
}

/// Unions per-shard fragments back into the full sweep's report.
///
/// Counts and nanosecond sums add; the mean columns are re-derived from
/// the merged sums by the same integer arithmetic a single full run uses,
/// so the simulated columns of the merged report are **bit-identical** to
/// that run's. Cache counters add too (their merged hit rate is the
/// aggregate across all workers).
///
/// # Errors
///
/// When the fragments do not form exactly one complete sweep: mixed
/// seeds/counts/shard totals, a missing shard, or a shard present twice.
pub fn merge_fragments(fragments: &[Table3Fragment]) -> Result<Table3Report, String> {
    let first = fragments.first().ok_or("no fragments to merge")?;
    let total = first.shard_total;
    if fragments.len() != total {
        return Err(format!(
            "expected {total} fragments (one per shard), got {}",
            fragments.len()
        ));
    }
    let mut seen = vec![false; total];
    for f in fragments {
        if (f.seed, f.count, f.shard_total) != (first.seed, first.count, first.shard_total) {
            return Err(format!(
                "fragment {}/{} (seed {}, count {}) belongs to a different sweep \
                 than {}/{} (seed {}, count {})",
                f.shard_index,
                f.shard_total,
                f.seed,
                f.count,
                first.shard_index,
                first.shard_total,
                first.seed,
                first.count,
            ));
        }
        let slot = seen
            .get_mut(f.shard_index)
            .ok_or_else(|| format!("shard index {} out of range 0..{total}", f.shard_index))?;
        if std::mem::replace(slot, true) {
            return Err(format!("shard {} appears more than once", f.shard_index));
        }
    }
    let merge_column = |pick: fn(&Table3Report) -> &Table3Column| {
        let mut attempted = 0;
        let mut solved = 0;
        let mut generated = 0;
        let mut sums = Table3Sums::default();
        let mut cache = CacheStats::default();
        for f in fragments {
            let c = pick(&f.report);
            attempted += c.attempted;
            solved += c.solved_direct;
            generated += c.generated;
            sums.add(&c.sums);
            cache.hits += c.cache.hits;
            cache.misses += c.cache.misses;
            cache.insertions += c.cache.insertions;
            cache.evictions += c.cache.evictions;
            cache.invalidations += c.cache.invalidations;
            cache.loaded += c.cache.loaded;
            cache.expired += c.cache.expired;
            cache.flushed += c.cache.flushed;
            cache.entries += c.cache.entries;
        }
        let syntax = pick(&first.report).syntax;
        column_from_sums(syntax, attempted, solved, generated, sums, cache)
    };
    Ok(Table3Report {
        ts: merge_column(|r| &r.ts),
        py: merge_column(|r| &r.py),
    })
}

/// The determinism digest of a report: exactly the simulated fields, as
/// one line of compact JSON with a fixed key order.
///
/// Two digests are equal iff the runs agree on every deterministic number
/// — solve counts, generation counts, and the exact simulated-latency
/// sum. Measured time (execution, and the real-validation share inside
/// compilation) and cache counters are excluded: they legitimately vary
/// by machine and by how work was split. CI compares the digest of a
/// merged multi-process sweep against a single-process reference run.
pub fn digest(report: &Table3Report) -> String {
    let column = |c: &Table3Column| {
        format!(
            "{{\"attempted\":{},\"solved\":{},\"generated\":{},\"latency_ns\":{}}}",
            c.attempted, c.solved_direct, c.generated, c.sums.latency_ns,
        )
    };
    format!(
        "{{\"ts\":{},\"py\":{}}}",
        column(&report.ts),
        column(&report.py)
    )
}

/// Renders the paper's table plus the solve counts.
pub fn render(report: &Table3Report) -> String {
    let mut table = Table::new(["Average Metrics", "TypeScript", "Python"]);
    table.row([
        "Latency (s)".to_owned(),
        format!("{:.2}", report.ts.latency.as_secs_f64()),
        format!("{:.2}", report.py.latency.as_secs_f64()),
    ]);
    table.row([
        "Execution Time (us)".to_owned(),
        format!("{:.2}", report.ts.execution.as_secs_f64() * 1e6),
        format!("{:.2}", report.py.execution.as_secs_f64() * 1e6),
    ]);
    table.row([
        "Compilation Time (s)".to_owned(),
        format!("{:.2}", report.ts.compilation.as_secs_f64()),
        format!("{:.2}", report.py.compilation.as_secs_f64()),
    ]);
    table.row([
        "Speedup Ratio".to_owned(),
        format!("{:.2}", report.ts.speedup),
        format!("{:.2}", report.py.speedup),
    ]);
    format!(
        "Table III — GSM8K (paper: speedup 275,092.55x TS / 6,969,904.73x Py; solved 1,138 & 1,159 of 1,319; generated 1,114 & 1,134)\n\n{}\nsolved directly: TS {}/{}  Py {}/{}\nprograms generated: TS {}  Py {}\ncompletion cache (TS): {}\ncompletion cache (Py): {}\n(latency is simulated by the serving model; execution/compilation validation are measured)\n",
        table.render(),
        report.ts.solved_direct,
        report.ts.attempted,
        report.py.solved_direct,
        report.py.attempted,
        report.ts.generated,
        report.py.generated,
        report.ts.cache,
        report.py.cache,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The same harness, pointed at an OpenAI-compatible HTTP service (the
    /// loopback server): the sweep runs to completion over the wire, every
    /// problem is attempted, and grading happens against the dataset's own
    /// answers — the server needs no oracle.
    #[cfg(feature = "http")]
    #[test]
    fn table3_runs_against_an_http_backend() {
        use askit_llm_http::{HttpLlmConfig, LoopbackServer, Reply};
        let server = LoopbackServer::start().unwrap();
        // A minimal "model": answer every direct prompt with a well-formed
        // JSON answer (sum of the prompt's integers — usually wrong, which
        // also exercises the retry loop over the wire).
        server.set_default_handler(|request| {
            let prompt = request.last_user.as_deref().unwrap_or("");
            let mut sum: i64 = 0;
            let mut digits = String::new();
            for c in prompt.chars().chain([' ']) {
                if c.is_ascii_digit() {
                    digits.push(c);
                } else if !digits.is_empty() {
                    sum += digits.parse::<i64>().unwrap_or(0);
                    digits.clear();
                }
            }
            Reply::Text(format!(
                "```json\n{{\"reason\": \"r\", \"answer\": {sum}}}\n```"
            ))
        });
        let backend = Backend::Http(Box::new(HttpLlmConfig::new(server.api_base())));
        let report = run_full_with_backend(3, 99, 2, &CacheSetup::default(), false, &backend);
        assert_eq!(report.ts.attempted, 3);
        assert_eq!(report.py.attempted, 3);
        assert!(server.hits() >= 6, "every problem reached the wire");
        // Grading is against the dataset's answers; a sum-of-integers
        // stand-in may or may not solve any, but the counts must be sane.
        assert!(report.ts.solved_direct <= 3 && report.py.solved_direct <= 3);
    }

    #[test]
    fn sharded_fragments_merge_to_the_full_run() {
        let policy = SweepPolicy::default().with_threads(2);
        let full = run_policy(24, 7, &policy, &Backend::Mock);
        let fragments: Vec<Table3Fragment> = (0..3)
            .map(|i| {
                let shard = policy.clone().with_shard(i, 3);
                fragment(&run_policy(24, 7, &shard, &Backend::Mock), (i, 3), 24, 7)
            })
            .collect();
        let merged = merge_fragments(&fragments).unwrap();
        assert_eq!(digest(&merged), digest(&full), "merge must be exact");
        // JSON roundtrip preserves everything the merge consumes.
        let reparsed: Vec<Table3Fragment> = fragments
            .iter()
            .map(|f| Table3Fragment::from_json(&f.to_json()).unwrap())
            .collect();
        assert_eq!(digest(&merge_fragments(&reparsed).unwrap()), digest(&full));
    }

    #[test]
    fn merge_rejects_incomplete_or_mismatched_sweeps() {
        let policy = SweepPolicy::default().with_threads(2).with_shard(0, 2);
        let report = run_policy(8, 7, &policy, &Backend::Mock);
        let f0 = fragment(&report, (0, 2), 8, 7);
        assert!(merge_fragments(std::slice::from_ref(&f0))
            .unwrap_err()
            .contains("expected 2"));
        let mut dup = f0.clone();
        dup.shard_index = 0;
        assert!(merge_fragments(&[f0.clone(), dup])
            .unwrap_err()
            .contains("more than once"));
        let mut other_sweep = f0.clone();
        other_sweep.shard_index = 1;
        other_sweep.seed = 99;
        assert!(merge_fragments(&[f0, other_sweep])
            .unwrap_err()
            .contains("different sweep"));
    }

    #[test]
    fn fragment_parser_rejects_garbage() {
        assert!(Table3Fragment::from_json("not json").is_err());
        assert!(Table3Fragment::from_json("{\"schema\":\"nope\"}").is_err());
        assert!(Table3Fragment::from_json("{}").is_err());
    }

    #[test]
    fn table3_small_run_matches_the_paper_shape() {
        let report = run(60, 99);
        for col in [&report.ts, &report.py] {
            assert_eq!(col.attempted, 60);
            // Solve rate near the paper's ~87%.
            let rate = col.solved_direct as f64 / col.attempted as f64;
            assert!(
                (0.7..1.0).contains(&rate),
                "{:?} solve rate {rate}",
                col.syntax
            );
            // Nearly all solved problems also generate code.
            assert!(col.generated as f64 >= 0.85 * col.solved_direct as f64);
            // Latency is seconds; execution is microseconds: that *is* the claim.
            assert!(col.latency.as_secs_f64() > 1.0, "{:?}", col.latency);
            assert!(col.execution.as_secs_f64() < 1e-3, "{:?}", col.execution);
            assert!(col.speedup > 10_000.0, "speedup {}", col.speedup);
        }
        // The two runs differ (independent sampling), like the paper's.
        assert_ne!(report.ts.solved_direct, report.py.solved_direct);
        let rendered = render(&report);
        assert!(rendered.contains("Speedup Ratio"));
    }
}
