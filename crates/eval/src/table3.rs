//! Table III: GSM8K — direct LLM answering vs generated code.
//!
//! For every problem the harness (1) answers it directly through the AskIt
//! runtime, recording the simulated model latency; (2) if solved, compiles
//! the same template and measures the *real* execution time of the generated
//! function plus its compilation time. The headline is the speedup ratio.
//!
//! Problems are independent, so the sweep fans out over the execution
//! engine's worker pool — full-scale runs touch 1,319 problems twice. The
//! mock model derives its randomness per conversation, so every thread
//! count produces identical simulated numbers (solve counts, latency,
//! compilation time); only the measured execution-time column varies with
//! the machine.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use askit_core::{Askit, AskitConfig, Example};
use askit_datasets::gsm8k::{self, Gsm8kProblem};
use askit_exec::{CacheStats, EngineConfig};
use askit_llm::{Escalation, LanguageModel, MockLlm, MockLlmConfig, Oracle};
use minilang::Syntax;

use crate::report::{mean, Table};

/// Aggregates for one pipeline (one column of Table III).
#[derive(Debug, Clone)]
pub struct Table3Column {
    /// The pipeline's surface syntax.
    pub syntax: Syntax,
    /// Problems attempted.
    pub attempted: usize,
    /// Problems the model solved directly (paper: 1,138 TS / 1,159 Py).
    pub solved_direct: usize,
    /// Problems whose code generation also succeeded (paper: 1,114 / 1,134).
    pub generated: usize,
    /// Mean model latency per direct answer (paper: 13.28 s / 22.97 s).
    pub latency: Duration,
    /// Mean execution time of generated functions (paper: 49.11 µs / 5.09 µs).
    pub execution: Duration,
    /// Mean compilation time (paper: 14.19 s / 20.38 s).
    pub compilation: Duration,
    /// latency / execution (paper: 275,092.55× / 6,969,904.73×).
    pub speedup: f64,
    /// Completion-cache counters at the end of the sweep (hit rate,
    /// invalidations from rejected attempts, entries loaded from disk).
    pub cache: CacheStats,
}

/// The full experiment output.
#[derive(Debug, Clone)]
pub struct Table3Report {
    /// The TypeScript pipeline column.
    pub ts: Table3Column,
    /// The Python pipeline column.
    pub py: Table3Column,
}

/// Per-problem outcome collected by the workers.
struct Outcome {
    solved: bool,
    latency: Duration,
    generated: Option<(Duration, Duration)>, // (compile, execution)
}

/// Cache-persistence knobs for a sweep: where the completion cache spills
/// to, and how long its entries stay servable. With a directory set, a
/// rerun of the same experiment warm-starts from the previous process's
/// completions instead of re-deriving them.
#[derive(Debug, Clone, Default)]
pub struct CacheSetup {
    /// Root directory; each pipeline persists under its own subdirectory
    /// (see [`run_with_cache`]). `None` = in-memory only.
    pub dir: Option<PathBuf>,
    /// Default entry TTL (`None` = entries never expire).
    pub ttl: Option<Duration>,
}

/// Every execution-policy knob of a sweep in one place: how wide the
/// engine fans out, where completions persist, and which of the optional
/// scheduling features are on.
///
/// `threads`, `cache`, `speculate`, and `adaptive` may only change *how*
/// the sweep runs — the report is bit-identical with any combination (the
/// determinism suite holds thread counts 1/4/8 with adaptation on to the
/// same columns). `escalate` is the exception: it deliberately changes
/// routing (first attempts go to the cheap tier), so its latency column
/// reflects the ladder, not the strong model alone.
#[derive(Debug, Clone, Default)]
pub struct SweepPolicy {
    /// Engine worker threads (`0` = auto: `ASKIT_WORKERS`, then the
    /// machine's available parallelism).
    pub threads: usize,
    /// Completion-cache persistence (see [`CacheSetup`]).
    pub cache: CacheSetup,
    /// Speculative retry prefetch (see [`run_full`]).
    pub speculate: bool,
    /// Per-model AIMD width adaptation: the engine grows each model's
    /// admission width on success and cuts it on throttles/timeouts
    /// (`askit_exec::Scheduler`). Timing-only; results never change.
    pub adaptive: bool,
    /// Tiered model escalation: route first attempts to the cheap tier and
    /// climb the [`Escalation::cheap_first`] ladder on validation failure.
    pub escalate: bool,
}

impl SweepPolicy {
    /// Overrides the engine worker count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides cache persistence.
    #[must_use]
    pub fn with_cache(mut self, cache: CacheSetup) -> Self {
        self.cache = cache;
        self
    }

    /// Enables speculative retry prefetch.
    #[must_use]
    pub fn with_speculation(mut self, speculate: bool) -> Self {
        self.speculate = speculate;
        self
    }

    /// Enables AIMD width adaptation.
    #[must_use]
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Enables tiered model escalation.
    #[must_use]
    pub fn with_escalation(mut self, escalate: bool) -> Self {
        self.escalate = escalate;
        self
    }
}

/// Which language-model backend serves a sweep.
///
/// The reproduction's default is the simulated GPT ([`Backend::Mock`]),
/// whose answers are derived from the dataset oracle — deterministic at
/// any thread count. With the `http` cargo feature, `Backend::Http`
/// points the *same* harness (engine, cache, retry loop, grading) at an
/// OpenAI-compatible service instead; solve counts then measure the real
/// model behind that endpoint.
#[derive(Debug, Clone, Default)]
pub enum Backend {
    /// The deterministic simulated GPT (the default).
    #[default]
    Mock,
    /// An OpenAI-compatible HTTP service (boxed: the configuration is an
    /// order of magnitude larger than the unit `Mock` variant).
    #[cfg(feature = "http")]
    Http(Box<askit_llm_http::HttpLlmConfig>),
}

fn syntax_tag(syntax: Syntax) -> &'static str {
    match syntax {
        Syntax::Ts => "ts",
        Syntax::Py => "py",
    }
}

fn run_pipeline(
    problems: &[Gsm8kProblem],
    syntax: Syntax,
    run_seed: u64,
    policy: &SweepPolicy,
    backend: &Backend,
) -> Table3Column {
    match backend {
        Backend::Mock => {
            let mut oracle = Oracle::standard();
            gsm8k::register_oracle(&mut oracle, problems, run_seed);
            let llm = MockLlm::new(MockLlmConfig::gpt4().with_seed(run_seed), oracle);
            run_pipeline_with(llm, problems, syntax, run_seed, policy)
        }
        #[cfg(feature = "http")]
        Backend::Http(config) => {
            // Construction only fails on a malformed base URL (the eval
            // CLI validates up front; library callers hit this directly).
            let llm = askit_llm_http::HttpLlm::new((**config).clone())
                .unwrap_or_else(|e| panic!("invalid http backend configuration: {e}"));
            run_pipeline_with(llm, problems, syntax, run_seed, policy)
        }
    }
}

fn run_pipeline_with<L: LanguageModel + 'static>(
    llm: L,
    problems: &[Gsm8kProblem],
    syntax: Syntax,
    run_seed: u64,
    policy: &SweepPolicy,
) -> Table3Column {
    let mut engine_config = EngineConfig::default()
        .with_workers(policy.threads)
        .with_adaptive(policy.adaptive);
    if let Some(dir) = &policy.cache.dir {
        // One cache universe per (pipeline, run seed): the mock's responses
        // depend on its seed, so pipelines must never share entries — a TS
        // completion replayed into the Python sweep would silently change
        // its numbers.
        engine_config.cache_dir = Some(dir.join(format!("{}-{run_seed}", syntax_tag(syntax))));
        engine_config.cache_ttl = policy.cache.ttl;
    }
    let mut askit_config = AskitConfig::default().with_speculation(policy.speculate);
    if policy.escalate {
        askit_config = askit_config.with_escalation(Escalation::cheap_first());
    }
    let askit = Askit::new(llm)
        .with_config(askit_config)
        .with_engine_config(engine_config);
    if policy.adaptive || policy.escalate {
        let engine = askit.engine();
        eprintln!(
            "table3[{}]: scheduler widths: {}{}",
            syntax_tag(syntax),
            engine.describe_widths(),
            if policy.escalate {
                "  escalation: gpt35 -> gpt4"
            } else {
                ""
            },
        );
    }

    let outcomes: Vec<Outcome> = askit
        .engine()
        .map(problems, |_, problem| run_problem(&askit, problem, syntax));
    // Dropping `askit` would flush too; flushing explicitly lets us surface
    // I/O problems instead of swallowing them in the destructor.
    if let Err(e) = askit.persist_cache() {
        eprintln!("table3: could not persist the completion cache: {e}");
    }
    let solved: Vec<&Outcome> = outcomes.iter().filter(|o| o.solved).collect();
    let generated: Vec<&(Duration, Duration)> = outcomes
        .iter()
        .filter_map(|o| o.generated.as_ref())
        .collect();
    let latency_mean = mean(
        &solved
            .iter()
            .map(|o| o.latency.as_secs_f64())
            .collect::<Vec<_>>(),
    );
    let exec_mean = mean(
        &generated
            .iter()
            .map(|g| g.1.as_secs_f64())
            .collect::<Vec<_>>(),
    );
    let compile_mean = mean(
        &generated
            .iter()
            .map(|g| g.0.as_secs_f64())
            .collect::<Vec<_>>(),
    );
    Table3Column {
        syntax,
        attempted: problems.len(),
        solved_direct: solved.len(),
        generated: generated.len(),
        latency: Duration::from_secs_f64(latency_mean),
        execution: Duration::from_secs_f64(exec_mean.max(1e-9)),
        compilation: Duration::from_secs_f64(compile_mean),
        speedup: latency_mean / exec_mean.max(1e-9),
        cache: askit.cache_stats(),
    }
}

fn run_problem<L: LanguageModel + 'static>(
    askit: &Askit<L>,
    problem: &Gsm8kProblem,
    syntax: Syntax,
) -> Outcome {
    let task = match askit.define(askit_types::int(), &problem.template) {
        Ok(t) => t.with_tests([Example {
            input: problem.args.clone(),
            output: problem.answer.clone(),
        }]),
        Err(_) => {
            return Outcome {
                solved: false,
                latency: Duration::ZERO,
                generated: None,
            }
        }
    };

    // Direct mode (paper: "using GPT-4 as part of the application").
    let direct = match task.call_detailed(problem.args.clone()) {
        Ok(outcome) => outcome,
        Err(_) => {
            return Outcome {
                solved: false,
                latency: Duration::ZERO,
                generated: None,
            }
        }
    };
    let solved = direct.value.loosely_equals(&problem.answer);
    if !solved {
        return Outcome {
            solved: false,
            latency: direct.latency,
            generated: None,
        };
    }

    // Compiled mode, only for directly-solved problems (as in the paper:
    // "We use these 1,138 and 1,159 problems for program generation").
    let generated = task.compile(syntax).ok().map(|compiled| {
        // Warm once, then measure a tight loop for a stable µs figure.
        let _ = compiled.call(problem.args.clone());
        const ITERS: u32 = 20;
        let started = Instant::now();
        for _ in 0..ITERS {
            let _ = compiled.call(problem.args.clone());
        }
        let execution = started.elapsed() / ITERS;
        (compiled.compile_time(), execution)
    });
    Outcome {
        solved: true,
        latency: direct.latency,
        generated,
    }
}

/// Runs the full Table III experiment over `count` problems with the
/// default (auto) worker count.
pub fn run(count: usize, seed: u64) -> Table3Report {
    run_with_threads(count, seed, 0)
}

/// Runs the experiment with an explicit engine worker count (`0` = auto).
///
/// The simulated columns of the report are identical for every `threads`
/// value; only wall-clock (and the measured execution column) change.
pub fn run_with_threads(count: usize, seed: u64, threads: usize) -> Table3Report {
    run_with_cache(count, seed, threads, &CacheSetup::default())
}

/// Runs the experiment with an explicit worker count and cache persistence.
///
/// With [`CacheSetup::dir`] set, completions spill to disk per pipeline and
/// a rerun against the same directory **warm-starts**: cached conversations
/// are served without touching the model, and the report is bit-identical
/// to the cold run that populated the cache (the determinism suite enforces
/// this at several thread widths).
pub fn run_with_cache(count: usize, seed: u64, threads: usize, cache: &CacheSetup) -> Table3Report {
    run_full(count, seed, threads, cache, false)
}

/// The fully-general entry point: explicit worker count, cache
/// persistence, and speculative retry prefetch.
///
/// With `speculate` on, `run_direct` prefetches likely feedback turns
/// through the engine's pool ahead of validation. The report is
/// bit-identical with speculation on or off (the determinism suite holds
/// runs where prefetch fires to the same columns); only wall-clock and
/// cache counters may differ.
pub fn run_full(
    count: usize,
    seed: u64,
    threads: usize,
    cache: &CacheSetup,
    speculate: bool,
) -> Table3Report {
    run_full_with_backend(count, seed, threads, cache, speculate, &Backend::Mock)
}

/// Runs the experiment under an explicit [`SweepPolicy`] — the most
/// general entry point; everything else here is a shorthand for it.
pub fn run_policy(
    count: usize,
    seed: u64,
    policy: &SweepPolicy,
    backend: &Backend,
) -> Table3Report {
    let problems = gsm8k::problems(count, seed);
    // Distinct run seeds per pipeline: the paper attributes the TS/Py solve
    // difference to response randomness.
    let ts = run_pipeline(&problems, Syntax::Ts, seed.wrapping_add(1), policy, backend);
    let py = run_pipeline(&problems, Syntax::Py, seed.wrapping_add(2), policy, backend);
    Table3Report { ts, py }
}

/// [`run_full`] with an explicit model backend: the mock (default) or,
/// behind the `http` feature, an OpenAI-compatible HTTP service — the
/// whole harness (engine, cache, persistence, speculation, grading) is
/// identical either way.
///
/// # Panics
///
/// With an HTTP backend whose base URL does not parse (e.g. an `https://`
/// endpoint — the offline build has no TLS). Validate configurations up
/// front with `askit_llm_http::HttpLlm::new` where a panic is
/// unacceptable; the eval CLI does exactly that.
pub fn run_full_with_backend(
    count: usize,
    seed: u64,
    threads: usize,
    cache: &CacheSetup,
    speculate: bool,
    backend: &Backend,
) -> Table3Report {
    let policy = SweepPolicy::default()
        .with_threads(threads)
        .with_cache(cache.clone())
        .with_speculation(speculate);
    run_policy(count, seed, &policy, backend)
}

/// Renders the paper's table plus the solve counts.
pub fn render(report: &Table3Report) -> String {
    let mut table = Table::new(["Average Metrics", "TypeScript", "Python"]);
    table.row([
        "Latency (s)".to_owned(),
        format!("{:.2}", report.ts.latency.as_secs_f64()),
        format!("{:.2}", report.py.latency.as_secs_f64()),
    ]);
    table.row([
        "Execution Time (us)".to_owned(),
        format!("{:.2}", report.ts.execution.as_secs_f64() * 1e6),
        format!("{:.2}", report.py.execution.as_secs_f64() * 1e6),
    ]);
    table.row([
        "Compilation Time (s)".to_owned(),
        format!("{:.2}", report.ts.compilation.as_secs_f64()),
        format!("{:.2}", report.py.compilation.as_secs_f64()),
    ]);
    table.row([
        "Speedup Ratio".to_owned(),
        format!("{:.2}", report.ts.speedup),
        format!("{:.2}", report.py.speedup),
    ]);
    format!(
        "Table III — GSM8K (paper: speedup 275,092.55x TS / 6,969,904.73x Py; solved 1,138 & 1,159 of 1,319; generated 1,114 & 1,134)\n\n{}\nsolved directly: TS {}/{}  Py {}/{}\nprograms generated: TS {}  Py {}\ncompletion cache (TS): {}\ncompletion cache (Py): {}\n(latency is simulated by the serving model; execution/compilation validation are measured)\n",
        table.render(),
        report.ts.solved_direct,
        report.ts.attempted,
        report.py.solved_direct,
        report.py.attempted,
        report.ts.generated,
        report.py.generated,
        report.ts.cache,
        report.py.cache,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The same harness, pointed at an OpenAI-compatible HTTP service (the
    /// loopback server): the sweep runs to completion over the wire, every
    /// problem is attempted, and grading happens against the dataset's own
    /// answers — the server needs no oracle.
    #[cfg(feature = "http")]
    #[test]
    fn table3_runs_against_an_http_backend() {
        use askit_llm_http::{HttpLlmConfig, LoopbackServer, Reply};
        let server = LoopbackServer::start().unwrap();
        // A minimal "model": answer every direct prompt with a well-formed
        // JSON answer (sum of the prompt's integers — usually wrong, which
        // also exercises the retry loop over the wire).
        server.set_default_handler(|request| {
            let prompt = request.last_user.as_deref().unwrap_or("");
            let mut sum: i64 = 0;
            let mut digits = String::new();
            for c in prompt.chars().chain([' ']) {
                if c.is_ascii_digit() {
                    digits.push(c);
                } else if !digits.is_empty() {
                    sum += digits.parse::<i64>().unwrap_or(0);
                    digits.clear();
                }
            }
            Reply::Text(format!(
                "```json\n{{\"reason\": \"r\", \"answer\": {sum}}}\n```"
            ))
        });
        let backend = Backend::Http(Box::new(HttpLlmConfig::new(server.api_base())));
        let report = run_full_with_backend(3, 99, 2, &CacheSetup::default(), false, &backend);
        assert_eq!(report.ts.attempted, 3);
        assert_eq!(report.py.attempted, 3);
        assert!(server.hits() >= 6, "every problem reached the wire");
        // Grading is against the dataset's answers; a sum-of-integers
        // stand-in may or may not solve any, but the counts must be sane.
        assert!(report.ts.solved_direct <= 3 && report.py.solved_direct <= 3);
    }

    #[test]
    fn table3_small_run_matches_the_paper_shape() {
        let report = run(60, 99);
        for col in [&report.ts, &report.py] {
            assert_eq!(col.attempted, 60);
            // Solve rate near the paper's ~87%.
            let rate = col.solved_direct as f64 / col.attempted as f64;
            assert!(
                (0.7..1.0).contains(&rate),
                "{:?} solve rate {rate}",
                col.syntax
            );
            // Nearly all solved problems also generate code.
            assert!(col.generated as f64 >= 0.85 * col.solved_direct as f64);
            // Latency is seconds; execution is microseconds: that *is* the claim.
            assert!(col.latency.as_secs_f64() > 1.0, "{:?}", col.latency);
            assert!(col.execution.as_secs_f64() < 1e-3, "{:?}", col.execution);
            assert!(col.speedup > 10_000.0, "speedup {}", col.speedup);
        }
        // The two runs differ (independent sampling), like the paper's.
        assert_ne!(report.ts.solved_direct, report.py.solved_direct);
        let rendered = render(&report);
        assert!(rendered.contains("Speedup Ratio"));
    }
}
