//! # askit-eval
//!
//! The experiment harness: one module per table/figure of the AskIt paper's
//! evaluation (§IV), each with a `run` function returning a typed report and
//! a `render` function producing the text artifact. The `askit-eval` binary
//! drives them and writes results under `reports/`.
//!
//! | module | reproduces | paper result |
//! |---|---|---|
//! | [`table2`] | Table II | 50 tasks, avg 7.56/6.52 LOC, Py fails #11, #21–24 |
//! | [`fig5`] | Figure 5 | 139/164 success, 8.05 vs 7.57 LOC |
//! | [`fig6`] | Figure 6 | 16.14% mean prompt reduction |
//! | [`fig7`] | Figure 7 | type-usage counts |
//! | [`table3`] | Table III | 275,092× / 6,969,904× speedups |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod report;
#[cfg(feature = "serve")]
pub mod serve_cmd;
pub mod table2;
pub mod table3;

/// The default seed experiments run with (fixed for reproducibility).
pub const DEFAULT_SEED: u64 = 20240302; // CGO 2024's opening day
