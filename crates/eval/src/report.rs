//! Report rendering: ASCII tables, text histograms, file output.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple column-aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with blanks).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a header separator.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<width$}");
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Renders a text histogram over bucketed values.
///
/// `bucket` is the bucket width; values ≥ `max` land in the last bucket.
pub fn histogram(values: &[f64], bucket: f64, max: f64, label: &str) -> String {
    let buckets = (max / bucket).ceil() as usize;
    let mut counts = vec![0usize; buckets.max(1)];
    for &v in values {
        let idx = ((v / bucket) as usize).min(counts.len() - 1);
        counts[idx] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = format!("{label}\n");
    for (i, &c) in counts.iter().enumerate() {
        let lo = i as f64 * bucket;
        let hi = lo + bucket;
        let bar_len = (c * 50).div_ceil(peak);
        let _ = writeln!(
            out,
            "{lo:>6.0}-{hi:<6.0} | {:<50} {c}",
            "#".repeat(if c == 0 { 0 } else { bar_len.max(1) })
        );
    }
    out
}

/// Renders a labelled bar chart (for Figure 7's grouped counts).
pub fn bar_chart(entries: &[(String, usize)], label: &str) -> String {
    let peak = entries.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    let name_width = entries
        .iter()
        .map(|(n, _)| n.chars().count())
        .max()
        .unwrap_or(4);
    let mut out = format!("{label}\n");
    for (name, count) in entries {
        let bar_len = (count * 40).div_ceil(peak);
        let _ = writeln!(
            out,
            "{name:<name_width$} | {:<40} {count}",
            "#".repeat(if *count == 0 { 0 } else { bar_len.max(1) })
        );
    }
    out
}

/// The directory reports are written to (override with `ASKIT_REPORTS_DIR`).
pub fn reports_dir() -> PathBuf {
    std::env::var_os("ASKIT_REPORTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("reports"))
}

/// Writes a report file and returns its path.
///
/// # Errors
///
/// Propagates I/O errors as a string (the harness prints and continues).
pub fn write_report(name: &str, content: &str) -> Result<PathBuf, String> {
    let dir = reports_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(name);
    std::fs::write(&path, content).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(["#", "name", "loc"]);
        t.row(["1", "reverse", "5"]);
        t.row(["20", "x", "10"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("#   name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("reverse"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn histogram_buckets_and_clamps() {
        let h = histogram(&[5.0, 10.0, 55.0, 1000.0], 50.0, 100.0, "test");
        assert!(h.contains("test"));
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 3, "{h}");
        assert!(lines[1].trim_end().ends_with('2'), "{h}"); // 5 and 10
        assert!(lines[2].trim_end().ends_with('2'), "{h}"); // 55 and clamped 1000
    }

    #[test]
    fn bar_chart_scales() {
        let c = bar_chart(&[("string".into(), 20), ("number".into(), 5)], "types");
        assert!(c.contains("string"));
        assert!(
            c.lines().nth(1).unwrap().matches('#').count()
                > c.lines().nth(2).unwrap().matches('#').count()
        );
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
