//! Figure 7: how often each type constructor is used across the evals
//! benchmarks (top-level vs anywhere).

use askit_types::stats::{TypeStats, TypeTag};

use crate::report::bar_chart;

/// The experiment output: the two count series of Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7Report {
    /// The collected statistics.
    pub stats: TypeStats,
}

/// Runs the Figure 7 analysis (purely static — no model involved).
pub fn run() -> Fig7Report {
    let benchmarks = askit_datasets::evals::benchmarks();
    let stats = TypeStats::collect(benchmarks.iter().map(|b| &b.answer_type));
    Fig7Report { stats }
}

/// Renders both bar series in the paper's tag order.
pub fn render(report: &Fig7Report) -> String {
    let all: Vec<(String, usize)> = TypeTag::ALL
        .iter()
        .map(|t| (t.to_string(), report.stats.count(*t, true)))
        .collect();
    let top: Vec<(String, usize)> = TypeTag::ALL
        .iter()
        .map(|t| (t.to_string(), report.stats.count(*t, false)))
        .collect();
    format!(
        "Figure 7 — type usage across the 50 benchmarks (paper: string most frequent top-level; literal frequent among all types)\n\n{}\n{}",
        bar_chart(&all, "All types"),
        bar_chart(&top, "Top-level types"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_matches_the_paper_shape() {
        let report = run();
        let s = &report.stats;
        assert_eq!(s.total_top_level(), 50);
        // Paper ordering: string > number > boolean at top level.
        assert!(s.count(TypeTag::String, false) > s.count(TypeTag::Number, false));
        assert!(s.count(TypeTag::Number, false) > s.count(TypeTag::Boolean, false));
        // Literals appear only nested (inside unions).
        assert_eq!(s.count(TypeTag::Literal, false), 0);
        assert!(s.count(TypeTag::Literal, true) > s.count(TypeTag::Union, true));
        let rendered = render(&report);
        assert!(rendered.contains("All types"));
        assert!(rendered.contains("Top-level types"));
    }
}
