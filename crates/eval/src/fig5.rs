//! Figure 5: HumanEval — generated vs hand-written lines of code.

use askit_core::{Askit, AskitConfig};
use askit_datasets::humaneval::{self, HumanEvalTask};
use askit_exec::EngineConfig;
use askit_llm::{MockLlm, MockLlmConfig, Oracle};
use minilang::Syntax;

use crate::report::{mean, Table};

/// One scatter point.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Task id.
    pub id: usize,
    /// Hand-written solution LOC (x-axis).
    pub hand_loc: usize,
    /// Generated solution LOC (y-axis).
    pub generated_loc: usize,
    /// LOC of the AskIt source (define + example lines).
    pub askit_loc: usize,
}

/// The full experiment output.
#[derive(Debug, Clone)]
pub struct Fig5Report {
    /// Points for tasks whose generation succeeded.
    pub points: Vec<Fig5Point>,
    /// Total number of tasks attempted.
    pub total: usize,
    /// Number of successes (paper: 139/164 = 84.8%).
    pub successes: usize,
    /// Mean generated LOC (paper: 8.05).
    pub generated_avg: f64,
    /// Mean hand-written LOC (paper: 7.57).
    pub hand_avg: f64,
    /// Mean AskIt-source LOC (paper: 23.74, with large example sets).
    pub askit_avg: f64,
    /// Mean of generated/hand-written ratios (paper: 1.27×).
    pub ratio_avg: f64,
    /// Fraction of tasks where generated code is shorter (paper: 35.3%).
    pub shorter_fraction: f64,
}

/// The LOC a developer writes in AskIt for a task: the one-line `define`
/// plus one line per training/test example (the paper counts these).
fn askit_source_loc(task: &HumanEvalTask) -> usize {
    1 + task.few_shot.len() + task.tests.len()
}

/// Runs the Figure 5 experiment with the default (auto) worker count.
pub fn run(seed: u64) -> Fig5Report {
    run_with_threads(seed, 0)
}

/// Runs the experiment batching the 164 tasks across the engine's worker
/// pool (`threads == 0` means auto).
pub fn run_with_threads(seed: u64, threads: usize) -> Fig5Report {
    let mut oracle = Oracle::standard();
    humaneval::register_oracle(&mut oracle);
    let llm = MockLlm::new(MockLlmConfig::gpt35().with_seed(seed), oracle);
    let askit = Askit::new(llm)
        .with_config(AskitConfig::default())
        .with_engine_config(EngineConfig::default().with_workers(threads));

    let tasks = humaneval::tasks();
    let total = tasks.len();
    let points: Vec<Fig5Point> = askit
        .engine()
        .map(&tasks, |_, task| {
            let defined = askit
                .define(task.return_type.clone(), &task.prompt)
                .expect("catalogue prompts parse")
                .with_param_types(task.param_types.clone())
                .with_examples(task.few_shot.clone())
                .with_tests(task.tests.clone());
            defined.compile(Syntax::Ts).ok().map(|compiled| Fig5Point {
                id: task.id,
                hand_loc: task.reference_loc(),
                generated_loc: compiled.loc(),
                askit_loc: askit_source_loc(task),
            })
        })
        .into_iter()
        .flatten()
        .collect();

    let successes = points.len();
    let generated: Vec<f64> = points.iter().map(|p| p.generated_loc as f64).collect();
    let hand: Vec<f64> = points.iter().map(|p| p.hand_loc as f64).collect();
    let askit_locs: Vec<f64> = points.iter().map(|p| p.askit_loc as f64).collect();
    let ratios: Vec<f64> = points
        .iter()
        .map(|p| p.generated_loc as f64 / p.hand_loc.max(1) as f64)
        .collect();
    let shorter = points
        .iter()
        .filter(|p| p.generated_loc < p.hand_loc)
        .count();
    Fig5Report {
        total,
        successes,
        generated_avg: mean(&generated),
        hand_avg: mean(&hand),
        askit_avg: mean(&askit_locs),
        ratio_avg: mean(&ratios),
        shorter_fraction: if successes == 0 {
            0.0
        } else {
            shorter as f64 / successes as f64
        },
        points,
    }
}

/// Renders the report: summary plus the scatter data as CSV-ish rows.
pub fn render(report: &Fig5Report) -> String {
    let mut table = Table::new(["task", "hand-written LOC", "generated LOC", "askit LOC"]);
    for p in &report.points {
        table.row([
            p.id.to_string(),
            p.hand_loc.to_string(),
            p.generated_loc.to_string(),
            p.askit_loc.to_string(),
        ]);
    }
    format!(
        "Figure 5 — HumanEval LOC scatter (paper: 139/164 = 84.8% success; generated 8.05 vs hand-written 7.57 LOC; 35.3% shorter)\n\nsuccess rate: {}/{} = {:.1}%\nmean generated LOC: {:.2}\nmean hand-written LOC: {:.2}\nmean AskIt-source LOC: {:.2}\nmean generated/hand ratio: {:.2}x\ngenerated shorter than hand-written: {:.1}%\n\n{}",
        report.successes,
        report.total,
        100.0 * report.successes as f64 / report.total as f64,
        report.generated_avg,
        report.hand_avg,
        report.askit_avg,
        report.ratio_avg,
        100.0 * report.shorter_fraction,
        table.render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_matches_the_paper_shape() {
        let report = run(7);
        assert_eq!(report.total, 164);
        // Paper: 139/164. Hard tasks always fail; easy ones nearly always
        // succeed (a rare fault streak may sink one).
        assert!(
            (135..=140).contains(&report.successes),
            "successes {}",
            report.successes
        );
        assert!(
            report.generated_avg > report.hand_avg,
            "generated code is a bit longer"
        );
        assert!(
            (0.2..0.5).contains(&report.shorter_fraction),
            "shorter fraction {}",
            report.shorter_fraction
        );
        assert!(report.askit_avg >= 4.0, "define + examples lines");
        let rendered = render(&report);
        assert!(rendered.contains("success rate"));
    }
}
