//! The `askit-eval` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! askit-eval [table2|fig5|fig6|fig7|table3|all|serve] [--count N] [--seed S]
//!            [--threads T] [--cache-dir DIR] [--cache-ttl SECS] [--speculate]
//!            [--adaptive] [--escalate] [--backend mock|http] [--api-base URL]
//!            [--bind ADDR] [--max-connections N] [--requests N]
//! ```
//!
//! Reports are printed and also written under `reports/` (override with
//! `ASKIT_REPORTS_DIR`).

use askit_eval::{fig5, fig6, fig7, report, table2, table3, DEFAULT_SEED};

const USAGE: &str = "usage: askit-eval [table2|fig5|fig6|fig7|table3|all|serve] [options]

experiments:
  table2   the 50 common coding tasks, compiled in both pipelines
  fig5     HumanEval: generated vs hand-written LOC
  fig6     prompt reduction on the evals benchmarks
  fig7     type-usage statistics
  table3   GSM8K: direct answering vs generated code
  all      everything above (the default)
  serve    stand up the HTTP/SSE front-end over the simulated model
           (needs a build with --features serve); serves the demo
           arithmetic functions until interrupted

options:
  --count N         number of GSM8K problems for table3 (default: full 1319)
  --seed S          base RNG seed (default: 20240302)
  --threads T       engine worker threads for table2/fig5/table3 (default:
                    auto; results are identical for every T — only
                    wall-clock changes)
  --cache-dir DIR   persist the table3 completion cache under DIR; a rerun
                    with the same DIR and seed warm-starts from it (results
                    are bit-identical to the cold run, just faster)
  --cache-ttl SECS  how long persisted completions stay servable (default:
                    forever); lapsed entries are re-queried and re-cached
  --speculate       prefetch likely retry feedback turns through the engine
                    pool ahead of validation (table3); results are
                    bit-identical with or without, only timing changes
  --adaptive        adapt per-model admission widths with AIMD (table3):
                    each model's width grows on success and is cut on
                    throttles/timeouts; results are bit-identical with or
                    without, only timing changes
  --escalate        route first attempts to the cheap model tier and
                    escalate to the strong tier on validation failure
                    (table3); changes routing, so the latency column
                    reflects the ladder
  --backend B       which model serves table3: 'mock' (default, the
                    deterministic simulated GPT) or 'http' (an
                    OpenAI-compatible service; needs a build with
                    --features http and an api base)
  --api-base URL    the http backend's base URL, e.g.
                    http://127.0.0.1:8080/v1 (default: $ASKIT_API_BASE)
  --bind ADDR       address the serve front-end listens on (default:
                    127.0.0.1:0 — ephemeral, printed at startup)
  --max-connections N
                    serve front-end live-connection budget; arrivals past
                    it get 503 + Retry-After (default: 64)
  --requests N      serve exits after N answered requests (default: run
                    until interrupted)
  --help            print this message

environment:
  ASKIT_REPORTS_DIR  directory report files are written to (default: reports/)
  ASKIT_WORKERS      engine worker threads when --threads is 0/unset
                     (default: the machine's full available parallelism)
  ASKIT_WORKERS_DEFAULT / ASKIT_WORKERS_GPT35 / ASKIT_WORKERS_GPT4
                     per-model width ceilings; each beats the global
                     ASKIT_WORKERS for its model (resolved widths are
                     printed at startup)
  ASKIT_API_BASE     default --api-base for the http backend
  ASKIT_API_KEY      bearer credential for the http backend (sent as
                     'Authorization: Bearer …'; never logged)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut count = askit_datasets::gsm8k::TEST_SET_SIZE;
    let mut seed = DEFAULT_SEED;
    let mut threads = 0usize;
    let mut cache = table3::CacheSetup::default();
    let mut speculate = false;
    let mut adaptive = false;
    let mut escalate = false;
    let mut backend_name = "mock".to_owned();
    let mut api_base: Option<String> = None;
    let mut bind = "127.0.0.1:0".to_owned();
    let mut max_connections = 64usize;
    let mut serve_requests = 0u64;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--backend" => {
                let Some(name) = iter.next() else {
                    usage("--backend needs a value ('mock' or 'http')");
                };
                backend_name = name.clone();
            }
            "--api-base" => {
                let Some(url) = iter.next() else {
                    usage("--api-base needs a value");
                };
                api_base = Some(url.clone());
            }
            "--count" => count = parse_flag_value(arg, iter.next()),
            "--seed" => seed = parse_flag_value(arg, iter.next()),
            "--threads" => threads = parse_flag_value(arg, iter.next()),
            "--cache-dir" => {
                let Some(dir) = iter.next() else {
                    usage("--cache-dir needs a value");
                };
                cache.dir = Some(std::path::PathBuf::from(dir));
            }
            "--cache-ttl" => {
                let secs: u64 = parse_flag_value(arg, iter.next());
                cache.ttl = Some(std::time::Duration::from_secs(secs));
            }
            "--bind" => {
                let Some(addr) = iter.next() else {
                    usage("--bind needs a value");
                };
                bind = addr.clone();
            }
            "--max-connections" => max_connections = parse_flag_value(arg, iter.next()),
            "--requests" => serve_requests = parse_flag_value(arg, iter.next()),
            "--speculate" => speculate = true,
            "--adaptive" => adaptive = true,
            "--escalate" => escalate = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "table2" | "fig5" | "fig6" | "fig7" | "table3" | "all" | "serve" => {
                which = arg.clone();
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    if which == "serve" {
        run_serve(&bind, threads, max_connections, serve_requests);
    }
    // The serve knobs only matter to the serve subcommand.
    let _ = (&bind, max_connections, serve_requests);

    let backend = resolve_backend(&backend_name, api_base.as_deref());

    // Per-model widths, resolved exactly the way an engine would resolve
    // them (explicit --threads beats ASKIT_WORKERS beats the machine), so
    // the line always matches what the sweeps below actually run with.
    let global_width = askit_exec::resolve_workers(threads);
    let widths = askit_exec::Scheduler::new(adaptive, global_width, &[]);
    eprintln!(
        "askit-eval: engine workers: {}",
        widths.describe_widths(global_width)
    );

    let run_table2 = || {
        emit(
            "table2.txt",
            &table2::render(&table2::run_with_threads(seed, threads)),
        )
    };
    let run_fig5 = || {
        emit(
            "fig5.txt",
            &fig5::render(&fig5::run_with_threads(seed, threads)),
        )
    };
    let run_fig6 = || emit("fig6.txt", &fig6::render(&fig6::run(seed)));
    let run_fig7 = || emit("fig7.txt", &fig7::render(&fig7::run()));
    let run_table3 = || {
        eprintln!("running table3 over {count} problems (use --count to shrink)...");
        let policy = table3::SweepPolicy::default()
            .with_threads(threads)
            .with_cache(cache.clone())
            .with_speculation(speculate)
            .with_adaptive(adaptive)
            .with_escalation(escalate);
        emit(
            "table3.txt",
            &table3::render(&table3::run_policy(count, seed, &policy, &backend)),
        );
    };

    match which.as_str() {
        "table2" => run_table2(),
        "fig5" => run_fig5(),
        "fig6" => run_fig6(),
        "fig7" => run_fig7(),
        "table3" => run_table3(),
        _ => {
            run_table2();
            run_fig5();
            run_fig6();
            run_fig7();
            run_table3();
        }
    }
}

/// Runs the `serve` subcommand and exits the process with its status.
#[cfg(feature = "serve")]
fn run_serve(bind: &str, threads: usize, max_connections: usize, requests: u64) -> ! {
    let options = askit_eval::serve_cmd::ServeOptions {
        bind: bind.to_owned(),
        threads,
        max_connections,
        requests,
    };
    match askit_eval::serve_cmd::run(&options) {
        Ok(_served) => std::process::exit(0),
        Err(e) => {
            eprintln!("askit-eval: serve failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(not(feature = "serve"))]
fn run_serve(_bind: &str, _threads: usize, _max_connections: usize, _requests: u64) -> ! {
    usage(
        "this binary was built without the serving front-end; rebuild with \
         `cargo build --features serve`",
    );
}

/// Resolves `--backend`/`--api-base` into a [`table3::Backend`],
/// validating everything the flags can get wrong *before* any experiment
/// starts: an unknown backend name, a build without the `http` feature, a
/// missing or malformed base URL.
fn resolve_backend(name: &str, api_base: Option<&str>) -> table3::Backend {
    // Only the feature-gated arm consumes the base URL.
    #[cfg(not(feature = "http"))]
    let _ = api_base;
    match name {
        "mock" => table3::Backend::Mock,
        #[cfg(feature = "http")]
        "http" => {
            let mut config = match api_base {
                Some(base) => askit_llm_http::HttpLlmConfig::new(base),
                None => match askit_llm_http::HttpLlmConfig::from_env() {
                    Some(config) => config,
                    None => usage(&format!(
                        "--backend http needs --api-base or ${}",
                        askit_llm_http::API_BASE_ENV
                    )),
                },
            };
            if config.api_key.is_none() {
                if let Ok(key) = std::env::var(askit_llm_http::API_KEY_ENV) {
                    if !key.trim().is_empty() {
                        config = config.with_api_key(key);
                    }
                }
            }
            // Validate the base URL now, with a usage message, instead of
            // panicking mid-sweep.
            if let Err(e) = askit_llm_http::HttpLlm::new(config.clone()) {
                usage(&format!("bad http backend configuration: {e}"));
            }
            table3::Backend::Http(Box::new(config))
        }
        #[cfg(not(feature = "http"))]
        "http" => usage(
            "this binary was built without the network backend; rebuild with \
             `cargo build --features http`",
        ),
        other => usage(&format!("unknown backend '{other}' (use 'mock' or 'http')")),
    }
}

/// Parses the value following a `--flag`, rejecting a missing or
/// non-numeric one with a proper usage message instead of defaulting.
fn parse_flag_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(raw) = value else {
        usage(&format!("{flag} needs a value"));
    };
    match raw.parse() {
        Ok(parsed) => parsed,
        Err(_) => usage(&format!("{flag} got '{raw}', which is not a valid number")),
    }
}

fn emit(name: &str, content: &str) {
    println!("{content}");
    match report::write_report(name, content) {
        Ok(path) => eprintln!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[could not write report: {e}]"),
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("askit-eval: {problem}\n{USAGE}");
    std::process::exit(2);
}
