//! The `askit-eval` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! askit-eval [table2|fig5|fig6|fig7|table3|all] [--count N] [--seed S] [--threads T]
//!            [--cache-dir DIR] [--cache-ttl SECS] [--speculate]
//! ```
//!
//! Reports are printed and also written under `reports/` (override with
//! `ASKIT_REPORTS_DIR`).

use askit_eval::{fig5, fig6, fig7, report, table2, table3, DEFAULT_SEED};

const USAGE: &str = "usage: askit-eval [table2|fig5|fig6|fig7|table3|all] [options]

experiments:
  table2   the 50 common coding tasks, compiled in both pipelines
  fig5     HumanEval: generated vs hand-written LOC
  fig6     prompt reduction on the evals benchmarks
  fig7     type-usage statistics
  table3   GSM8K: direct answering vs generated code
  all      everything above (the default)

options:
  --count N         number of GSM8K problems for table3 (default: full 1319)
  --seed S          base RNG seed (default: 20240302)
  --threads T       engine worker threads for table2/fig5/table3 (default:
                    auto; results are identical for every T — only
                    wall-clock changes)
  --cache-dir DIR   persist the table3 completion cache under DIR; a rerun
                    with the same DIR and seed warm-starts from it (results
                    are bit-identical to the cold run, just faster)
  --cache-ttl SECS  how long persisted completions stay servable (default:
                    forever); lapsed entries are re-queried and re-cached
  --speculate       prefetch likely retry feedback turns through the engine
                    pool ahead of validation (table3); results are
                    bit-identical with or without, only timing changes
  --help            print this message

environment:
  ASKIT_REPORTS_DIR  directory report files are written to (default: reports/)
  ASKIT_WORKERS      engine worker threads when --threads is 0/unset
                     (default: the machine's full available parallelism)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut count = askit_datasets::gsm8k::TEST_SET_SIZE;
    let mut seed = DEFAULT_SEED;
    let mut threads = 0usize;
    let mut cache = table3::CacheSetup::default();
    let mut speculate = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--count" => count = parse_flag_value(arg, iter.next()),
            "--seed" => seed = parse_flag_value(arg, iter.next()),
            "--threads" => threads = parse_flag_value(arg, iter.next()),
            "--cache-dir" => {
                let Some(dir) = iter.next() else {
                    usage("--cache-dir needs a value");
                };
                cache.dir = Some(std::path::PathBuf::from(dir));
            }
            "--cache-ttl" => {
                let secs: u64 = parse_flag_value(arg, iter.next());
                cache.ttl = Some(std::time::Duration::from_secs(secs));
            }
            "--speculate" => speculate = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "table2" | "fig5" | "fig6" | "fig7" | "table3" | "all" => {
                which = arg.clone();
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    let run_table2 = || {
        emit(
            "table2.txt",
            &table2::render(&table2::run_with_threads(seed, threads)),
        )
    };
    let run_fig5 = || {
        emit(
            "fig5.txt",
            &fig5::render(&fig5::run_with_threads(seed, threads)),
        )
    };
    let run_fig6 = || emit("fig6.txt", &fig6::render(&fig6::run(seed)));
    let run_fig7 = || emit("fig7.txt", &fig7::render(&fig7::run()));
    let run_table3 = || {
        eprintln!("running table3 over {count} problems (use --count to shrink)...");
        emit(
            "table3.txt",
            &table3::render(&table3::run_full(count, seed, threads, &cache, speculate)),
        );
    };

    match which.as_str() {
        "table2" => run_table2(),
        "fig5" => run_fig5(),
        "fig6" => run_fig6(),
        "fig7" => run_fig7(),
        "table3" => run_table3(),
        _ => {
            run_table2();
            run_fig5();
            run_fig6();
            run_fig7();
            run_table3();
        }
    }
}

/// Parses the value following a `--flag`, rejecting a missing or
/// non-numeric one with a proper usage message instead of defaulting.
fn parse_flag_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(raw) = value else {
        usage(&format!("{flag} needs a value"));
    };
    match raw.parse() {
        Ok(parsed) => parsed,
        Err(_) => usage(&format!("{flag} got '{raw}', which is not a valid number")),
    }
}

fn emit(name: &str, content: &str) {
    println!("{content}");
    match report::write_report(name, content) {
        Ok(path) => eprintln!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[could not write report: {e}]"),
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("askit-eval: {problem}\n{USAGE}");
    std::process::exit(2);
}
