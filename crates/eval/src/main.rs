//! The `askit-eval` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! askit-eval [table2|fig5|fig6|fig7|table3|all|serve] [--count N] [--seed S]
//!            [--threads T] [--cache-dir DIR] [--cache-ttl SECS] [--speculate]
//!            [--adaptive] [--escalate] [--backend mock|http] [--api-base URL]
//!            [--shared-cache] [--shard I/N] [--fragment PATH]
//!            [--bind ADDR] [--max-connections N] [--requests N]
//! askit-eval merge-table3 FRAGMENT...
//! ```
//!
//! Reports are printed and also written under `reports/` (override with
//! `ASKIT_REPORTS_DIR`).

use askit_eval::{fig5, fig6, fig7, report, table2, table3, DEFAULT_SEED};

const USAGE: &str = "usage: askit-eval [table2|fig5|fig6|fig7|table3|all|serve] [options]

experiments:
  table2   the 50 common coding tasks, compiled in both pipelines
  fig5     HumanEval: generated vs hand-written LOC
  fig6     prompt reduction on the evals benchmarks
  fig7     type-usage statistics
  table3   GSM8K: direct answering vs generated code
  merge-table3
           union per-shard table3 fragments (from --shard/--fragment runs)
           into the full report; the simulated columns are bit-identical
           to a single full run's. Prints a 'TABLE3_MERGE {json}' digest
           line for scripted comparison.
  all      everything above (the default)
  serve    stand up the HTTP/SSE front-end over the simulated model
           (needs a build with --features serve); serves the demo
           arithmetic functions until interrupted

options:
  --count N         number of GSM8K problems for table3 (default: full 1319)
  --seed S          base RNG seed (default: 20240302)
  --threads T       engine worker threads for table2/fig5/table3 (default:
                    auto; results are identical for every T — only
                    wall-clock changes)
  --cache-dir DIR   persist the table3 completion cache under DIR; a rerun
                    with the same DIR and seed warm-starts from it (results
                    are bit-identical to the cold run, just faster)
  --cache-ttl SECS  how long persisted completions stay servable (default:
                    forever); lapsed entries are re-queried and re-cached
  --shared-cache    open --cache-dir in multi-process shared mode: the
                    content-addressed object store with per-shard file
                    locks, so concurrent eval processes can point at one
                    directory and their flushes merge instead of
                    overwriting each other
  --shard I/N       run only problems at positions p with p % N == I of
                    the table3 problem list (0 <= I < N); a shard's
                    completions are byte-identical to the full run's, so
                    N concurrent shards can share one --shared-cache dir,
                    and fragments from all N shards merge-table3 into
                    exactly the full report
  --fragment PATH   write this run's table3 aggregates as a JSON fragment
                    to PATH (for merge-table3) instead of the table3.txt
                    report
  --speculate       prefetch likely retry feedback turns through the engine
                    pool ahead of validation (table3); results are
                    bit-identical with or without, only timing changes
  --adaptive        adapt per-model admission widths with AIMD (table3):
                    each model's width grows on success and is cut on
                    throttles/timeouts; results are bit-identical with or
                    without, only timing changes
  --escalate        route first attempts to the cheap model tier and
                    escalate to the strong tier on validation failure
                    (table3); changes routing, so the latency column
                    reflects the ladder
  --backend B       which model serves table3: 'mock' (default, the
                    deterministic simulated GPT) or 'http' (an
                    OpenAI-compatible service; needs a build with
                    --features http and an api base)
  --api-base URL    the http backend's base URL, e.g.
                    http://127.0.0.1:8080/v1 (default: $ASKIT_API_BASE)
  --bind ADDR       address the serve front-end listens on (default:
                    127.0.0.1:0 — ephemeral, printed at startup)
  --max-connections N
                    serve front-end live-connection budget; arrivals past
                    it get 503 + Retry-After (default: 64)
  --requests N      serve exits after N answered requests (default: run
                    until interrupted)
  --help            print this message

environment:
  ASKIT_REPORTS_DIR  directory report files are written to (default: reports/)
  ASKIT_WORKERS      engine worker threads when --threads is 0/unset
                     (default: the machine's full available parallelism)
  ASKIT_WORKERS_DEFAULT / ASKIT_WORKERS_GPT35 / ASKIT_WORKERS_GPT4
                     per-model width ceilings; each beats the global
                     ASKIT_WORKERS for its model (resolved widths are
                     printed at startup)
  ASKIT_API_BASE     default --api-base for the http backend
  ASKIT_API_KEY      bearer credential for the http backend (sent as
                     'Authorization: Bearer …'; never logged)";

fn main() {
    // Progress diagnostics default to visible (the pre-logger behavior);
    // ASKIT_LOG still wins when set.
    askit_obs::log::set_default_filter("info");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut count = askit_datasets::gsm8k::TEST_SET_SIZE;
    let mut seed = DEFAULT_SEED;
    let mut threads = 0usize;
    let mut cache = table3::CacheSetup::default();
    let mut speculate = false;
    let mut adaptive = false;
    let mut escalate = false;
    let mut backend_name = "mock".to_owned();
    let mut api_base: Option<String> = None;
    let mut shard: Option<(usize, usize)> = None;
    let mut fragment_path: Option<std::path::PathBuf> = None;
    let mut fragment_inputs: Vec<String> = Vec::new();
    let mut bind = "127.0.0.1:0".to_owned();
    let mut max_connections = 64usize;
    let mut serve_requests = 0u64;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--backend" => {
                let Some(name) = iter.next() else {
                    usage("--backend needs a value ('mock' or 'http')");
                };
                backend_name = name.clone();
            }
            "--api-base" => {
                let Some(url) = iter.next() else {
                    usage("--api-base needs a value");
                };
                api_base = Some(url.clone());
            }
            "--count" => count = parse_flag_value(arg, iter.next()),
            "--seed" => seed = parse_flag_value(arg, iter.next()),
            "--threads" => threads = parse_flag_value(arg, iter.next()),
            "--cache-dir" => {
                let Some(dir) = iter.next() else {
                    usage("--cache-dir needs a value");
                };
                cache.dir = Some(std::path::PathBuf::from(dir));
            }
            "--cache-ttl" => {
                let secs: u64 = parse_flag_value(arg, iter.next());
                cache.ttl = Some(std::time::Duration::from_secs(secs));
            }
            "--shared-cache" => cache.shared = true,
            "--shard" => {
                let Some(spec) = iter.next() else {
                    usage("--shard needs a value like 0/4");
                };
                shard = Some(parse_shard(spec));
            }
            "--fragment" => {
                let Some(path) = iter.next() else {
                    usage("--fragment needs a file path");
                };
                fragment_path = Some(std::path::PathBuf::from(path));
            }
            "--bind" => {
                let Some(addr) = iter.next() else {
                    usage("--bind needs a value");
                };
                bind = addr.clone();
            }
            "--max-connections" => max_connections = parse_flag_value(arg, iter.next()),
            "--requests" => serve_requests = parse_flag_value(arg, iter.next()),
            "--speculate" => speculate = true,
            "--adaptive" => adaptive = true,
            "--escalate" => escalate = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "table2" | "fig5" | "fig6" | "fig7" | "table3" | "all" | "serve" | "merge-table3" => {
                which = arg.clone();
            }
            other if which == "merge-table3" && !other.starts_with('-') => {
                fragment_inputs.push(other.to_owned());
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    if which == "merge-table3" {
        run_merge_table3(&fragment_inputs);
        return;
    }
    if which == "serve" {
        run_serve(&bind, threads, max_connections, serve_requests);
    }
    // The serve knobs only matter to the serve subcommand.
    let _ = (&bind, max_connections, serve_requests);

    let backend = resolve_backend(&backend_name, api_base.as_deref());

    // Per-model widths, resolved exactly the way an engine would resolve
    // them (explicit --threads beats ASKIT_WORKERS beats the machine), so
    // the line always matches what the sweeps below actually run with.
    let global_width = askit_exec::resolve_workers(threads);
    let widths = askit_exec::Scheduler::new(adaptive, global_width, &[]);
    askit_obs::info!(
        "askit_eval",
        "engine workers: {}",
        widths.describe_widths(global_width)
    );

    let run_table2 = || {
        emit(
            "table2.txt",
            &table2::render(&table2::run_with_threads(seed, threads)),
        )
    };
    let run_fig5 = || {
        emit(
            "fig5.txt",
            &fig5::render(&fig5::run_with_threads(seed, threads)),
        )
    };
    let run_fig6 = || emit("fig6.txt", &fig6::render(&fig6::run(seed)));
    let run_fig7 = || emit("fig7.txt", &fig7::render(&fig7::run()));
    let run_table3 = || {
        askit_obs::info!(
            "askit_eval",
            "running table3 over {count} problems (use --count to shrink)..."
        );
        let mut policy = table3::SweepPolicy::default()
            .with_threads(threads)
            .with_cache(cache.clone())
            .with_speculation(speculate)
            .with_adaptive(adaptive)
            .with_escalation(escalate);
        if let Some((index, total)) = shard {
            policy = policy.with_shard(index, total);
            askit_obs::info!(
                "askit_eval",
                "table3: running shard {index}/{total} of the problem list"
            );
        }
        let report = table3::run_policy(count, seed, &policy, &backend);
        // One machine-readable line per run; scripts compare these across
        // runs (and against merge-table3's TABLE3_MERGE line).
        println!("TABLE3_DIGEST {}", table3::digest(&report));
        if let Some(path) = &fragment_path {
            // A shard's table3.txt would overwrite the full report (and
            // concurrent shards would race on it) — the fragment *is* this
            // run's artifact; merge-table3 renders the report.
            let frag = table3::fragment(&report, shard.unwrap_or((0, 1)), count, seed);
            match std::fs::write(path, frag.to_json()) {
                Ok(()) => askit_obs::info!("askit_eval", "wrote fragment {}", path.display()),
                Err(e) => {
                    askit_obs::error!(
                        "askit_eval",
                        "cannot write fragment {}: {e}",
                        path.display()
                    );
                    std::process::exit(1);
                }
            }
        } else {
            emit("table3.txt", &table3::render(&report));
        }
    };

    match which.as_str() {
        "table2" => run_table2(),
        "fig5" => run_fig5(),
        "fig6" => run_fig6(),
        "fig7" => run_fig7(),
        "table3" => run_table3(),
        _ => {
            run_table2();
            run_fig5();
            run_fig6();
            run_fig7();
            run_table3();
        }
    }
}

/// Parses a `--shard I/N` specification.
fn parse_shard(spec: &str) -> (usize, usize) {
    let parsed = spec.split_once('/').and_then(|(i, n)| {
        let index: usize = i.trim().parse().ok()?;
        let total: usize = n.trim().parse().ok()?;
        (total > 0 && index < total).then_some((index, total))
    });
    match parsed {
        Some(shard) => shard,
        None => usage(&format!(
            "--shard got '{spec}'; expected I/N with 0 <= I < N (e.g. 0/4)"
        )),
    }
}

/// The `merge-table3` subcommand: parse fragments, union them, render the
/// full report, and print the machine-readable digest line.
fn run_merge_table3(paths: &[String]) {
    if paths.is_empty() {
        usage("merge-table3 needs at least one fragment file");
    }
    let mut fragments = Vec::with_capacity(paths.len());
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                askit_obs::error!("askit_eval", "cannot read fragment {path}: {e}");
                std::process::exit(1);
            }
        };
        match table3::Table3Fragment::from_json(&text) {
            Ok(fragment) => fragments.push(fragment),
            Err(e) => {
                askit_obs::error!("askit_eval", "bad fragment {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    match table3::merge_fragments(&fragments) {
        Ok(report) => {
            emit("table3.txt", &table3::render(&report));
            println!("TABLE3_MERGE {}", table3::digest(&report));
        }
        Err(e) => {
            askit_obs::error!("askit_eval", "cannot merge: {e}");
            std::process::exit(1);
        }
    }
}

/// Runs the `serve` subcommand and exits the process with its status.
#[cfg(feature = "serve")]
fn run_serve(bind: &str, threads: usize, max_connections: usize, requests: u64) -> ! {
    let options = askit_eval::serve_cmd::ServeOptions {
        bind: bind.to_owned(),
        threads,
        max_connections,
        requests,
    };
    match askit_eval::serve_cmd::run(&options) {
        Ok(_served) => std::process::exit(0),
        Err(e) => {
            askit_obs::error!("askit_eval", "serve failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(not(feature = "serve"))]
fn run_serve(_bind: &str, _threads: usize, _max_connections: usize, _requests: u64) -> ! {
    usage(
        "this binary was built without the serving front-end; rebuild with \
         `cargo build --features serve`",
    );
}

/// Resolves `--backend`/`--api-base` into a [`table3::Backend`],
/// validating everything the flags can get wrong *before* any experiment
/// starts: an unknown backend name, a build without the `http` feature, a
/// missing or malformed base URL.
fn resolve_backend(name: &str, api_base: Option<&str>) -> table3::Backend {
    // Only the feature-gated arm consumes the base URL.
    #[cfg(not(feature = "http"))]
    let _ = api_base;
    match name {
        "mock" => table3::Backend::Mock,
        #[cfg(feature = "http")]
        "http" => {
            let mut config = match api_base {
                Some(base) => askit_llm_http::HttpLlmConfig::new(base),
                None => match askit_llm_http::HttpLlmConfig::from_env() {
                    Some(config) => config,
                    None => usage(&format!(
                        "--backend http needs --api-base or ${}",
                        askit_llm_http::API_BASE_ENV
                    )),
                },
            };
            if config.api_key.is_none() {
                if let Ok(key) = std::env::var(askit_llm_http::API_KEY_ENV) {
                    if !key.trim().is_empty() {
                        config = config.with_api_key(key);
                    }
                }
            }
            // Validate the base URL now, with a usage message, instead of
            // panicking mid-sweep.
            if let Err(e) = askit_llm_http::HttpLlm::new(config.clone()) {
                usage(&format!("bad http backend configuration: {e}"));
            }
            table3::Backend::Http(Box::new(config))
        }
        #[cfg(not(feature = "http"))]
        "http" => usage(
            "this binary was built without the network backend; rebuild with \
             `cargo build --features http`",
        ),
        other => usage(&format!("unknown backend '{other}' (use 'mock' or 'http')")),
    }
}

/// Parses the value following a `--flag`, rejecting a missing or
/// non-numeric one with a proper usage message instead of defaulting.
fn parse_flag_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(raw) = value else {
        usage(&format!("{flag} needs a value"));
    };
    match raw.parse() {
        Ok(parsed) => parsed,
        Err(_) => usage(&format!("{flag} got '{raw}', which is not a valid number")),
    }
}

fn emit(name: &str, content: &str) {
    println!("{content}");
    match report::write_report(name, content) {
        Ok(path) => askit_obs::info!("askit_eval", "wrote {}", path.display()),
        Err(e) => askit_obs::error!("askit_eval", "could not write report: {e}"),
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("askit-eval: {problem}\n{USAGE}");
    std::process::exit(2);
}
