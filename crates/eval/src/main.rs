//! The `askit-eval` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! askit-eval [table2|fig5|fig6|fig7|table3|all] [--count N] [--seed S]
//! ```
//!
//! Reports are printed and also written under `reports/` (override with
//! `ASKIT_REPORTS_DIR`).

use askit_eval::{fig5, fig6, fig7, report, table2, table3, DEFAULT_SEED};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut count = askit_datasets::gsm8k::TEST_SET_SIZE;
    let mut seed = DEFAULT_SEED;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--count" => {
                count = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--count needs a number"));
            }
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "table2" | "fig5" | "fig6" | "fig7" | "table3" | "all" => {
                which = arg.clone();
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    let run_table2 = || emit("table2.txt", &table2::render(&table2::run(seed)));
    let run_fig5 = || emit("fig5.txt", &fig5::render(&fig5::run(seed)));
    let run_fig6 = || emit("fig6.txt", &fig6::render(&fig6::run(seed)));
    let run_fig7 = || emit("fig7.txt", &fig7::render(&fig7::run()));
    let run_table3 = || {
        eprintln!("running table3 over {count} problems (use --count to shrink)...");
        emit("table3.txt", &table3::render(&table3::run(count, seed)));
    };

    match which.as_str() {
        "table2" => run_table2(),
        "fig5" => run_fig5(),
        "fig6" => run_fig6(),
        "fig7" => run_fig7(),
        "table3" => run_table3(),
        _ => {
            run_table2();
            run_fig5();
            run_fig6();
            run_fig7();
            run_table3();
        }
    }
}

fn emit(name: &str, content: &str) {
    println!("{content}");
    match report::write_report(name, content) {
        Ok(path) => eprintln!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[could not write report: {e}]"),
    }
}

fn usage(problem: &str) -> ! {
    eprintln!(
        "askit-eval: {problem}\nusage: askit-eval [table2|fig5|fig6|fig7|table3|all] [--count N] [--seed S]"
    );
    std::process::exit(2);
}
