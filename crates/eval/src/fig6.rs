//! Figure 6: prompt-length reduction over the evals benchmarks, plus the
//! format-congruence check the paper ran (the tasks are mostly unsolvable;
//! what matters is that AskIt's typed prompt yields a response of the
//! expected shape).

use askit_core::{Askit, AskitConfig};
use askit_llm::{MockLlm, MockLlmConfig, Oracle};

use crate::report::{histogram, mean};

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Characters in the original prompt.
    pub original_chars: usize,
    /// Characters in the AskIt prompt.
    pub askit_chars: usize,
    /// Characters removed.
    pub reduction: usize,
    /// Whether the model's answer validated against the expected type.
    pub format_congruent: bool,
}

/// The full experiment output.
#[derive(Debug, Clone)]
pub struct Fig6Report {
    /// Per-benchmark rows.
    pub rows: Vec<Fig6Row>,
    /// Mean reduction as a fraction of the original length (paper: 16.14%).
    pub mean_reduction_fraction: f64,
    /// How many of the 50 benchmarks produced a type-correct response.
    pub congruent: usize,
}

/// Runs the Figure 6 experiment.
pub fn run(seed: u64) -> Fig6Report {
    let llm = MockLlm::new(MockLlmConfig::gpt4().with_seed(seed), Oracle::standard());
    let askit = Askit::new(llm).with_config(AskitConfig::default());

    let mut rows = Vec::new();
    for b in askit_datasets::evals::benchmarks() {
        let original = b.original_prompt();
        let reduced = b.askit_prompt();
        // Run the AskIt form once; the answer need not be *right* (the paper
        // could not solve most of these either) — it must be *type-correct*,
        // which the runtime enforces.
        let congruent = askit
            .define(b.answer_type.clone(), b.task)
            .and_then(|t| t.call(b.args.clone()))
            .map(|answer| b.answer_type.validate(&answer).is_ok())
            .unwrap_or(false);
        rows.push(Fig6Row {
            name: b.name,
            original_chars: original.len(),
            askit_chars: reduced.len(),
            reduction: original.len() - reduced.len(),
            format_congruent: congruent,
        });
    }
    let fractions: Vec<f64> = rows
        .iter()
        .map(|r| r.reduction as f64 / r.original_chars as f64)
        .collect();
    Fig6Report {
        mean_reduction_fraction: mean(&fractions),
        congruent: rows.iter().filter(|r| r.format_congruent).count(),
        rows,
    }
}

/// Renders the histogram the paper plots, plus the summary lines.
pub fn render(report: &Fig6Report) -> String {
    let reductions: Vec<f64> = report.rows.iter().map(|r| r.reduction as f64).collect();
    let hist = histogram(
        &reductions,
        50.0,
        400.0,
        "Reduction in prompt length (characters) — counts per 50-char bucket",
    );
    format!(
        "Figure 6 — prompt-length reductions (paper: 16.14% mean reduction)\n\n{hist}\nmean reduction: {:.2}% of the original prompt\nformat-congruent responses: {}/{}\n",
        100.0 * report.mean_reduction_fraction,
        report.congruent,
        report.rows.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_matches_the_paper_shape() {
        let report = run(3);
        assert_eq!(report.rows.len(), 50);
        assert!(report.rows.iter().all(|r| r.reduction > 0));
        assert!(
            (0.08..0.30).contains(&report.mean_reduction_fraction),
            "mean fraction {} should be near the paper's 16.14%",
            report.mean_reduction_fraction
        );
        // Type-guided output control keeps responses format-congruent even
        // on unsolvable tasks; the retry budget makes this nearly always
        // converge.
        assert!(report.congruent >= 48, "congruent {}", report.congruent);
        let rendered = render(&report);
        assert!(rendered.contains("mean reduction"));
    }
}
