//! The `serve` subcommand: stand up an `askit-serve` front-end over the
//! simulated model, so the service can be poked with `curl` (or load-tested)
//! without any real API credentials.
//!
//! Registers the arithmetic demo functions, prints the routes, and blocks
//! until the process is interrupted or `--requests N` answers have been
//! served (the bounded form CI smoke tests use).

use std::sync::Arc;
use std::time::Duration;

use askit_core::{Askit, FunctionRegistry, ServedTask};
use askit_llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
use askit_serve::{ServeConfig, Server};

/// Options for [`run`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (default `127.0.0.1:0` — ephemeral, printed at start).
    pub bind: String,
    /// Engine-call workers (0 = auto).
    pub threads: usize,
    /// Live-connection budget.
    pub max_connections: usize,
    /// Exit after this many served requests (0 = run until interrupted).
    pub requests: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            bind: "127.0.0.1:0".to_owned(),
            threads: 0,
            max_connections: 64,
            requests: 0,
        }
    }
}

/// Builds the demo registry: typed arithmetic tasks the simulated model
/// answers deterministically.
fn demo_registry(askit: &Arc<Askit<MockLlm>>) -> Arc<FunctionRegistry> {
    let registry = Arc::new(FunctionRegistry::new());
    registry.register(
        ServedTask::new(
            Arc::clone(askit),
            "add",
            askit_types::int(),
            "What is {{x}} plus {{y}}?",
        )
        .expect("static template")
        .with_param_types([("x", askit_types::int()), ("y", askit_types::int())]),
    );
    registry.register(
        ServedTask::new(
            Arc::clone(askit),
            "mul",
            askit_types::int(),
            "What is {{x}} times {{y}}?",
        )
        .expect("static template")
        .with_param_types([("x", askit_types::int()), ("y", askit_types::int())]),
    );
    registry
}

/// Starts the server and blocks. Returns the number of requests served.
///
/// # Errors
///
/// I/O errors binding the listener.
pub fn run(options: &ServeOptions) -> std::io::Result<u64> {
    let askit = Arc::new(Askit::new(MockLlm::new(
        MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
        Oracle::standard(),
    )));
    let registry = demo_registry(&askit);
    let names = registry.names();
    let server = Server::start(
        registry,
        Arc::clone(&askit) as _,
        ServeConfig::default()
            .with_bind(options.bind.clone())
            .with_workers(options.threads)
            .with_max_connections(options.max_connections),
    )?;
    // Startup lines default to visible even without ASKIT_LOG — the bind
    // address below is how callers discover the ephemeral port.
    askit_obs::log::set_default_filter("info");
    askit_obs::info!("askit_eval", "serve: listening on {}", server.base_url());
    askit_obs::info!(
        "askit_eval",
        "serve: routes: {} (POST /call/{{name}}, GET /functions, /healthz, /readyz, /stats, /metrics)",
        names.join(", ")
    );
    if options.requests == 0 {
        askit_obs::info!("askit_eval", "serve: serving until interrupted");
    } else {
        askit_obs::info!(
            "askit_eval",
            "serve: serving until {} request(s) answered",
            options.requests
        );
    }
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let served = server.requests_served();
        if options.requests > 0 && served >= options.requests {
            askit_obs::info!("askit_eval", "serve: {served} request(s) served, draining");
            server.join();
            return Ok(served);
        }
    }
}
