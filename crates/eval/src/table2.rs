//! Table II: the 50 common coding tasks, compiled in both pipelines.

use askit_core::{Askit, AskitConfig};
use askit_datasets::top50::{self, CodingTask};
use askit_exec::EngineConfig;
use askit_llm::{MockLlm, MockLlmConfig, Oracle};
use minilang::Syntax;

use crate::report::{mean, Table};

/// Result of one task in one pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineResult {
    /// Substantive LOC of the accepted code (0 on failure, as the paper's
    /// table reports for the failing Python tasks).
    pub loc: usize,
    /// Retries used (attempts − 1); 0 on failure.
    pub retries: usize,
    /// Whether generation succeeded within the budget.
    pub ok: bool,
}

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Task number.
    pub id: usize,
    /// The template prompt.
    pub template: String,
    /// The TypeScript return type.
    pub return_type: String,
    /// The TypeScript parameter types.
    pub param_types: String,
    /// The TypeScript pipeline outcome.
    pub ts: PipelineResult,
    /// The Python pipeline outcome.
    pub py: PipelineResult,
}

/// The full experiment output.
#[derive(Debug, Clone)]
pub struct Table2Report {
    /// Per-task rows.
    pub rows: Vec<Table2Row>,
    /// Mean generated LOC over successful TypeScript tasks (paper: 7.56).
    pub ts_avg_loc: f64,
    /// Mean generated LOC over successful Python tasks (paper: 6.52).
    pub py_avg_loc: f64,
    /// TypeScript failures (paper: 0).
    pub ts_failures: usize,
    /// Python failures (paper: 5 — tasks #11 and #21–#24).
    pub py_failures: Vec<usize>,
}

fn compile_one(
    askit: &Askit<MockLlm>,
    task: &CodingTask,
    syntax: Syntax,
    with_types: bool,
) -> PipelineResult {
    let defined = askit
        .define(task.return_type.clone(), task.template)
        .expect("catalogue templates parse");
    let defined = if with_types {
        defined.with_param_types(task.param_types.clone())
    } else {
        defined
    };
    let defined = defined.with_tests(task.tests.clone());
    match defined.compile(syntax) {
        Ok(compiled) => PipelineResult {
            loc: compiled.loc(),
            retries: compiled.attempts().saturating_sub(1),
            ok: true,
        },
        Err(_) => PipelineResult {
            loc: 0,
            retries: 0,
            ok: false,
        },
    }
}

/// Runs the Table II experiment with the gpt-3.5 profile (as the paper did),
/// using the default (auto) worker count.
pub fn run(seed: u64) -> Table2Report {
    run_with_threads(seed, 0)
}

/// Runs the experiment batching the 50 tasks across the engine's worker
/// pool (`threads == 0` means auto).
pub fn run_with_threads(seed: u64, threads: usize) -> Table2Report {
    let mut oracle = Oracle::standard();
    top50::register_oracle(&mut oracle);
    let llm = MockLlm::new(MockLlmConfig::gpt35().with_seed(seed), oracle);
    let askit = Askit::new(llm)
        .with_config(AskitConfig::default())
        .with_engine_config(EngineConfig::default().with_workers(threads));

    let tasks = top50::tasks();
    let rows: Vec<Table2Row> = askit.engine().map(&tasks, |_, task| {
        // The paper: "We only use parameter types for TypeScript since
        // Python implementation does not use parameter types."
        let ts = compile_one(&askit, task, Syntax::Ts, true);
        let py = compile_one(&askit, task, Syntax::Py, false);
        Table2Row {
            id: task.id,
            template: task.template.to_owned(),
            return_type: task.return_type.to_typescript(),
            param_types: task
                .param_types
                .iter()
                .map(|(n, t)| format!("{n}: {}", t.to_typescript()))
                .collect::<Vec<_>>()
                .join("; "),
            ts,
            py,
        }
    });

    let ts_locs: Vec<f64> = rows
        .iter()
        .filter(|r| r.ts.ok)
        .map(|r| r.ts.loc as f64)
        .collect();
    let py_locs: Vec<f64> = rows
        .iter()
        .filter(|r| r.py.ok)
        .map(|r| r.py.loc as f64)
        .collect();
    Table2Report {
        ts_avg_loc: mean(&ts_locs),
        py_avg_loc: mean(&py_locs),
        ts_failures: rows.iter().filter(|r| !r.ts.ok).count(),
        py_failures: rows.iter().filter(|r| !r.py.ok).map(|r| r.id).collect(),
        rows,
    }
}

/// Renders the report in the paper's table layout.
pub fn render(report: &Table2Report) -> String {
    let mut table = Table::new([
        "#",
        "Template Prompt",
        "Return Type",
        "Parameter Types",
        "TS LOC",
        "TS Retry",
        "Py LOC",
        "Py Retry",
    ]);
    for row in &report.rows {
        table.row([
            row.id.to_string(),
            row.template.clone(),
            row.return_type.clone(),
            row.param_types.clone(),
            if row.ts.ok {
                row.ts.loc.to_string()
            } else {
                "fail".into()
            },
            row.ts.retries.to_string(),
            if row.py.ok {
                row.py.loc.to_string()
            } else {
                "fail".into()
            },
            row.py.retries.to_string(),
        ]);
    }
    format!(
        "Table II — 50 codable tasks (paper: avg 7.56 TS / 6.52 Py LOC; Python fails #11, #21-24)\n\n{}\nAverages over successes: TypeScript {:.2} LOC, Python {:.2} LOC\nTypeScript failures: {}   Python failures: {:?}\n",
        table.render(),
        report.ts_avg_loc,
        report.py_avg_loc,
        report.ts_failures,
        report.py_failures,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper_shape() {
        let report = run(42);
        assert_eq!(report.rows.len(), 50);
        // TypeScript compiles everything.
        assert_eq!(
            report.ts_failures,
            0,
            "{:?}",
            report
                .rows
                .iter()
                .filter(|r| !r.ts.ok)
                .map(|r| r.id)
                .collect::<Vec<_>>()
        );
        // Python fails exactly the ambiguous tasks.
        assert_eq!(report.py_failures, vec![11, 21, 22, 23, 24]);
        // Average LOC lands near the paper's 7.56 / 6.52.
        assert!(
            (4.0..11.0).contains(&report.ts_avg_loc),
            "{}",
            report.ts_avg_loc
        );
        assert!(
            (3.5..10.0).contains(&report.py_avg_loc),
            "{}",
            report.py_avg_loc
        );
        // Python code is terser than TypeScript on average (no braces).
        assert!(report.py_avg_loc < report.ts_avg_loc);
        // Some retries happen across the catalogue, none beyond the budget.
        let max_retry = report
            .rows
            .iter()
            .map(|r| r.ts.retries.max(r.py.retries))
            .max()
            .unwrap();
        assert!(max_retry <= 9);
        let render = render(&report);
        assert!(render.contains("Table II"));
        assert!(render.contains("Reverse the string {{s}}."));
    }
}
