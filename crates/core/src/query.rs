//! The typed request object: [`Query<T>`], its builder, and
//! [`QueryOptions`].
//!
//! The paper's interface is "one call, one task"; its cost/accuracy results
//! (Table III) demand *per-call* control — which model, what retry budget,
//! which examples, cached or not. Related systems make the request a
//! first-class value (LMQL compiles each query into a decoding program;
//! APPL threads per-prompt options through its runtime); this module is
//! AskIt's equivalent: `askit.query::<T>(template)` opens a builder, every
//! option is an override over the instance's [`AskitConfig`], and the built
//! [`Query<T>`] can be [`run`](Query::run) singly or submitted as a slice
//! through [`crate::Askit::run_batch`], which fans out across the execution
//! engine's worker pool while preserving order.

use std::marker::PhantomData;
use std::time::Duration;

use askit_json::{Map, ToJson};
use askit_llm::{CachePolicy, Escalation, LanguageModel, ModelChoice};
use askit_template::Template;
use askit_types::Type;

use crate::config::AskitConfig;
use crate::error::AskItError;
use crate::examples::Example;
use crate::function::Askit;
use crate::runtime::{run_direct, DirectOutcome};
use crate::typed::AskType;

/// Per-call overrides over an instance's [`AskitConfig`].
///
/// Every field is optional: `None` means "use the instance default". Filled
/// by the [`QueryBuilder`] option methods, accepted per invocation by
/// [`crate::TaskFunction::call_with`] and
/// [`crate::CompiledFunction::call_with`], and resolved against the
/// defaults by [`QueryOptions::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryOptions {
    /// Overrides [`AskitConfig::model`].
    pub model: Option<ModelChoice>,
    /// Overrides [`AskitConfig::temperature`].
    pub temperature: Option<f64>,
    /// Overrides [`AskitConfig::max_retries`].
    pub max_retries: Option<usize>,
    /// Overrides [`AskitConfig::cache_policy`].
    pub cache: Option<CachePolicy>,
    /// Overrides [`AskitConfig::cache_ttl`]: how long completions this call
    /// stores stay servable from the persistent cache.
    pub cache_ttl: Option<Duration>,
    /// Overrides [`AskitConfig::request_timeout`]: how long a network
    /// backend may spend on one round trip for this call.
    pub timeout: Option<Duration>,
    /// Overrides [`AskitConfig::speculate`]: whether the retry loop
    /// prefetches the likely feedback turn ahead of validation.
    pub speculate: Option<bool>,
    /// Overrides [`AskitConfig::escalation`]: the tiered ladder the retry
    /// loop climbs on validation failures ([`Escalation::OFF`] disables it
    /// for this call even when the instance has a ladder).
    pub escalation: Option<Escalation>,
    /// Overrides [`AskitConfig::hedge`]: whether a multi-endpoint network
    /// backend may race a hedged second attempt on its next healthy
    /// endpoint (first success wins; costs up to one extra round trip).
    pub hedge: Option<bool>,
}

impl QueryOptions {
    /// No overrides: every knob falls through to the instance defaults.
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Sets the model override.
    #[must_use]
    pub fn with_model(mut self, model: ModelChoice) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the temperature override.
    #[must_use]
    pub fn with_temperature(mut self, temperature: f64) -> Self {
        self.temperature = Some(temperature);
        self
    }

    /// Sets the retry-budget override.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = Some(max_retries);
        self
    }

    /// Sets the cache-policy override.
    #[must_use]
    pub fn with_cache(mut self, cache: CachePolicy) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the cache-TTL override.
    #[must_use]
    pub fn with_cache_ttl(mut self, ttl: Duration) -> Self {
        self.cache_ttl = Some(ttl);
        self
    }

    /// Sets the request-timeout override (network backends).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the speculative-prefetch override.
    #[must_use]
    pub fn with_speculation(mut self, speculate: bool) -> Self {
        self.speculate = Some(speculate);
        self
    }

    /// Sets the tiered-escalation override.
    #[must_use]
    pub fn with_escalation(mut self, escalation: Escalation) -> Self {
        self.escalation = Some(escalation);
        self
    }

    /// Sets the request-hedging override (multi-endpoint network backends).
    #[must_use]
    pub fn with_hedge(mut self, hedge: bool) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Layers `self` over `base`: fields set here win, unset fields fall
    /// through to `base`. This is how a per-invocation `call_with` override
    /// combines with options already attached to a function.
    #[must_use]
    pub fn layered_over(&self, base: &QueryOptions) -> QueryOptions {
        QueryOptions {
            model: self.model.or(base.model),
            temperature: self.temperature.or(base.temperature),
            max_retries: self.max_retries.or(base.max_retries),
            cache: self.cache.or(base.cache),
            cache_ttl: self.cache_ttl.or(base.cache_ttl),
            timeout: self.timeout.or(base.timeout),
            speculate: self.speculate.or(base.speculate),
            escalation: self.escalation.or(base.escalation),
            hedge: self.hedge.or(base.hedge),
        }
    }

    /// Resolves the overrides against instance defaults into the full
    /// configuration one submission runs under. Per-query values always
    /// beat the defaults. (`cache_dir` has no per-query override — one
    /// process persists to one directory — so it passes through unchanged.)
    pub fn resolve(&self, defaults: &AskitConfig) -> AskitConfig {
        AskitConfig {
            max_retries: self.max_retries.unwrap_or(defaults.max_retries),
            temperature: self.temperature.unwrap_or(defaults.temperature),
            model: self.model.unwrap_or(defaults.model),
            cache_policy: self.cache.unwrap_or(defaults.cache_policy),
            cache_dir: defaults.cache_dir.clone(),
            shared_cache: defaults.shared_cache,
            cache_ttl: self.cache_ttl.or(defaults.cache_ttl),
            request_timeout: self.timeout.or(defaults.request_timeout),
            speculate: self.speculate.unwrap_or(defaults.speculate),
            escalation: self.escalation.unwrap_or(defaults.escalation),
            hedge: self.hedge.unwrap_or(defaults.hedge),
            trace: defaults.trace,
        }
    }
}

/// Builder for a [`Query<T>`]; opened by [`Askit::query`].
///
/// Collects the argument binding, few-shot examples, and per-call option
/// overrides, then [`build`](QueryBuilder::build)s the typed request
/// (parsing the template).
#[derive(Debug)]
pub struct QueryBuilder<'a, T, L> {
    askit: &'a Askit<L>,
    template: String,
    args: Map,
    examples: Vec<Example>,
    options: QueryOptions,
    result: PhantomData<fn() -> T>,
}

impl<'a, T: AskType, L: LanguageModel> QueryBuilder<'a, T, L> {
    pub(crate) fn new(askit: &'a Askit<L>, template: impl Into<String>) -> Self {
        QueryBuilder {
            askit,
            template: template.into(),
            args: Map::new(),
            examples: Vec::new(),
            options: QueryOptions::default(),
            result: PhantomData,
        }
    }

    /// Sets the full argument binding (replacing any previous one).
    #[must_use]
    pub fn args(mut self, args: Map) -> Self {
        self.args = args;
        self
    }

    /// Binds one argument.
    #[must_use]
    pub fn arg(mut self, name: impl Into<String>, value: impl ToJson) -> Self {
        self.args.insert(name, value.to_json());
        self
    }

    /// Adds few-shot examples (the first example set of Listing 1).
    #[must_use]
    pub fn examples(mut self, examples: impl IntoIterator<Item = Example>) -> Self {
        self.examples.extend(examples);
        self
    }

    /// Routes this query to a specific model.
    #[must_use]
    pub fn model(mut self, model: ModelChoice) -> Self {
        self.options.model = Some(model);
        self
    }

    /// Overrides the sampling temperature for this query.
    #[must_use]
    pub fn temperature(mut self, temperature: f64) -> Self {
        self.options.temperature = Some(temperature);
        self
    }

    /// Overrides the retry budget for this query.
    #[must_use]
    pub fn retries(mut self, max_retries: usize) -> Self {
        self.options.max_retries = Some(max_retries);
        self
    }

    /// Overrides the cache policy for this query.
    #[must_use]
    pub fn cache(mut self, cache: CachePolicy) -> Self {
        self.options.cache = Some(cache);
        self
    }

    /// Overrides how long completions this query stores stay servable from
    /// the persistent cache.
    #[must_use]
    pub fn cache_ttl(mut self, ttl: Duration) -> Self {
        self.options.cache_ttl = Some(ttl);
        self
    }

    /// Bounds each completion round trip of this query on network backends
    /// (in-process backends ignore it).
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.options.timeout = Some(timeout);
        self
    }

    /// Climbs `ladder` on validation failures instead of re-asking the
    /// failing model (see [`AskitConfig::escalation`]).
    #[must_use]
    pub fn escalate(mut self, ladder: Escalation) -> Self {
        self.options.escalation = Some(ladder);
        self
    }

    /// Lets a multi-endpoint network backend hedge this query's attempts
    /// (see [`AskitConfig::hedge`]). In-process backends ignore it.
    #[must_use]
    pub fn hedge(mut self, hedge: bool) -> Self {
        self.options.hedge = Some(hedge);
        self
    }

    /// Replaces all option overrides at once (e.g. with options reused
    /// across a batch).
    #[must_use]
    pub fn options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }

    /// Finalizes the builder into a runnable [`Query<T>`].
    ///
    /// # Errors
    ///
    /// [`AskItError::Template`] if the template is malformed.
    pub fn build(self) -> Result<Query<'a, T, L>, AskItError> {
        let template = Template::parse(&self.template)?;
        Ok(Query {
            askit: self.askit,
            template,
            answer_type: T::askit_type(),
            args: self.args,
            few_shot: self.examples,
            options: self.options,
            result: PhantomData,
        })
    }
}

/// A typed, fully described request: template, arguments, examples, and
/// per-call options, bound to the [`Askit`] instance that will execute it.
///
/// Run it singly with [`Query::run`], or submit a slice through
/// [`Askit::run_batch`] to fan a mixed batch out across the engine's worker
/// pool with order preserved.
///
/// # Examples
///
/// The paper's Listing 2 task — `define<Book[]>("List {{n}} classic books
/// on {{subject}}.")` — as a routed, retry-bounded query:
///
/// ```
/// use askit_core::{args, json_struct, Askit, ModelChoice};
/// use askit_json::{Json, ToJson};
/// use askit_llm::{AnswerOutcome, FaultConfig, MockLlm, MockLlmConfig, Oracle};
///
/// json_struct! {
///     /// A classic book (the paper's `type Book`).
///     pub struct Book {
///         title: String,
///         author: String,
///         year: i64,
///     }
/// }
///
/// // Teach the simulated model some bibliography.
/// let mut oracle = Oracle::standard();
/// oracle.add_answer_fn("books", |task| {
///     task.template.contains("classic books").then(|| {
///         let shelf = Book {
///             title: "Structure and Interpretation of Computer Programs".into(),
///             author: "Abelson & Sussman".into(),
///             year: 1985,
///         };
///         AnswerOutcome::new(Json::Array(vec![shelf.to_json()]), "Recalling the canon.")
///     })
/// });
/// let llm = MockLlm::new(MockLlmConfig::gpt4().with_faults(FaultConfig::none()), oracle);
/// let askit = Askit::new(llm);
///
/// let query = askit
///     .query::<Vec<Book>>("List {{n}} classic books on {{subject}}.")
///     .args(args! { n: 1, subject: "computer science" })
///     .model(ModelChoice::Gpt4)
///     .temperature(0.3)
///     .retries(5)
///     .build()?;
/// let books: Vec<Book> = query.run()?;
/// assert_eq!(books[0].year, 1985);
/// # Ok::<(), askit_core::AskItError>(())
/// ```
#[derive(Debug)]
pub struct Query<'a, T, L> {
    askit: &'a Askit<L>,
    template: Template,
    answer_type: Type,
    args: Map,
    few_shot: Vec<Example>,
    options: QueryOptions,
    result: PhantomData<fn() -> T>,
}

impl<'a, T: AskType, L: LanguageModel + 'static> Query<'a, T, L> {
    /// Executes the query through the §III-E direct runtime and extracts
    /// the typed result.
    ///
    /// # Errors
    ///
    /// See [`AskItError`].
    pub fn run(&self) -> Result<T, AskItError> {
        let outcome = self.run_detailed()?;
        Ok(T::from_json(&outcome.value)?)
    }

    /// Like [`Query::run`] but returns the full outcome (raw value,
    /// attempts, usage, latency).
    pub fn run_detailed(&self) -> Result<DirectOutcome, AskItError> {
        let config = self.options.resolve(self.askit.config());
        run_direct(
            self.askit.engine(),
            &self.template,
            &self.args,
            &self.answer_type,
            &self.few_shot,
            &config,
        )
    }

    /// The per-call option overrides attached to this query.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// The configuration this query resolves to under its instance's
    /// defaults.
    pub fn resolved_config(&self) -> AskitConfig {
        self.options.resolve(self.askit.config())
    }

    /// The parsed template.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The argument binding.
    pub fn args(&self) -> &Map {
        &self.args
    }

    /// The answer type the response is validated against.
    pub fn answer_type(&self) -> &Type {
        &self.answer_type
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;
    use askit_llm::{RecordingLlm, ScriptedLlm};

    fn good(answer: i64) -> String {
        format!("```json\n{{\"reason\": \"r\", \"answer\": {answer}}}\n```")
    }

    fn recording(responses: &[String]) -> Askit<RecordingLlm<ScriptedLlm>> {
        Askit::new(RecordingLlm::new(ScriptedLlm::new(responses.to_vec())))
    }

    #[test]
    fn per_query_overrides_beat_config_defaults() {
        let askit = recording(&[good(5)]).with_config(
            AskitConfig::default()
                .with_temperature(1.0)
                .with_max_retries(9),
        );
        let q = askit
            .query::<i64>("Question?")
            .model(ModelChoice::Gpt35)
            .temperature(0.3)
            .retries(5)
            .cache(CachePolicy::Bypass)
            .build()
            .unwrap();
        assert_eq!(q.run().unwrap(), 5);
        let request = &askit.llm().exchanges()[0].request;
        assert_eq!(request.temperature, 0.3, "override beats the 1.0 default");
        assert_eq!(request.options.model, ModelChoice::Gpt35);
        assert_eq!(request.options.cache, CachePolicy::Bypass);
        let config = q.resolved_config();
        assert_eq!(config.max_retries, 5);
    }

    #[test]
    fn unset_options_fall_through_to_config_defaults() {
        let askit = recording(&[good(7)]).with_config(
            AskitConfig::default()
                .with_temperature(0.0)
                .with_model(ModelChoice::Gpt4)
                .with_cache_policy(CachePolicy::Bypass),
        );
        let q = askit.query::<i64>("Question?").build().unwrap();
        assert_eq!(q.run().unwrap(), 7);
        let request = &askit.llm().exchanges()[0].request;
        assert_eq!(request.temperature, 0.0);
        assert_eq!(request.options.model, ModelChoice::Gpt4);
        assert_eq!(request.options.cache, CachePolicy::Bypass);
    }

    #[test]
    fn retries_override_bounds_the_attempt_count() {
        let bad: Vec<String> = (0..5).map(|_| "not json".to_owned()).collect();
        let askit = recording(&bad);
        let q = askit
            .query::<i64>("Hard question")
            .retries(2)
            .build()
            .unwrap();
        let err = q.run().unwrap_err();
        match err {
            AskItError::AnswerRetriesExhausted { attempts, .. } => {
                assert_eq!(attempts, 3, "retries(2) = 3 attempts, not the default 10");
            }
            other => panic!("unexpected {other}"),
        }
        assert_eq!(askit.llm().len(), 3);
    }

    #[test]
    fn options_layering_and_resolution() {
        let base = QueryOptions::new()
            .with_model(ModelChoice::Gpt35)
            .with_temperature(0.7)
            .with_cache_ttl(Duration::from_secs(30));
        let per_call = QueryOptions::new()
            .with_model(ModelChoice::Gpt4)
            .with_max_retries(1);
        let layered = per_call.layered_over(&base);
        assert_eq!(layered.model, Some(ModelChoice::Gpt4), "per-call wins");
        assert_eq!(layered.temperature, Some(0.7), "unset falls to base");
        assert_eq!(layered.max_retries, Some(1));
        assert_eq!(layered.cache, None);
        assert_eq!(layered.cache_ttl, Some(Duration::from_secs(30)));
        let resolved = layered.resolve(&AskitConfig::default());
        assert_eq!(resolved.model, ModelChoice::Gpt4);
        assert_eq!(resolved.temperature, 0.7);
        assert_eq!(resolved.max_retries, 1);
        assert_eq!(resolved.cache_policy, CachePolicy::Use, "config default");
        assert_eq!(resolved.cache_ttl, Some(Duration::from_secs(30)));
        assert_eq!(resolved.cache_dir, None, "no per-query cache_dir");
    }

    #[test]
    fn cache_ttl_override_is_stamped_on_requests() {
        let askit = recording(&[good(4)])
            .with_config(AskitConfig::default().with_cache_ttl(Duration::from_secs(600)));
        let q = askit
            .query::<i64>("Question?")
            .cache_ttl(Duration::from_secs(5))
            .build()
            .unwrap();
        assert_eq!(q.run().unwrap(), 4);
        let request = &askit.llm().exchanges()[0].request;
        assert_eq!(
            request.options.ttl,
            Some(Duration::from_secs(5)),
            "per-query TTL beats the instance default"
        );
    }

    #[test]
    fn builder_collects_args_and_examples() {
        let askit = recording(&[good(3)]);
        let q = askit
            .query::<i64>("What is {{x}} plus {{y}}?")
            .arg("x", 1i64)
            .arg("y", 2i64)
            .examples([crate::example(&[("x", 2i64), ("y", 2i64)], 4i64)])
            .build()
            .unwrap();
        assert_eq!(q.args().len(), 2);
        assert_eq!(q.run().unwrap(), 3);
        let prompt = askit.llm().exchanges()[0].request.messages[0]
            .content
            .clone();
        assert!(prompt.contains("Examples:"), "few-shot section present");
    }

    #[test]
    fn malformed_templates_fail_at_build() {
        let askit = recording(&[]);
        let err = askit.query::<i64>("Unclosed {{x").build();
        assert!(matches!(err, Err(AskItError::Template(_))));
    }

    #[test]
    fn args_macro_binding_matches_arg_calls() {
        let askit = recording(&[good(1), good(1)]);
        let via_macro = askit
            .query::<i64>("{{a}}")
            .args(args! { a: 9 })
            .build()
            .unwrap();
        let via_arg = askit.query::<i64>("{{a}}").arg("a", 9i64).build().unwrap();
        assert_eq!(via_macro.args(), via_arg.args());
    }
}
