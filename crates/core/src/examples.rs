//! Input/output examples (paper §III-B, Listing 1, lines 6–8).
//!
//! `ask` and `define` accept examples for **few-shot learning**, and
//! `define` accepts a second set used to **validate generated code**
//! (§III-D Step 3: "executes the generated function with the input and
//! compares the output with the expected output").

use askit_json::{Json, Map, ToJson};

/// One input/output example: a named-argument map and the expected result.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Named inputs, keyed by template parameter name.
    pub input: Map,
    /// The expected output.
    pub output: Json,
}

impl Example {
    /// Creates an example.
    pub fn new(input: Map, output: impl ToJson) -> Self {
        Example {
            input,
            output: output.to_json(),
        }
    }

    /// Renders as a prompt line: `- input: {…} output: …`.
    pub fn to_prompt_line(&self) -> String {
        format!(
            "- input: {} output: {}",
            Json::Object(self.input.clone()).to_compact_string(),
            self.output.to_compact_string()
        )
    }
}

/// Renders a few-shot example block for the direct prompt, or an empty
/// string when there are no examples.
pub fn examples_section(examples: &[Example]) -> String {
    if examples.is_empty() {
        return String::new();
    }
    let mut out = String::from("\nExamples:\n");
    for e in examples {
        out.push_str(&e.to_prompt_line());
        out.push('\n');
    }
    out
}

/// Builds an [`Example`] tersely: `example(&[("n", 5)], 120)`.
pub fn example<V: ToJson>(input: &[(&str, V)], output: impl ToJson) -> Example {
    let map: Map = input
        .iter()
        .map(|(k, v)| ((*k).to_owned(), v.to_json()))
        .collect();
    Example::new(map, output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_lines() {
        let e = example(&[("n", 3i64)], 6i64);
        assert_eq!(e.to_prompt_line(), r#"- input: {"n":3} output: 6"#);
    }

    #[test]
    fn section_formatting() {
        assert_eq!(examples_section(&[]), "");
        let es = vec![example(&[("x", 1i64)], 2i64), example(&[("x", 2i64)], 4i64)];
        let s = examples_section(&es);
        assert!(s.starts_with("\nExamples:\n"));
        assert_eq!(s.lines().filter(|l| l.starts_with("- input:")).count(), 2);
    }

    #[test]
    fn heterogeneous_inputs_via_json() {
        let e = example(
            &[("a", Json::Int(1)), ("b", Json::from("s"))],
            Json::Bool(true),
        );
        assert_eq!(e.input.get("b"), Some(&Json::from("s")));
    }
}
