//! The public AskIt API: [`Askit`], [`TaskFunction`], [`CompiledFunction`].
//!
//! This is the unified interface of the paper's §III: `ask` for one-shot
//! tasks, `define` for reusable task functions, and — the crux — `compile`
//! on a defined function to switch it from "call the LLM every time" to
//! "run LLM-generated code", *without touching the prompt template*.

use askit_exec::{CacheStats, Engine, EngineConfig};
use askit_json::{Json, Map};
use askit_llm::LanguageModel;
use askit_template::Template;
use askit_types::Type;
use minilang::ast::Param;
use minilang::pretty::Syntax;

use crate::codegen::{generate, GeneratedFunction};
use crate::config::AskitConfig;
use crate::error::AskItError;
use crate::examples::Example;
use crate::prompt::{derive_function_name, FunctionSpec};
use crate::query::{Query, QueryBuilder, QueryOptions};
use crate::runtime::{run_direct, DirectOutcome};
use crate::store::FunctionStore;
use crate::typed::AskType;

/// The AskIt front object: owns the execution engine (which owns the model
/// handle) and the runtime configuration.
///
/// Every model submission — direct calls, codegen, batches — flows through
/// the [`Engine`], gaining its completion cache and worker pool.
///
/// # Examples
///
/// ```
/// use askit_core::{args, Askit};
/// use askit_llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
///
/// let llm = MockLlm::new(MockLlmConfig::gpt4().with_faults(FaultConfig::none()), Oracle::standard());
/// let askit = Askit::new(llm);
/// let answer: i64 = askit.ask_as("What is {{x}} times {{y}}?", args! { x: 7, y: 8 })?;
/// assert_eq!(answer, 56);
/// # Ok::<(), askit_core::AskItError>(())
/// ```
#[derive(Debug)]
pub struct Askit<L> {
    engine: Engine<L>,
    config: AskitConfig,
}

impl<L: LanguageModel + 'static> Askit<L> {
    /// Creates an AskIt instance with default configuration.
    pub fn new(llm: L) -> Self {
        Askit {
            engine: Engine::new(llm),
            config: AskitConfig::default(),
        }
    }

    /// Overrides the configuration.
    ///
    /// When the configuration carries cache-persistence knobs
    /// ([`AskitConfig::cache_dir`] / [`AskitConfig::cache_ttl`] /
    /// [`AskitConfig::shared_cache`]), the execution engine is rebuilt so
    /// its completion cache honors them — opening (and warm-starting from)
    /// the directory immediately. `None` values are "no opinion" and leave
    /// the engine's own settings alone.
    #[must_use]
    pub fn with_config(mut self, config: AskitConfig) -> Self {
        let mut engine_config = self.engine.config().clone();
        if config.cache_dir.is_some() {
            engine_config.cache_dir = config.cache_dir.clone();
        }
        if config.cache_ttl.is_some() {
            engine_config.cache_ttl = config.cache_ttl;
        }
        if config.shared_cache {
            engine_config.shared_cache = true;
        }
        let rebuild = engine_config != *self.engine.config();
        self.config = config;
        if rebuild {
            self.with_engine_config(engine_config)
        } else {
            self
        }
    }

    /// Rebuilds the execution engine with an explicit configuration.
    #[must_use]
    pub fn with_engine_config(self, engine_config: EngineConfig) -> Self {
        let Askit { engine, config } = self;
        Askit {
            engine: Engine::with_config(engine.into_model(), engine_config),
            config,
        }
    }

    /// Convenience: rebuilds the engine with an explicit worker count
    /// (`0` = auto), preserving its other settings.
    #[must_use]
    pub fn with_threads(self, threads: usize) -> Self {
        let config = self.engine.config().clone().with_workers(threads);
        self.with_engine_config(config)
    }

    /// The configuration in use.
    pub fn config(&self) -> &AskitConfig {
        &self.config
    }

    /// The execution engine all submissions flow through.
    pub fn engine(&self) -> &Engine<L> {
        &self.engine
    }

    /// Completion-cache counters for this instance.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Flushes the completion cache to disk (a no-op without a cache
    /// directory); see [`Engine::persist`]. The flush also runs when the
    /// instance is dropped.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying filesystem.
    pub fn persist_cache(&self) -> std::io::Result<u64> {
        self.engine.persist()
    }

    /// The underlying model handle.
    pub fn llm(&self) -> &L {
        self.engine.model()
    }

    /// Opens a typed query builder — the request-first API.
    ///
    /// Collect arguments, examples, and per-call overrides (model,
    /// temperature, retries, cache policy), [`build`](QueryBuilder::build)
    /// the [`Query<T>`], then [`run`](Query::run) it singly or submit a
    /// slice through [`Askit::run_batch`]. The classic
    /// `ask`/`ask_as`/`define` entry points are shorthand over this
    /// builder.
    pub fn query<T: AskType>(&self, template: impl Into<String>) -> QueryBuilder<'_, T, L> {
        QueryBuilder::new(self, template)
    }

    /// Executes a batch of typed queries, fanned out across the engine's
    /// worker pool. Results come back **in query order**; each query runs
    /// its own full §III-E retry conversation under its own resolved
    /// options, so a single batch can mix models, temperatures, and cache
    /// policies.
    pub fn run_batch<T: AskType + Send>(
        &self,
        queries: &[Query<'_, T, L>],
    ) -> Vec<Result<T, AskItError>> {
        self.engine.map(queries, |_, query| query.run())
    }

    /// Like [`Askit::run_batch`] but returns full outcomes (raw value,
    /// attempts, usage, latency) instead of extracted typed results.
    pub fn run_batch_detailed<T: AskType>(
        &self,
        queries: &[Query<'_, T, L>],
    ) -> Vec<Result<DirectOutcome, AskItError>> {
        self.engine.map(queries, |_, query| query.run_detailed())
    }

    /// `ask`: performs a directly answerable task once (paper §III-A).
    ///
    /// The `answer_type` plays the role of the TS type parameter
    /// (`ask<'positive' | 'negative'>(…)`).
    ///
    /// # Errors
    ///
    /// See [`AskItError`].
    pub fn ask(&self, answer_type: Type, template: &str, args: Map) -> Result<Json, AskItError> {
        self.define(answer_type, template)?.call(args)
    }

    /// `ask` with full outcome details (attempts, usage, latency).
    pub fn ask_detailed(
        &self,
        answer_type: Type,
        template: &str,
        args: Map,
    ) -> Result<DirectOutcome, AskItError> {
        self.define(answer_type, template)?.call_detailed(args)
    }

    /// Typed `ask`: the answer type comes from the Rust result type.
    ///
    /// Shorthand for `self.query::<T>(template).args(args).build()?.run()`.
    ///
    /// # Errors
    ///
    /// See [`AskItError`].
    pub fn ask_as<T: AskType>(&self, template: &str, args: Map) -> Result<T, AskItError> {
        self.query::<T>(template).args(args).build()?.run()
    }

    /// `define`: builds a reusable task function from a prompt template
    /// (paper §III-A, "Template-based Function Definitions").
    ///
    /// # Errors
    ///
    /// [`AskItError::Template`] if the template is malformed.
    pub fn define(
        &self,
        answer_type: Type,
        template: &str,
    ) -> Result<TaskFunction<'_, L>, AskItError> {
        let parsed = Template::parse(template)?;
        let name = derive_function_name(template);
        Ok(TaskFunction {
            askit: self,
            template: parsed,
            answer_type,
            param_types: Vec::new(),
            few_shot: Vec::new(),
            tests: Vec::new(),
            options: QueryOptions::default(),
            name,
        })
    }

    /// Typed `define`.
    ///
    /// # Errors
    ///
    /// [`AskItError::Template`] if the template is malformed.
    pub fn define_as<T: AskType>(&self, template: &str) -> Result<TaskFunction<'_, L>, AskItError> {
        self.define(T::askit_type(), template)
    }
}

/// A function defined by a prompt template (the result of `define`).
///
/// Calling it executes the task **directly** with the LLM; compiling it
/// turns it into a [`CompiledFunction`] that runs generated code. Both share
/// this one template — the paper's headline property.
#[derive(Debug)]
pub struct TaskFunction<'a, L> {
    askit: &'a Askit<L>,
    template: Template,
    answer_type: Type,
    param_types: Vec<(String, Type)>,
    few_shot: Vec<Example>,
    tests: Vec<Example>,
    options: QueryOptions,
    name: String,
}

impl<'a, L: LanguageModel + 'static> TaskFunction<'a, L> {
    /// Declares parameter types (the TS pipeline's
    /// `define<R, {n: number}>`). Without this, codegen emits untyped
    /// signatures — the Python pipeline's behaviour, and the cause of its
    /// Table II failures.
    #[must_use]
    pub fn with_param_types<K: Into<String>>(
        mut self,
        types: impl IntoIterator<Item = (K, Type)>,
    ) -> Self {
        self.param_types = types.into_iter().map(|(k, t)| (k.into(), t)).collect();
        self
    }

    /// Adds few-shot examples (the first example set of Listing 1).
    #[must_use]
    pub fn with_examples(mut self, examples: impl IntoIterator<Item = Example>) -> Self {
        self.few_shot.extend(examples);
        self
    }

    /// Adds validation examples used to test generated code (the second
    /// example set of Listing 1).
    #[must_use]
    pub fn with_tests(mut self, tests: impl IntoIterator<Item = Example>) -> Self {
        self.tests.extend(tests);
        self
    }

    /// Attaches option overrides (model, temperature, retries, cache
    /// policy) that every call and compile of this function runs under.
    /// Per-invocation options passed to [`TaskFunction::call_with`] layer
    /// on top of these.
    #[must_use]
    pub fn with_options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }

    /// The option overrides attached to this function.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// Overrides the generated function's name (defaults to a camelCase
    /// derivation of the template).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The function name used for codegen.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The template's parameter names, in order.
    pub fn params(&self) -> Vec<&str> {
        self.template.params()
    }

    /// The template.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The declared answer type.
    pub fn answer_type(&self) -> &Type {
        &self.answer_type
    }

    /// Calls the task **directly** on the LLM (paper §III-E).
    ///
    /// # Errors
    ///
    /// See [`AskItError`].
    pub fn call(&self, args: Map) -> Result<Json, AskItError> {
        Ok(self.call_detailed(args)?.value)
    }

    /// Like [`TaskFunction::call`] but with per-invocation option
    /// overrides, which layer over the function's own options (set via
    /// [`TaskFunction::with_options`]) and then over the instance config.
    pub fn call_with(&self, args: Map, options: &QueryOptions) -> Result<Json, AskItError> {
        Ok(self.call_with_detailed(args, options)?.value)
    }

    /// Like [`TaskFunction::call`] but returns attempts/usage/latency too.
    pub fn call_detailed(&self, args: Map) -> Result<DirectOutcome, AskItError> {
        self.call_with_detailed(args, &QueryOptions::default())
    }

    /// The fully general direct call: per-invocation options, full outcome.
    pub fn call_with_detailed(
        &self,
        args: Map,
        options: &QueryOptions,
    ) -> Result<DirectOutcome, AskItError> {
        let config = options
            .layered_over(&self.options)
            .resolve(&self.askit.config);
        run_direct(
            self.askit.engine(),
            &self.template,
            &args,
            &self.answer_type,
            &self.few_shot,
            &config,
        )
    }

    /// Calls the task directly for every argument binding, fanned out across
    /// the engine's worker pool. Results come back in argument order; each
    /// binding runs its own full §III-E retry conversation.
    pub fn call_batch(&self, args_list: &[Map]) -> Vec<Result<DirectOutcome, AskItError>> {
        self.askit
            .engine()
            .map(args_list, |_, args| self.call_detailed(args.clone()))
    }

    /// Calls directly and extracts a typed result.
    pub fn call_as<T: AskType>(&self, args: Map) -> Result<T, AskItError> {
        let value = self.call(args)?;
        Ok(T::from_json(&value)?)
    }

    /// The function specification the codegen prompt is built from.
    pub fn spec(&self, syntax: Syntax) -> FunctionSpec {
        let params = self
            .template
            .params()
            .into_iter()
            .map(|p| Param {
                name: p.to_owned(),
                ty: self
                    .param_types
                    .iter()
                    .find(|(k, _)| k == p)
                    .map(|(_, t)| t.clone())
                    .unwrap_or_else(askit_types::any),
            })
            .collect();
        FunctionSpec {
            name: self.name.clone(),
            params,
            ret: self.answer_type.clone(),
            instruction: self.template.render_quoted(),
            syntax,
        }
    }

    /// **Compiles** the task: asks the LLM to implement it as code, validates
    /// the code against the test examples, and returns an executable function
    /// (paper §III-D; the Python API's `.compile()`).
    ///
    /// # Errors
    ///
    /// [`AskItError::CodegenFailed`] when no attempt validates.
    pub fn compile(&self, syntax: Syntax) -> Result<CompiledFunction, AskItError> {
        self.compile_with(syntax, &QueryOptions::default())
    }

    /// Like [`TaskFunction::compile`] but with per-invocation option
    /// overrides — e.g. route generation to a stronger model or raise the
    /// retry budget for a hard task.
    pub fn compile_with(
        &self,
        syntax: Syntax,
        options: &QueryOptions,
    ) -> Result<CompiledFunction, AskItError> {
        let config = options
            .layered_over(&self.options)
            .resolve(&self.askit.config);
        let spec = self.spec(syntax);
        let generated = generate(self.askit.engine(), &spec, &self.tests, &config)?;
        Ok(CompiledFunction {
            generated,
            answer_type: self.answer_type.clone(),
        })
    }

    /// Like [`TaskFunction::compile`], but consults/fills an on-disk cache
    /// so generation happens once per template (paper §III-F).
    ///
    /// # Errors
    ///
    /// See [`TaskFunction::compile`] and [`FunctionStore`].
    pub fn compile_with_store(
        &self,
        syntax: Syntax,
        store: &FunctionStore,
    ) -> Result<CompiledFunction, AskItError> {
        if let Some(cached) = store.load(self.template.source(), &self.name, syntax)? {
            return Ok(CompiledFunction {
                generated: cached,
                answer_type: self.answer_type.clone(),
            });
        }
        let compiled = self.compile(syntax)?;
        store.save(self.template.source(), &compiled.generated)?;
        Ok(compiled)
    }
}

/// An executable compiled task function: calls run generated MiniLang code,
/// no LLM round trip.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    generated: GeneratedFunction,
    answer_type: Type,
}

impl CompiledFunction {
    /// Invokes the generated code with named arguments.
    ///
    /// # Errors
    ///
    /// [`AskItError::Execution`] on runtime failure;
    /// [`AskItError::Type`] if the result does not inhabit the declared
    /// answer type.
    pub fn call(&self, args: Map) -> Result<Json, AskItError> {
        let raw = self.generated.call(&args)?;
        Ok(self.answer_type.coerce(&raw)?)
    }

    /// Invokes with per-invocation options — the same signature
    /// [`TaskFunction::call_with`] offers, so generic code can drive a
    /// direct or compiled function through one interface. Generated code
    /// runs locally and never reaches the model, so the options have
    /// nothing to influence here; they are accepted and ignored.
    pub fn call_with(&self, args: Map, options: &QueryOptions) -> Result<Json, AskItError> {
        let _ = options;
        self.call(args)
    }

    /// Invokes and extracts a typed result.
    pub fn call_as<T: AskType>(&self, args: Map) -> Result<T, AskItError> {
        let value = self.call(args)?;
        Ok(T::from_json(&value)?)
    }

    /// The generated source text.
    pub fn source(&self) -> &str {
        &self.generated.source
    }

    /// Substantive lines of generated code (Table II metric).
    pub fn loc(&self) -> usize {
        self.generated.loc
    }

    /// Attempts the generation took (0 = loaded from cache).
    pub fn attempts(&self) -> usize {
        self.generated.attempts
    }

    /// Total compile time (simulated LLM latency + validation).
    pub fn compile_time(&self) -> std::time::Duration {
        self.generated.compile_time
    }

    /// The surface syntax of the generated code.
    pub fn syntax(&self) -> Syntax {
        self.generated.syntax
    }

    /// Access to the raw generation record.
    pub fn generated(&self) -> &GeneratedFunction {
        &self.generated
    }
}

/// Builds the named-argument [`Map`] for AskIt calls.
///
/// ```
/// use askit_core::args;
/// let m = args! { n: 5, subject: "computer science" };
/// assert_eq!(m.get("n"), Some(&askit_json::Json::Int(5)));
/// ```
#[macro_export]
macro_rules! args {
    () => { ::askit_json::Map::new() };
    ( $( $name:ident : $value:expr ),+ $(,)? ) => {{
        let mut map = ::askit_json::Map::new();
        $( map.insert(stringify!($name), ::askit_json::ToJson::to_json(&$value)); )+
        map
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::example;
    use crate::json_enum;
    use askit_llm::{
        FaultConfig, MockLlm, MockLlmConfig, ModelChoice, Oracle, RecordingLlm, ScriptedLlm,
    };

    fn quiet_mock() -> MockLlm {
        MockLlm::new(
            MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
            Oracle::standard(),
        )
    }

    #[test]
    fn ask_and_ask_as() {
        let askit = Askit::new(quiet_mock());
        let v = askit
            .ask(
                askit_types::int(),
                "What is {{x}} plus {{y}}?",
                args! { x: 40, y: 2 },
            )
            .unwrap();
        assert_eq!(v, Json::Int(42));
        let typed: i64 = askit
            .ask_as("What is {{x}} plus {{y}}?", args! { x: 1, y: 2 })
            .unwrap();
        assert_eq!(typed, 3);
    }

    #[test]
    fn sentiment_with_json_enum() {
        json_enum! {
            enum Sentiment {
                Positive = "positive",
                Negative = "negative",
            }
        }
        let askit = Askit::new(quiet_mock());
        let getter = askit
            .define_as::<Sentiment>("What is the sentiment of {{review}}?")
            .unwrap();
        let s: Sentiment = getter
            .call_as(args! { review: "The product is fantastic. It exceeds all my expectations." })
            .unwrap();
        assert_eq!(s, Sentiment::Positive);
        let s: Sentiment = getter
            .call_as(args! { review: "Terrible quality, broke immediately. What a waste." })
            .unwrap();
        assert_eq!(s, Sentiment::Negative);
    }

    #[test]
    fn define_reuses_the_template_across_calls() {
        let askit = Askit::new(quiet_mock());
        let mul = askit
            .define(askit_types::int(), "What is {{x}} times {{y}}?")
            .unwrap();
        for (x, y) in [(2i64, 3i64), (4, 5), (6, 7)] {
            assert_eq!(mul.call(args! { x: x, y: y }).unwrap(), Json::Int(x * y));
        }
    }

    #[test]
    fn compile_switches_modes_without_changing_the_template() {
        let mut oracle = Oracle::standard();
        oracle.add_code_fn("multiply", |task| {
            if !task.instruction.contains("times") {
                return None;
            }
            use minilang::build::*;
            let names: Vec<String> = task.params.iter().map(|p| p.name.clone()).collect();
            Some(func(
                "m",
                [],
                askit_types::int(),
                vec![ret(mul(var(names[0].clone()), var(names[1].clone())))],
            ))
        });
        let llm = MockLlm::new(
            MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
            oracle,
        );
        let askit = Askit::new(llm);
        let template = "What is {{x}} times {{y}}?";
        let task = askit
            .define(askit_types::int(), template)
            .unwrap()
            .with_param_types([("x", askit_types::int()), ("y", askit_types::int())])
            .with_tests([example(&[("x", 3i64), ("y", 4i64)], 12i64)]);

        // Direct mode.
        let direct = task.call(args! { x: 6, y: 7 }).unwrap();
        // Compiled mode — same template object.
        let compiled = task.compile(Syntax::Ts).unwrap();
        let fast = compiled.call(args! { x: 6, y: 7 }).unwrap();
        assert_eq!(direct, fast);
        assert_eq!(direct, Json::Int(42));
        assert!(compiled.source().contains("function"));
        assert!(compiled.loc() >= 2);
    }

    #[test]
    fn compile_with_store_caches() {
        let mut oracle = Oracle::standard();
        oracle.add_code_fn("inc", |task| {
            task.instruction.contains("one more than").then(|| {
                use minilang::build::*;
                let n = task.params[0].name.clone();
                func(
                    "i",
                    [],
                    askit_types::int(),
                    vec![ret(add(var(n), num(1.0)))],
                )
            })
        });
        let llm = MockLlm::new(
            MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
            oracle,
        );
        let askit = Askit::new(llm);
        let dir = std::env::temp_dir().join(format!("askit-fn-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FunctionStore::open(&dir).unwrap();

        let task = askit
            .define(askit_types::int(), "What number is one more than {{n}}?")
            .unwrap()
            .with_tests([example(&[("n", 1i64)], 2i64)]);
        let first = task.compile_with_store(Syntax::Ts, &store).unwrap();
        assert_eq!(first.attempts(), 1);
        let calls_after_first = askit.llm().calls();
        let second = task.compile_with_store(Syntax::Ts, &store).unwrap();
        assert_eq!(second.attempts(), 0, "second compile is a cache hit");
        assert_eq!(askit.llm().calls(), calls_after_first, "no new LLM calls");
        assert_eq!(second.call(args! { n: 9 }).unwrap(), Json::Int(10));
    }

    #[test]
    fn untyped_params_flow_to_spec_as_any() {
        let askit = Askit::new(quiet_mock());
        let task = askit
            .define(askit_types::int(), "Combine {{a}} and {{b}}")
            .unwrap();
        let spec = task.spec(Syntax::Py);
        assert!(spec.params.iter().all(|p| p.ty == askit_types::any()));
        let typed = askit
            .define(askit_types::int(), "Combine {{a}} and {{b}}")
            .unwrap()
            .with_param_types([("a", askit_types::int())]);
        let spec = typed.spec(Syntax::Ts);
        assert_eq!(spec.params[0].ty, askit_types::int());
        assert_eq!(
            spec.params[1].ty,
            askit_types::any(),
            "undeclared param stays any"
        );
    }

    #[test]
    fn compiled_function_result_is_type_checked() {
        // A scripted "model" that returns a function with the wrong result
        // type; with no tests the code passes validation (check allows the
        // any-typed return) — but the call-site coercion still catches it.
        let llm = ScriptedLlm::new([
            "```typescript\nexport function whatIsTheMagicWord({w}: {w: any}): any {\n  return 5;\n}\n```",
        ]);
        let askit = Askit::new(llm);
        let task = askit
            .define(askit_types::string(), "What is the magic word {{w}}?")
            .unwrap()
            .named("whatIsTheMagicWord");
        let compiled = task.compile(Syntax::Ts).unwrap();
        let err = compiled.call(args! { w: "please" }).unwrap_err();
        assert!(matches!(err, AskItError::Type(_)), "{err}");
    }

    #[test]
    fn run_batch_preserves_order_across_mixed_models() {
        let askit = Askit::new(quiet_mock());
        let queries: Vec<_> = (0..10i64)
            .map(|i| {
                askit
                    .query::<i64>("What is {{x}} plus {{y}}?")
                    .args(args! { x: i, y: 100 })
                    .model(if i % 2 == 0 {
                        ModelChoice::Gpt35
                    } else {
                        ModelChoice::Gpt4
                    })
                    .build()
                    .unwrap()
            })
            .collect();
        let results = askit.run_batch(&queries);
        assert_eq!(results.len(), 10);
        for (i, result) in results.iter().enumerate() {
            assert_eq!(*result.as_ref().unwrap(), i as i64 + 100);
        }
        // The detailed variant carries latency: the routed models differ.
        let detailed = askit.run_batch_detailed(&queries);
        let gpt35_latency = detailed[0].as_ref().unwrap().latency;
        let gpt4_latency = detailed[1].as_ref().unwrap().latency;
        assert!(gpt35_latency < gpt4_latency, "routing reached the mock");
    }

    #[test]
    fn call_with_layers_per_invocation_over_function_options() {
        let llm = RecordingLlm::new(ScriptedLlm::new([
            "```json\n{\"answer\": 1}\n```",
            "```json\n{\"answer\": 2}\n```",
        ]));
        let askit = Askit::new(llm);
        let task = askit
            .define(askit_types::int(), "Question?")
            .unwrap()
            .with_options(QueryOptions::new().with_model(ModelChoice::Gpt35));
        // No per-invocation override: the function's own options apply.
        let _ = task.call(args! {}).unwrap();
        // Per-invocation override beats the function's options.
        let _ = task
            .call_with(args! {}, &QueryOptions::new().with_model(ModelChoice::Gpt4))
            .unwrap();
        let log = askit.llm().exchanges();
        assert_eq!(log[0].request.options.model, ModelChoice::Gpt35);
        assert_eq!(log[1].request.options.model, ModelChoice::Gpt4);
    }

    #[test]
    fn compiled_functions_accept_call_with_uniformly() {
        let llm = ScriptedLlm::new([
            "```typescript\nexport function double({n}: {n: number}): number {\n  return n * 2;\n}\n```",
        ]);
        let askit = Askit::new(llm);
        let compiled = askit
            .define(askit_types::int(), "Double {{n}}")
            .unwrap()
            .named("double")
            .compile(Syntax::Ts)
            .unwrap();
        let options = QueryOptions::new().with_model(ModelChoice::Gpt4);
        assert_eq!(
            compiled.call_with(args! { n: 21 }, &options).unwrap(),
            Json::Int(42)
        );
    }

    #[test]
    fn args_macro_shapes() {
        let empty = args! {};
        assert!(empty.is_empty());
        let m = args! { a: 1i64, b: "two", c: vec![3i64], };
        assert_eq!(m.len(), 3);
        assert_eq!(m.get("c"), Some(&Json::parse("[3]").unwrap()));
    }
}
