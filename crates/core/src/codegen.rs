//! Code generation for codable tasks (paper §III-D).
//!
//! Step 1 builds the Figure 4 one-shot prompt, Step 2 calls the model,
//! Step 3 extracts the code from the markdown fence and validates it —
//! syntactically (parse + best-effort static check) and semantically (run
//! against the caller's test examples). Steps 2–3 repeat until code passes,
//! up to the retry budget (the paper's experiments use 9 retries).

use std::time::{Duration, Instant};

use askit_json::extract;
use askit_llm::{CompletionRequest, LanguageModel, PreparedRequest, TokenUsage};
use minilang::pretty::Syntax;
use minilang::{check_program, loc::count_loc, Interp, Program};

use crate::config::AskitConfig;
use crate::error::AskItError;
use crate::examples::Example;
use crate::prompt::{codegen_prompt, FunctionSpec};

/// A function generated and validated by the pipeline.
#[derive(Debug, Clone)]
pub struct GeneratedFunction {
    /// The function name (matches the spec).
    pub name: String,
    /// The exact source text extracted from the model reply.
    pub source: String,
    /// The parsed program (one function).
    pub program: Program,
    /// The surface syntax of `source`.
    pub syntax: Syntax,
    /// Attempts used (1 = first try passed).
    pub attempts: usize,
    /// Substantive lines of code in `source` — the Table II metric.
    pub loc: usize,
    /// Aggregate token usage across attempts.
    pub usage: TokenUsage,
    /// Total compilation time: simulated model latency plus real validation
    /// time. This is Table III's "Compilation Time".
    pub compile_time: Duration,
}

impl GeneratedFunction {
    /// Runs the generated function with named JSON arguments.
    ///
    /// # Errors
    ///
    /// Propagates MiniLang runtime errors.
    pub fn call(&self, args: &askit_json::Map) -> Result<askit_json::Json, AskItError> {
        Ok(Interp::new(&self.program).call_json(&self.name, args)?)
    }
}

/// Runs the §III-D pipeline for one function specification.
///
/// `tests` are the validation examples; with an empty slice only the
/// syntactic check gates acceptance (as in the paper when no examples are
/// supplied).
///
/// # Errors
///
/// [`AskItError::CodegenFailed`] when no attempt validates.
pub fn generate<L: LanguageModel>(
    llm: &L,
    spec: &FunctionSpec,
    tests: &[Example],
    config: &AskitConfig,
) -> Result<GeneratedFunction, AskItError> {
    let prompt = codegen_prompt(spec);
    let mut usage = TokenUsage::default();
    let mut compile_time = Duration::ZERO;
    let mut last_problem = String::new();

    // The prompt is identical across retries; temperature-1.0 sampling
    // makes each response unique (paper §III-D Step 2). Preparing the
    // request once hashes the (large, one-shot) prompt once — each retry
    // re-salts the memoized hash with its sample ordinal instead of
    // re-hashing, and no per-attempt prompt clone is made.
    let prepared = PreparedRequest::new(CompletionRequest {
        messages: vec![askit_llm::ChatMessage::user(prompt)],
        temperature: config.temperature,
        options: config.request_options(),
    });

    for attempt in 1..=config.max_retries + 1 {
        // The attempt ordinal rides along as the sample tag so caching
        // layers never replay a rejected response into its own retry.
        let completion = llm.complete_prepared(&prepared, (attempt - 1) as u64)?;
        usage.prompt_tokens += completion.usage.prompt_tokens;
        usage.completion_tokens += completion.usage.completion_tokens;
        compile_time += completion.latency;

        let validation_started = Instant::now();
        let outcome = validate_reply(&completion.text, spec, tests);
        compile_time += validation_started.elapsed();

        match outcome {
            Ok((source, program)) => {
                let loc = count_loc(&source);
                return Ok(GeneratedFunction {
                    name: spec.name.clone(),
                    source,
                    program,
                    syntax: spec.syntax,
                    attempts: attempt,
                    loc,
                    usage,
                    compile_time,
                });
            }
            Err(problem) => {
                // Evict the rejected attempt from memoizing layers; the next
                // generate() for this spec starts at sample ordinal 0 again
                // and must not replay a completion that failed validation.
                llm.reject_prepared(&prepared, (attempt - 1) as u64);
                last_problem = problem;
            }
        }
    }
    Err(AskItError::CodegenFailed {
        attempts: config.max_retries + 1,
        last_problem,
    })
}

/// Step 3: extract, parse, statically check, and example-test one reply.
pub fn validate_reply(
    reply: &str,
    spec: &FunctionSpec,
    tests: &[Example],
) -> Result<(String, Program), String> {
    // Extraction: the reply must carry a fenced code block.
    let Some(code) = extract::code_block(reply, spec.syntax.fence_tag()) else {
        return Err("the reply contains no fenced code block".to_owned());
    };
    let source = code.to_owned();

    // Syntactic check.
    let program = minilang::parse(&source, spec.syntax)
        .map_err(|e| format!("the code does not parse: {e}"))?;
    let Some(decl) = program.function(&spec.name) else {
        return Err(format!("the code does not define '{}'", spec.name));
    };
    if decl.params.len() != spec.params.len() {
        return Err(format!(
            "'{}' has {} parameter(s), expected {}",
            spec.name,
            decl.params.len(),
            spec.params.len()
        ));
    }
    let findings = check_program(&program);
    if let Some(first) = findings.first() {
        return Err(format!("static check failed: {first}"));
    }

    // Semantic check: run the validation examples.
    for (i, example) in tests.iter().enumerate() {
        let mut interp = Interp::new(&program);
        match interp.call_json(&spec.name, &example.input) {
            Ok(actual) => {
                if !actual.loosely_equals(&example.output) {
                    return Err(format!(
                        "test {i} failed: expected {}, got {actual}",
                        example.output
                    ));
                }
            }
            Err(e) => return Err(format!("test {i} crashed: {e}")),
        }
    }
    Ok((source, program))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::example;
    use askit_json::{json, Json, Map};
    use askit_llm::ScriptedLlm;
    use minilang::ast::Param;

    fn factorial_spec(syntax: Syntax) -> FunctionSpec {
        FunctionSpec {
            name: "calculateFactorial".into(),
            params: vec![Param {
                name: "n".into(),
                ty: askit_types::int(),
            }],
            ret: askit_types::int(),
            instruction: "Calculate the factorial of 'n'".into(),
            syntax,
        }
    }

    fn good_ts_reply() -> &'static str {
        "A:\n```typescript\nexport function calculateFactorial({n}: {n: number}): number {\n  let acc = 1;\n  for (let i = 2; i <= n; i++) {\n    acc *= i;\n  }\n  return acc;\n}\n```"
    }

    #[test]
    fn accepts_a_correct_reply_first_try() {
        let llm = ScriptedLlm::new([good_ts_reply()]);
        let tests = vec![
            example(&[("n", 5i64)], 120i64),
            example(&[("n", 0i64)], 1i64),
        ];
        let g = generate(
            &llm,
            &factorial_spec(Syntax::Ts),
            &tests,
            &AskitConfig::default(),
        )
        .unwrap();
        assert_eq!(g.attempts, 1);
        assert_eq!(g.loc, 7);
        let mut args = Map::new();
        args.insert("n", json!(6i64));
        assert_eq!(g.call(&args).unwrap(), Json::Int(720));
    }

    #[test]
    fn rejects_then_accepts_across_retries() {
        let llm = ScriptedLlm::new([
            // no fence
            "function calculateFactorial() {}".to_owned(),
            // parse error
            "```typescript\nexport function calculateFactorial({n}: {n: number}): number { retur\n```".to_owned(),
            // wrong function name
            "```typescript\nexport function somethingElse({n}: {n: number}): number {\n  return 1;\n}\n```".to_owned(),
            // wrong behaviour (fails the example test)
            "```typescript\nexport function calculateFactorial({n}: {n: number}): number {\n  return n;\n}\n```".to_owned(),
            good_ts_reply().to_owned(),
        ]);
        let tests = vec![example(&[("n", 5i64)], 120i64)];
        let g = generate(
            &llm,
            &factorial_spec(Syntax::Ts),
            &tests,
            &AskitConfig::default(),
        )
        .unwrap();
        assert_eq!(g.attempts, 5);
        assert_eq!(llm.served(), 5);
    }

    #[test]
    fn static_check_gates_nonsense() {
        let reply = "```typescript\nexport function calculateFactorial({n}: {n: number}): number {\n  return undefinedVariable;\n}\n```";
        let err = validate_reply(reply, &factorial_spec(Syntax::Ts), &[]).unwrap_err();
        assert!(err.contains("static check failed"), "{err}");
    }

    #[test]
    fn runtime_crash_in_tests_is_reported() {
        let reply = "```typescript\nexport function calculateFactorial({n}: {n: number}): number {\n  let xs = [1];\n  return xs[99];\n}\n```";
        let tests = vec![example(&[("n", 1i64)], 1i64)];
        let err = validate_reply(reply, &factorial_spec(Syntax::Ts), &tests).unwrap_err();
        assert!(err.contains("crashed"), "{err}");
    }

    #[test]
    fn exhaustion_reports_last_problem() {
        let responses: Vec<String> = (0..10).map(|_| "no code, sorry".to_owned()).collect();
        let llm = ScriptedLlm::new(responses);
        let err = generate(
            &llm,
            &factorial_spec(Syntax::Ts),
            &[],
            &AskitConfig::default(),
        )
        .unwrap_err();
        match err {
            AskItError::CodegenFailed {
                attempts,
                last_problem,
            } => {
                assert_eq!(attempts, 10);
                assert!(last_problem.contains("no fenced code block"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn python_pipeline_end_to_end_with_mock() {
        let mut oracle = askit_llm::Oracle::standard();
        oracle.add_code_fn("factorial", |task| {
            if !task.instruction.to_lowercase().contains("factorial") {
                return None;
            }
            use minilang::build::*;
            let n = task
                .params
                .first()
                .map(|p| p.name.clone())
                .unwrap_or_else(|| "n".into());
            Some(func(
                "f",
                [],
                askit_types::int(),
                vec![
                    let_("acc", num(1.0)),
                    for_range_incl(
                        "i",
                        num(2.0),
                        var(n),
                        vec![assign_op("acc", minilang::BinOp::Mul, var("i"))],
                    ),
                    ret(var("acc")),
                ],
            ))
        });
        let llm = askit_llm::MockLlm::new(
            askit_llm::MockLlmConfig::gpt35().with_faults(askit_llm::FaultConfig::none()),
            oracle,
        );
        let tests = vec![example(&[("n", 4i64)], 24i64)];
        let g = generate(
            &llm,
            &factorial_spec(Syntax::Py),
            &tests,
            &AskitConfig::default(),
        )
        .unwrap();
        assert!(
            g.source.starts_with("def calculateFactorial(n):"),
            "{}",
            g.source
        );
        let mut args = Map::new();
        args.insert("n", json!(5i64));
        assert_eq!(g.call(&args).unwrap(), Json::Int(120));
        assert!(g.compile_time > Duration::ZERO);
    }

    #[test]
    fn mock_with_bugs_converges_through_retries() {
        let mut oracle = askit_llm::Oracle::standard();
        oracle.add_code_fn("factorial", |task| {
            if !task.instruction.to_lowercase().contains("factorial") {
                return None;
            }
            use minilang::build::*;
            Some(func(
                "f",
                [],
                askit_types::int(),
                vec![
                    let_("acc", num(1.0)),
                    for_range_incl(
                        "i",
                        num(2.0),
                        var("n"),
                        vec![assign_op("acc", minilang::BinOp::Mul, var("i"))],
                    ),
                    ret(var("acc")),
                ],
            ))
        });
        let cfg =
            askit_llm::MockLlmConfig::gpt35()
                .with_seed(1)
                .with_faults(askit_llm::FaultConfig {
                    direct_fault_rate: 0.0,
                    // Codegen retries resend the identical prompt (§III-D), so
                    // the mock sees attempt 0 each time: a constant rate < 1
                    // converges geometrically, like real temperature sampling.
                    code_bug_rate: 0.7,
                    decay: 1.0,
                });
        let llm = askit_llm::MockLlm::new(cfg, oracle);
        let tests = vec![
            example(&[("n", 5i64)], 120i64),
            example(&[("n", 3i64)], 6i64),
        ];
        let mut any_retry = false;
        for _ in 0..6 {
            let g = generate(
                &llm,
                &factorial_spec(Syntax::Ts),
                &tests,
                &AskitConfig::default(),
            )
            .unwrap();
            any_retry |= g.attempts > 1;
            let mut args = Map::new();
            args.insert("n", json!(5i64));
            assert_eq!(g.call(&args).unwrap(), Json::Int(120));
        }
        assert!(
            any_retry,
            "70% bug rate must force at least one retry in six runs"
        );
    }
}
