//! The on-disk function store (paper §III-D: "the DSL compiler stores it in
//! a file within the directory named `askit` … named after the template
//! prompt"; §III-F: "The generated code is cached in a file upon its initial
//! creation, ensuring that code generation happens only once").
//!
//! Two layouts are supported:
//!
//! * **private** ([`FunctionStore::open`]) — one flat file per template,
//!   named after the prompt. Human-readable, single-process.
//! * **shared** ([`FunctionStore::open_shared`]) — the generated source is
//!   published into the content-addressed [`ObjectStore`] and a
//!   `code_cache` link maps the *task CID* (canonical encoding of template
//!   source, function name, and syntax) to the object. Any number of
//!   processes can share the directory: objects are write-once, and two
//!   workers that generate the same code for the same task collapse to a
//!   single object.

use std::path::{Path, PathBuf};

use askit_exec::{CanonicalEncoder, Cid, ObjectStore};
use minilang::loc::count_loc;
use minilang::pretty::Syntax;
use minilang::Program;

use crate::codegen::GeneratedFunction;
use crate::error::AskItError;

/// Schema tag namespacing task CIDs in the shared `code_cache`.
const CODE_CACHE_SCHEMA: &str = "askit.code_cache.v1";

/// The link namespace mapping task CIDs to compiled-object CIDs.
const CODE_CACHE_NS: &str = "code_cache";

/// A directory of cached generated functions.
#[derive(Debug, Clone)]
pub struct FunctionStore {
    dir: PathBuf,
    shared: Option<ObjectStore>,
}

impl FunctionStore {
    /// Opens (creating if needed) a store at `dir`.
    ///
    /// # Errors
    ///
    /// [`AskItError::Store`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, AskItError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| AskItError::Store(format!("cannot create {}: {e}", dir.display())))?;
        Ok(FunctionStore { dir, shared: None })
    }

    /// Opens a store backed by the content-addressed [`ObjectStore`] at
    /// `dir`, safe to share with concurrent processes.
    ///
    /// The directory may simultaneously host a shared completion cache —
    /// the two use disjoint namespaces of the same store.
    ///
    /// # Errors
    ///
    /// [`AskItError::Store`] if the store layout cannot be created.
    pub fn open_shared(dir: impl Into<PathBuf>) -> Result<Self, AskItError> {
        let dir = dir.into();
        let store = ObjectStore::open(&dir)
            .map_err(|e| AskItError::Store(format!("cannot open {}: {e}", dir.display())))?;
        Ok(FunctionStore {
            dir,
            shared: Some(store),
        })
    }

    /// Whether this store uses the shared content-addressed layout.
    pub fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content identity of a codegen task: template source, function
    /// name, and target syntax, canonically encoded. Everything that
    /// changes the generated artifact is in; nothing else is.
    pub fn task_cid(template_source: &str, name: &str, syntax: Syntax) -> Cid {
        let mut enc = CanonicalEncoder::new(CODE_CACHE_SCHEMA);
        enc.str(template_source);
        enc.str(name);
        enc.str(match syntax {
            Syntax::Ts => "ts",
            Syntax::Py => "py",
        });
        enc.cid()
    }

    /// The cache file path for a template prompt and syntax.
    pub fn path_for(&self, template_source: &str, syntax: Syntax) -> PathBuf {
        let ext = match syntax {
            Syntax::Ts => "ts",
            Syntax::Py => "py",
        };
        let slug = slugify(template_source);
        let hash = fnv1a(template_source.as_bytes());
        self.dir.join(format!("{slug}-{hash:08x}.{ext}"))
    }

    /// Saves a generated function under its template prompt.
    ///
    /// In shared mode the source becomes a write-once object and a
    /// `code_cache` link points the task CID at it; the returned path is
    /// the link file. Publishing is atomic, so concurrent savers are safe
    /// — last link wins, but both objects are retained.
    ///
    /// # Errors
    ///
    /// [`AskItError::Store`] on I/O failure.
    pub fn save(
        &self,
        template_source: &str,
        generated: &GeneratedFunction,
    ) -> Result<PathBuf, AskItError> {
        if let Some(store) = &self.shared {
            let task = Self::task_cid(template_source, &generated.name, generated.syntax);
            let object = store
                .put_bytes(generated.source.as_bytes())
                .map_err(|e| AskItError::Store(format!("cannot publish object: {e}")))?;
            store
                .link(CODE_CACHE_NS, task, object)
                .map_err(|e| AskItError::Store(format!("cannot link {task}: {e}")))?;
            return Ok(self
                .dir
                .join("refs")
                .join(CODE_CACHE_NS)
                .join(task.to_hex()));
        }
        let path = self.path_for(template_source, generated.syntax);
        std::fs::write(&path, &generated.source)
            .map_err(|e| AskItError::Store(format!("cannot write {}: {e}", path.display())))?;
        Ok(path)
    }

    /// Loads a cached function if present.
    ///
    /// # Errors
    ///
    /// [`AskItError::Syntax`] when the cached artifact no longer parses
    /// (manual edits), [`AskItError::Store`] on I/O failure.
    pub fn load(
        &self,
        template_source: &str,
        name: &str,
        syntax: Syntax,
    ) -> Result<Option<GeneratedFunction>, AskItError> {
        let (source, origin) = if let Some(store) = &self.shared {
            let task = Self::task_cid(template_source, name, syntax);
            let bytes = match store.resolve_bytes(CODE_CACHE_NS, task) {
                Ok(Some(bytes)) => bytes,
                Ok(None) => return Ok(None),
                Err(e) => return Err(AskItError::Store(format!("cannot resolve {task}: {e}"))),
            };
            // A CID-verified object that is not UTF-8 was never valid
            // source; treat it as a miss so the caller regenerates.
            match String::from_utf8(bytes) {
                Ok(source) => (source, format!("object {task}")),
                Err(_) => return Ok(None),
            }
        } else {
            let path = self.path_for(template_source, syntax);
            let source = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
                Err(e) => {
                    return Err(AskItError::Store(format!(
                        "cannot read {}: {e}",
                        path.display()
                    )))
                }
            };
            (source, path.display().to_string())
        };
        let program: Program = minilang::parse(&source, syntax)?;
        if program.function(name).is_none() {
            return Err(AskItError::Store(format!(
                "cached {origin} does not define '{name}'"
            )));
        }
        let loc = count_loc(&source);
        Ok(Some(GeneratedFunction {
            name: name.to_owned(),
            source,
            program,
            syntax,
            attempts: 0, // cache hit: no generation happened
            loc,
            usage: askit_llm::TokenUsage::default(),
            compile_time: std::time::Duration::ZERO,
        }))
    }
}

/// A filesystem-safe slug of the template prompt (first 40 chars).
fn slugify(text: &str) -> String {
    let mut slug = String::new();
    let mut last_dash = false;
    for c in text.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
            last_dash = false;
        } else if !last_dash && !slug.is_empty() {
            slug.push('-');
            last_dash = true;
        }
        if slug.len() >= 40 {
            break;
        }
    }
    let slug = slug.trim_end_matches('-').to_owned();
    if slug.is_empty() {
        "prompt".to_owned()
    } else {
        slug
    }
}

/// FNV-1a, the classic tiny stable hash — fine for cache file naming.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> FunctionStore {
        let dir =
            std::env::temp_dir().join(format!("askit-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        FunctionStore::open(dir).unwrap()
    }

    fn generated() -> GeneratedFunction {
        let source = "export function f({n}: {n: number}): number {\n  return n + 1;\n}\n";
        GeneratedFunction {
            name: "f".into(),
            source: source.into(),
            program: minilang::parse_ts(source).unwrap(),
            syntax: Syntax::Ts,
            attempts: 1,
            loc: 3,
            usage: askit_llm::TokenUsage::default(),
            compile_time: std::time::Duration::ZERO,
        }
    }

    #[test]
    fn save_then_load_roundtrip() {
        let store = tmp_store("roundtrip");
        let template = "Increment {{n}}.";
        assert!(store.load(template, "f", Syntax::Ts).unwrap().is_none());
        let path = store.save(template, &generated()).unwrap();
        assert!(path.exists());
        let loaded = store.load(template, "f", Syntax::Ts).unwrap().unwrap();
        assert_eq!(loaded.source, generated().source);
        assert_eq!(loaded.attempts, 0, "cache hits report zero attempts");
        assert_eq!(loaded.loc, 3);
    }

    #[test]
    fn paths_are_named_after_the_template() {
        let store = tmp_store("naming");
        let p = store.path_for("Calculate the factorial of {{n}}.", Syntax::Ts);
        let name = p.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("calculate-the-factorial-of-n"), "{name}");
        assert!(name.ends_with(".ts"));
        let q = store.path_for("Calculate the factorial of {{n}}.", Syntax::Py);
        assert!(q.to_string_lossy().ends_with(".py"));
        assert_ne!(p, q);
    }

    #[test]
    fn different_templates_do_not_collide() {
        let store = tmp_store("collide");
        let a = store.path_for("Sort {{xs}} ascending", Syntax::Ts);
        let b = store.path_for("Sort {{xs}} descending", Syntax::Ts);
        assert_ne!(a, b);
    }

    #[test]
    fn corrupted_cache_is_an_error_not_a_panic() {
        let store = tmp_store("corrupt");
        let template = "Do a thing with {{x}}";
        let path = store.path_for(template, Syntax::Ts);
        std::fs::write(&path, "this is not minits").unwrap();
        assert!(matches!(
            store.load(template, "f", Syntax::Ts),
            Err(AskItError::Syntax(_))
        ));
    }

    #[test]
    fn missing_function_in_cache_is_reported() {
        let store = tmp_store("wrongname");
        let template = "Another {{x}}";
        store.save(template, &generated()).unwrap();
        assert!(matches!(
            store.load(template, "other", Syntax::Ts),
            Err(AskItError::Store(_))
        ));
    }

    #[test]
    fn slug_handles_awkward_input() {
        assert_eq!(slugify(""), "prompt");
        assert_eq!(slugify("???"), "prompt");
        assert_eq!(slugify("Reverse the string {{s}}."), "reverse-the-string-s");
    }

    fn tmp_shared(tag: &str) -> FunctionStore {
        let dir =
            std::env::temp_dir().join(format!("askit-store-shared-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        FunctionStore::open_shared(dir).unwrap()
    }

    #[test]
    fn shared_roundtrip_and_cross_instance_visibility() {
        let store = tmp_shared("roundtrip");
        assert!(store.is_shared());
        let template = "Increment {{n}}.";
        assert!(store.load(template, "f", Syntax::Ts).unwrap().is_none());
        let link = store.save(template, &generated()).unwrap();
        assert!(link.exists(), "link file at {}", link.display());

        // A second instance on the same directory (another process, in
        // effect) sees the artifact immediately.
        let other = FunctionStore::open_shared(store.dir()).unwrap();
        let loaded = other.load(template, "f", Syntax::Ts).unwrap().unwrap();
        assert_eq!(loaded.source, generated().source);
        assert_eq!(loaded.attempts, 0);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn task_cid_separates_template_name_and_syntax() {
        let a = FunctionStore::task_cid("Sort {{xs}}", "f", Syntax::Ts);
        assert_ne!(a, FunctionStore::task_cid("Sort {{ys}}", "f", Syntax::Ts));
        assert_ne!(a, FunctionStore::task_cid("Sort {{xs}}", "g", Syntax::Ts));
        assert_ne!(a, FunctionStore::task_cid("Sort {{xs}}", "f", Syntax::Py));
        assert_eq!(a, FunctionStore::task_cid("Sort {{xs}}", "f", Syntax::Ts));
    }

    #[test]
    fn shared_wrong_name_is_reported_not_a_panic() {
        let store = tmp_shared("wrongname");
        let template = "Another {{x}}";
        store.save(template, &generated()).unwrap();
        // Different function name → different task CID → clean miss.
        assert!(store.load(template, "other", Syntax::Ts).unwrap().is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn shared_and_completion_cache_namespaces_coexist() {
        let store = tmp_shared("coexist");
        store.save("Coexist {{x}}", &generated()).unwrap();
        // The same directory can host a shared completion cache.
        let cache = askit_exec::CompletionCache::open_shared(64, store.dir(), None).unwrap();
        cache.persist().unwrap();
        assert!(store
            .load("Coexist {{x}}", "f", Syntax::Ts)
            .unwrap()
            .is_some());
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
