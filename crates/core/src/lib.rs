//! # askit-core
//!
//! The Rust implementation of **AskIt** (Okuda & Amarasinghe, CGO 2024):
//! a unified programming interface for programming with large language
//! models.
//!
//! One prompt template drives both of AskIt's execution modes:
//!
//! * **direct** — [`Askit::ask`] / [`TaskFunction::call`] send the task to
//!   the model at runtime, with *type-guided output control*: the expected
//!   answer type is printed (in TypeScript syntax) into the prompt, and the
//!   response is extracted, validated and coerced against it, retrying with
//!   targeted feedback when any of the paper's three criteria fail;
//! * **compiled** — [`TaskFunction::compile`] asks the model to *implement*
//!   the task as code (the Figure 4 one-shot prompt), validates the code
//!   syntactically and against test examples, caches it, and returns a
//!   [`CompiledFunction`] whose calls never touch the model again.
//!
//! Switching between the modes changes one method call and zero prompts —
//! the paper's central claim.
//!
//! Requests themselves are first-class values: [`Askit::query`] opens a
//! typed builder over a template, every option (model routing,
//! temperature, retry budget, cache policy) is a per-call override of the
//! instance [`AskitConfig`], and built [`Query<T>`]s run singly or as an
//! order-preserving batch via [`Askit::run_batch`]. `ask`/`ask_as`/`define`
//! remain as shorthand over the builder.
//!
//! # Quick start
//!
//! ```
//! use askit_core::{args, example, Askit};
//! use askit_llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
//! use minilang::Syntax;
//!
//! let llm = MockLlm::new(
//!     MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
//!     Oracle::standard(),
//! );
//! let askit = Askit::new(llm);
//!
//! // Directly answerable task, typed by the Rust result type.
//! let product: i64 = askit.ask_as("What is {{x}} times {{y}}?", args! { x: 6, y: 9 })?;
//! assert_eq!(product, 54);
//! # Ok::<(), askit_core::AskItError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod codegen;
mod config;
mod error;
mod examples;
mod function;
pub mod prompt;
mod query;
pub mod registry;
pub mod runtime;
mod store;
mod typed;

pub use codegen::GeneratedFunction;
pub use config::AskitConfig;
pub use error::AskItError;
pub use examples::{example, examples_section, Example};
pub use function::{Askit, CompiledFunction, TaskFunction};
pub use prompt::{codegen_prompt, derive_function_name, direct_prompt, FunctionSpec};
pub use query::{Query, QueryBuilder, QueryOptions};
pub use registry::{
    FunctionRegistry, FunctionSignature, ServableFunction, ServedCompiled, ServedTask,
};
pub use runtime::{evaluate_response, run_direct, DirectOutcome};
pub use store::FunctionStore;
pub use typed::{extract, AskType};

// Re-exported so builder call sites (`.model(ModelChoice::Gpt4)`,
// `.cache(CachePolicy::Bypass)`) need only this crate.
pub use askit_llm::{CachePolicy, ModelChoice, RequestOptions};

#[cfg(test)]
mod lib_tests {
    use super::*;
    use askit_llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};

    #[test]
    fn crate_front_door_compiles_and_runs() {
        let llm = MockLlm::new(
            MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
            Oracle::standard(),
        );
        let askit = Askit::new(llm).with_config(AskitConfig::default().with_max_retries(3));
        let v = askit
            .ask(
                askit_types::int(),
                "What is {{a}} minus {{b}}?",
                args! { a: 10, b: 4 },
            )
            .unwrap();
        assert_eq!(v, askit_json::Json::Int(6));
    }
}
