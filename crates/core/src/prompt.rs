//! Prompt synthesis — the heart of type-guided output control.
//!
//! Two prompt shapes, straight from the paper:
//!
//! * [`direct_prompt`] builds the runtime prompt of **Listing 2**: a fixed
//!   JSON-format header, the expected response type printed in TypeScript
//!   inside a ```` ```ts ```` fence, the chain-of-thought instruction, then
//!   the task section rendered from the template (`{{x}}` → `'x'`, plus the
//!   `where 'x' = value` bindings);
//! * [`codegen_prompt`] builds the one-shot prompt of **Figure 4**: a fixed
//!   Q/A example (implementing `add x and y`), then the task's empty
//!   function skeleton with the instruction planted as a body comment.

use askit_json::Map;
use askit_template::Template;
use askit_types::Type;
use minilang::ast::{FuncDecl, Param};
use minilang::pretty::{print_function, Syntax};

use crate::error::AskItError;
use crate::examples::{examples_section, Example};

/// The fixed header of the direct prompt (Listing 2, lines 1–4). The phrase
/// `generates responses in JSON format` doubles as the routing marker the
/// mock model keys on ([`askit_llm::DIRECT_MARKER`]).
const DIRECT_HEADER: &str = "You are a helpful assistant that generates responses in JSON format enclosed with ```json and ``` like:\n```json\n{ \"reason\": \"Step-by-step reason for the answer\", \"answer\": \"Final answer or result\" }\n```\n";

/// Builds the Listing 2 runtime prompt for a directly answerable task.
///
/// # Errors
///
/// Propagates [`askit_template::TemplateError`] for missing/unknown
/// arguments.
///
/// ```
/// use askit_core::prompt::direct_prompt;
/// use askit_template::Template;
/// use askit_json::{json, Map};
///
/// let t = Template::parse("List {{n}} classic books on {{subject}}.").unwrap();
/// let mut args = Map::new();
/// args.insert("n", json!(5i64));
/// args.insert("subject", json!("computer science"));
/// let ty = askit_types::list(askit_types::dict([
///     ("title", askit_types::string()),
///     ("author", askit_types::string()),
///     ("year", askit_types::int()),
/// ]));
/// let p = direct_prompt(&t, &args, &ty, &[]).unwrap();
/// assert!(p.contains("{ reason: string, answer: { title: string, author: string, year: number }[] }"));
/// assert!(p.ends_with("List 'n' classic books on 'subject'.\nwhere 'n' = 5, 'subject' = \"computer science\""));
/// ```
pub fn direct_prompt(
    template: &Template,
    args: &Map,
    answer_type: &Type,
    few_shot: &[Example],
) -> Result<String, AskItError> {
    let envelope = askit_types::dict([
        ("reason", askit_types::string()),
        ("answer", answer_type.clone()),
    ]);
    let task = template.render_task(args)?;
    let mut prompt = String::with_capacity(512);
    prompt.push_str(DIRECT_HEADER);
    prompt.push_str(
        "The response in the JSON code block should match the type defined as follows:\n```ts\n",
    );
    prompt.push_str(&envelope.to_typescript());
    prompt.push_str("\n```\nExplain your answer step-by-step in the 'reason' field.\n\n");
    prompt.push_str(&task);
    prompt.push_str(&examples_section(few_shot));
    Ok(prompt)
}

/// The feedback message appended when a response violates one of the three
/// §III-E criteria. The text names the violated criterion so the model can
/// repair precisely.
pub fn feedback_message(problem: &str) -> String {
    format!(
        "Your previous response was not acceptable: {problem}. Respond again with a single ```json code block whose object contains 'reason' and 'answer', and make 'answer' match the required type exactly."
    )
}

/// Specification of a function to generate (paper §III-D).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSpec {
    /// The unique function name chosen by the compiler.
    pub name: String,
    /// Named parameters with their types (untyped = `any`, the Python
    /// pipeline's information loss).
    pub params: Vec<Param>,
    /// Declared return type.
    pub ret: Type,
    /// The instruction comment (the template with quoted parameter names).
    pub instruction: String,
    /// The surface syntax to generate.
    pub syntax: Syntax,
}

impl FunctionSpec {
    /// Renders the empty function skeleton that goes in the prompt.
    pub fn skeleton(&self) -> String {
        let decl = FuncDecl {
            name: self.name.clone(),
            params: self.params.clone(),
            ret: self.ret.clone(),
            body: vec![],
            exported: true,
            doc: vec![self.instruction.clone()],
        };
        print_function(&decl, self.syntax)
    }
}

/// Builds the Figure 4 one-shot code-generation prompt.
///
/// ```
/// use askit_core::prompt::{codegen_prompt, FunctionSpec};
/// use minilang::{ast::Param, Syntax};
///
/// let spec = FunctionSpec {
///     name: "calculateFactorial".into(),
///     params: vec![Param { name: "n".into(), ty: askit_types::int() }],
///     ret: askit_types::int(),
///     instruction: "Calculate the factorial of 'n'".into(),
///     syntax: Syntax::Ts,
/// };
/// let p = codegen_prompt(&spec);
/// assert!(p.contains("Q: Implement the following function:"));
/// assert!(p.contains("// Calculate the factorial of 'n'"));
/// assert!(p.trim_end().ends_with("```"));
/// ```
pub fn codegen_prompt(spec: &FunctionSpec) -> String {
    let tag = spec.syntax.fence_tag();
    let (example_empty, example_full) = one_shot_example(spec.syntax);
    format!(
        "Q: Implement the following function:\n```{tag}\n{example_empty}```\n\nA:\n```{tag}\n{example_full}```\n\nQ: Implement the following function:\n```{tag}\n{skeleton}```\n",
        skeleton = spec.skeleton(),
    )
}

/// The fixed one-shot example (Figure 4, first two segments): `add 'x' and
/// 'y'`, shown empty and then implemented.
fn one_shot_example(syntax: Syntax) -> (String, String) {
    use minilang::build::{add, func, ret, var};
    let params = [("x", askit_types::float()), ("y", askit_types::float())];
    let mut empty = func("func", params.clone(), askit_types::float(), vec![]);
    empty.doc = vec!["add 'x' and 'y'".to_owned()];
    let mut full = func(
        "func",
        params,
        askit_types::float(),
        vec![ret(add(var("x"), var("y")))],
    );
    full.doc = vec!["add 'x' and 'y'".to_owned()];
    (
        print_function(&empty, syntax),
        print_function(&full, syntax),
    )
}

/// Derives a readable camelCase function name from a template, mirroring
/// how the paper names generated functions after their defining variable.
///
/// ```
/// use askit_core::prompt::derive_function_name;
/// assert_eq!(
///     derive_function_name("Calculate the factorial of {{n}}."),
///     "calculateTheFactorialOfN"
/// );
/// ```
pub fn derive_function_name(template_source: &str) -> String {
    let mut words: Vec<String> = Vec::new();
    let mut current = String::new();
    for c in template_source.chars() {
        if c.is_ascii_alphanumeric() {
            current.push(c.to_ascii_lowercase());
        } else if !current.is_empty() {
            words.push(std::mem::take(&mut current));
        }
        if words.len() >= 5 {
            break;
        }
    }
    if !current.is_empty() && words.len() < 5 {
        words.push(current);
    }
    if words.is_empty() {
        return "generatedFunction".to_owned();
    }
    let mut name = String::new();
    for (i, w) in words.iter().enumerate() {
        if i == 0 {
            name.push_str(w);
        } else {
            let mut chars = w.chars();
            if let Some(first) = chars.next() {
                name.push(first.to_ascii_uppercase());
                name.extend(chars);
            }
        }
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use askit_json::json;
    use askit_template::Template;

    #[test]
    fn direct_prompt_matches_listing_2_shape() {
        let t = Template::parse("What is the sentiment of {{review}}?").unwrap();
        let mut args = Map::new();
        args.insert("review", json!("Great product"));
        let ty = askit_types::union([
            askit_types::literal("positive"),
            askit_types::literal("negative"),
        ]);
        let p = direct_prompt(&t, &args, &ty, &[]).unwrap();
        assert!(p.contains("```json"), "JSON example fence present");
        assert!(
            p.contains("{ reason: string, answer: 'positive' | 'negative' }"),
            "{p}"
        );
        assert!(
            p.contains("step-by-step"),
            "CoT instruction present (paper line 9)"
        );
        assert!(
            p.contains("What is the sentiment of 'review'?"),
            "quoted template"
        );
        assert!(p.contains("where 'review' = \"Great product\""), "bindings");
    }

    #[test]
    fn direct_prompt_appends_examples() {
        let t = Template::parse("Double {{n}}").unwrap();
        let mut args = Map::new();
        args.insert("n", json!(4i64));
        let few = vec![crate::examples::example(&[("n", 2i64)], 4i64)];
        let p = direct_prompt(&t, &args, &askit_types::int(), &few).unwrap();
        assert!(
            p.contains("\nExamples:\n- input: {\"n\":2} output: 4"),
            "{p}"
        );
    }

    #[test]
    fn codegen_prompt_has_both_segments_in_both_syntaxes() {
        for syntax in [Syntax::Ts, Syntax::Py] {
            let spec = FunctionSpec {
                name: "f".into(),
                params: vec![Param {
                    name: "n".into(),
                    ty: askit_types::any(),
                }],
                ret: askit_types::any(),
                instruction: "Do the thing with 'n'".into(),
                syntax,
            };
            let p = codegen_prompt(&spec);
            assert_eq!(p.matches("Q: Implement the following function:").count(), 2);
            assert_eq!(p.matches("A:").count(), 1);
            // The skeleton must parse in its own syntax (the mock requires it).
            let blocks = askit_json::extract::code_blocks(&p);
            assert_eq!(blocks.len(), 3);
            for b in &blocks {
                assert!(minilang::parse(b.content, syntax).is_ok(), "{}", b.content);
            }
        }
    }

    #[test]
    fn python_skeleton_carries_pass() {
        let spec = FunctionSpec {
            name: "g".into(),
            params: vec![],
            ret: askit_types::void(),
            instruction: "Log something".into(),
            syntax: Syntax::Py,
        };
        assert_eq!(spec.skeleton(), "def g():\n    # Log something\n    pass\n");
    }

    #[test]
    fn feedback_names_the_problem() {
        let m = feedback_message("the JSON object has no 'answer' field");
        assert!(m.contains("no 'answer' field"));
        assert!(m.contains("not acceptable"));
    }

    #[test]
    fn name_derivation() {
        assert_eq!(
            derive_function_name("Reverse the string {{s}}."),
            "reverseTheStringS"
        );
        assert_eq!(derive_function_name(""), "generatedFunction");
        assert_eq!(
            derive_function_name("Sort the numbers {{ns}} in ascending order."),
            "sortTheNumbersNsIn"
        );
    }
}
