//! Runtime/compiler configuration.

use std::path::PathBuf;
use std::time::Duration;

use askit_llm::{CachePolicy, Escalation, ModelChoice, RequestOptions};

/// Configuration shared by the direct runtime and the codegen pipeline.
///
/// These are the *instance-wide defaults*; every knob can be overridden per
/// call through [`crate::QueryOptions`] (the `Query` builder's
/// `.model(..)`/`.temperature(..)`/`.retries(..)`/`.cache(..)` methods).
#[derive(Debug, Clone, PartialEq)]
pub struct AskitConfig {
    /// Maximum retries after the first attempt. The paper's experiments use
    /// 9 ("If a test failed, AskIt would attempt code regeneration up to a
    /// predefined maximum retry limit, which was set to 9", §IV-A1).
    pub max_retries: usize,
    /// Sampling temperature passed to the model. The paper uses the default
    /// 1.0 so retries resample fresh responses (§III-D).
    pub temperature: f64,
    /// Which model serves requests by default ([`ModelChoice::Default`] =
    /// whatever the backend was configured with).
    pub model: ModelChoice,
    /// How the engine's completion cache treats requests by default.
    pub cache_policy: CachePolicy,
    /// Directory the completion cache persists to. `None` (the default)
    /// means "no opinion": the engine keeps whatever its own configuration
    /// says (in-memory unless the engine was built with a directory).
    /// Applied by [`crate::Askit::with_config`], which rebuilds the engine's
    /// cache when this is set.
    pub cache_dir: Option<PathBuf>,
    /// Opens [`AskitConfig::cache_dir`] in *shared* mode: the completion
    /// cache goes through the content-addressed object store with
    /// per-shard file locks, so any number of concurrent processes can
    /// point at one directory and flushes merge instead of overwriting
    /// (see `askit_exec::ObjectStore`). Ignored without a cache directory.
    pub shared_cache: bool,
    /// Default time-to-live for cached completions. `None` = no opinion
    /// (engine default, i.e. entries never expire). Per-call overrides via
    /// [`crate::QueryOptions::cache_ttl`] beat this, and the resolved value
    /// is stamped on every request as [`RequestOptions::ttl`].
    pub cache_ttl: Option<Duration>,
    /// How long a network backend may spend on one completion round trip
    /// before failing with a transport error. `None` = no opinion (the
    /// backend's own configured default applies); in-process backends
    /// ignore it. Overridable per call via [`crate::QueryOptions::timeout`];
    /// the resolved value is stamped on every request as
    /// [`RequestOptions::timeout`]. Service advice, not cache identity.
    pub request_timeout: Option<Duration>,
    /// Whether the §III-E retry loop speculatively prefetches the likely
    /// feedback turn before validating a response (see
    /// [`crate::run_direct`]). Off by default: speculation is only useful
    /// through an execution engine with spare pool capacity, and it
    /// consumes extra model calls on backends that cannot cache them.
    /// Results are bit-identical either way — speculation changes timing,
    /// never answers — but scripted test backends that serve responses in
    /// strict order should leave it off.
    pub speculate: bool,
    /// Tiered model escalation for the §III-E retry loop
    /// ([`Escalation::OFF`] by default). With a ladder configured, the
    /// first attempt runs on the ladder's cheapest tier and each validation
    /// failure *escalates* to the next tier — re-preparing the request
    /// against the stronger model — instead of re-asking the model that
    /// just failed; on the last tier the remaining budget retries as usual.
    /// The routed tier is part of every request's cache fingerprint, so
    /// tiers never collide in the completion cache. A non-[`Default`][m]
    /// [`AskitConfig::model`] (or a per-query model override) expresses an
    /// explicit routing decision and disables the ladder for that call.
    ///
    /// [m]: askit_llm::ModelChoice::Default
    pub escalation: Escalation,
    /// Opt-in request hedging on multi-endpoint network backends: after a
    /// latency-percentile delay, a second attempt races on the next healthy
    /// endpoint and the first success wins. Off by default (it can spend an
    /// extra round trip per request); in-process and single-endpoint
    /// backends ignore it. Overridable per call via
    /// [`crate::QueryOptions::hedge`]; stamped on every request as
    /// [`RequestOptions::hedge`]. Service advice, not cache identity.
    pub hedge: bool,
    /// Whether [`crate::run_direct`] stamps a fresh
    /// [`askit_obs::TraceId`] on each admitted request. On by default —
    /// stamping is a counter increment, and spans stay free until a
    /// [`askit_obs::TraceSink`] is installed (that install, plus its
    /// sampling rate, is what actually turns collection on). Turn this
    /// off to exclude a workload from tracing entirely even while a sink
    /// is up. Service advice, not cache identity.
    pub trace: bool,
}

impl Default for AskitConfig {
    fn default() -> Self {
        AskitConfig {
            max_retries: 9,
            temperature: 1.0,
            model: ModelChoice::Default,
            cache_policy: CachePolicy::Use,
            cache_dir: None,
            shared_cache: false,
            cache_ttl: None,
            request_timeout: None,
            speculate: false,
            escalation: Escalation::OFF,
            hedge: false,
            trace: true,
        }
    }
}

impl AskitConfig {
    /// Overrides the retry budget.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Overrides the temperature.
    #[must_use]
    pub fn with_temperature(mut self, temperature: f64) -> Self {
        self.temperature = temperature;
        self
    }

    /// Overrides the default model choice.
    #[must_use]
    pub fn with_model(mut self, model: ModelChoice) -> Self {
        self.model = model;
        self
    }

    /// Overrides the default cache policy.
    #[must_use]
    pub fn with_cache_policy(mut self, cache_policy: CachePolicy) -> Self {
        self.cache_policy = cache_policy;
        self
    }

    /// Persists the completion cache under `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Opens the cache directory in multi-process shared mode (see
    /// [`AskitConfig::shared_cache`]).
    #[must_use]
    pub fn with_shared_cache(mut self, shared: bool) -> Self {
        self.shared_cache = shared;
        self
    }

    /// Sets the default TTL for cached completions.
    #[must_use]
    pub fn with_cache_ttl(mut self, ttl: Duration) -> Self {
        self.cache_ttl = Some(ttl);
        self
    }

    /// Bounds every completion round trip on network backends.
    #[must_use]
    pub fn with_request_timeout(mut self, timeout: Duration) -> Self {
        self.request_timeout = Some(timeout);
        self
    }

    /// Enables (or disables) speculative retry prefetch.
    #[must_use]
    pub fn with_speculation(mut self, speculate: bool) -> Self {
        self.speculate = speculate;
        self
    }

    /// Enables (or disables) request hedging (see [`AskitConfig::hedge`]).
    #[must_use]
    pub fn with_hedge(mut self, hedge: bool) -> Self {
        self.hedge = hedge;
        self
    }

    /// Enables or disables per-request trace stamping (see
    /// [`AskitConfig::trace`]).
    #[must_use]
    pub fn with_tracing(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Installs a tiered-escalation ladder (see
    /// [`AskitConfig::escalation`]).
    #[must_use]
    pub fn with_escalation(mut self, escalation: Escalation) -> Self {
        self.escalation = escalation;
        self
    }

    /// The per-request options this configuration stamps on submissions.
    ///
    /// The deadline is left unstamped here: `run_direct` stamps it once at
    /// admission (see [`RequestOptions::stamp_deadline`]) so the whole retry
    /// loop — not each attempt — shares one budget.
    pub fn request_options(&self) -> RequestOptions {
        RequestOptions {
            model: self.model,
            cache: self.cache_policy,
            ttl: self.cache_ttl,
            timeout: self.request_timeout,
            deadline: None,
            hedge: self.hedge,
            trace: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = AskitConfig::default();
        assert_eq!(c.max_retries, 9);
        assert_eq!(c.temperature, 1.0);
        assert_eq!(c.model, ModelChoice::Default);
        assert_eq!(c.cache_policy, CachePolicy::Use);
    }

    #[test]
    fn builders_chain() {
        let c = AskitConfig::default()
            .with_max_retries(2)
            .with_temperature(0.0)
            .with_model(ModelChoice::Gpt35)
            .with_cache_policy(CachePolicy::Bypass)
            .with_cache_dir("/tmp/askit-cache")
            .with_shared_cache(true)
            .with_cache_ttl(Duration::from_secs(60))
            .with_request_timeout(Duration::from_secs(30));
        assert_eq!(c.max_retries, 2);
        assert_eq!(c.temperature, 0.0);
        assert_eq!(c.model, ModelChoice::Gpt35);
        assert_eq!(c.cache_policy, CachePolicy::Bypass);
        assert_eq!(
            c.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/askit-cache"))
        );
        assert!(c.shared_cache);
        assert_eq!(
            c.request_options(),
            RequestOptions {
                model: ModelChoice::Gpt35,
                cache: CachePolicy::Bypass,
                ttl: Some(Duration::from_secs(60)),
                timeout: Some(Duration::from_secs(30)),
                deadline: None,
                hedge: false,
                trace: None,
            }
        );
    }
}
