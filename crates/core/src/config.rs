//! Runtime/compiler configuration.

/// Configuration shared by the direct runtime and the codegen pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct AskitConfig {
    /// Maximum retries after the first attempt. The paper's experiments use
    /// 9 ("If a test failed, AskIt would attempt code regeneration up to a
    /// predefined maximum retry limit, which was set to 9", §IV-A1).
    pub max_retries: usize,
    /// Sampling temperature passed to the model. The paper uses the default
    /// 1.0 so retries resample fresh responses (§III-D).
    pub temperature: f64,
}

impl Default for AskitConfig {
    fn default() -> Self {
        AskitConfig {
            max_retries: 9,
            temperature: 1.0,
        }
    }
}

impl AskitConfig {
    /// Overrides the retry budget.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Overrides the temperature.
    #[must_use]
    pub fn with_temperature(mut self, temperature: f64) -> Self {
        self.temperature = temperature;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = AskitConfig::default();
        assert_eq!(c.max_retries, 9);
        assert_eq!(c.temperature, 1.0);
    }

    #[test]
    fn builders_chain() {
        let c = AskitConfig::default()
            .with_max_retries(2)
            .with_temperature(0.0);
        assert_eq!(c.max_retries, 2);
        assert_eq!(c.temperature, 0.0);
    }
}
