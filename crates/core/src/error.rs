//! The unified error type of the AskIt core.

use std::error::Error;
use std::fmt;

use askit_json::FromJsonError;
use askit_llm::LlmError;
use askit_template::TemplateError;
use askit_types::TypeError;
use minilang::{RuntimeError, SyntaxError};

/// Any failure surfaced by the AskIt APIs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AskItError {
    /// The prompt template was malformed or mis-called.
    Template(TemplateError),
    /// The language-model backend failed.
    Llm(LlmError),
    /// The §III-E retry loop ran out of attempts without a type-correct
    /// answer.
    AnswerRetriesExhausted {
        /// Attempts made (1 + retries).
        attempts: usize,
        /// The most recent criterion violation.
        last_problem: String,
    },
    /// The §III-D code-generation loop ran out of attempts without code
    /// passing validation.
    CodegenFailed {
        /// Attempts made (1 + retries).
        attempts: usize,
        /// The most recent validation failure.
        last_problem: String,
    },
    /// A validated answer failed typed extraction into a Rust value.
    Extraction(FromJsonError),
    /// A type error escaped validation (coercion bug or misuse).
    Type(TypeError),
    /// A compiled function failed at runtime.
    Execution(RuntimeError),
    /// Generated source failed to parse (only surfaced by the store when a
    /// cached artifact is corrupt).
    Syntax(SyntaxError),
    /// Filesystem trouble in the function store.
    Store(String),
}

impl fmt::Display for AskItError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AskItError::Template(e) => write!(f, "template error: {e}"),
            AskItError::Llm(e) => write!(f, "language model error: {e}"),
            AskItError::AnswerRetriesExhausted {
                attempts,
                last_problem,
            } => write!(
                f,
                "no acceptable answer after {attempts} attempt(s): {last_problem}"
            ),
            AskItError::CodegenFailed {
                attempts,
                last_problem,
            } => {
                write!(
                    f,
                    "code generation failed after {attempts} attempt(s): {last_problem}"
                )
            }
            AskItError::Extraction(e) => write!(f, "typed extraction failed: {e}"),
            AskItError::Type(e) => write!(f, "type error: {e}"),
            AskItError::Execution(e) => write!(f, "generated code failed: {e}"),
            AskItError::Syntax(e) => write!(f, "generated code does not parse: {e}"),
            AskItError::Store(m) => write!(f, "function store error: {m}"),
        }
    }
}

impl Error for AskItError {}

impl From<TemplateError> for AskItError {
    fn from(e: TemplateError) -> Self {
        AskItError::Template(e)
    }
}

impl From<LlmError> for AskItError {
    fn from(e: LlmError) -> Self {
        AskItError::Llm(e)
    }
}

impl From<FromJsonError> for AskItError {
    fn from(e: FromJsonError) -> Self {
        AskItError::Extraction(e)
    }
}

impl From<TypeError> for AskItError {
    fn from(e: TypeError) -> Self {
        AskItError::Type(e)
    }
}

impl From<RuntimeError> for AskItError {
    fn from(e: RuntimeError) -> Self {
        AskItError::Execution(e)
    }
}

impl From<SyntaxError> for AskItError {
    fn from(e: SyntaxError) -> Self {
        AskItError::Syntax(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = AskItError::AnswerRetriesExhausted {
            attempts: 10,
            last_problem: "answer had the wrong type".into(),
        };
        let s = e.to_string();
        assert!(s.contains("10 attempt(s)"), "{s}");
        assert!(s.contains("wrong type"), "{s}");
    }

    #[test]
    fn conversions_compose_with_question_mark() {
        fn inner() -> Result<(), AskItError> {
            let t = askit_template::Template::parse("{{bad")
                .map(|_| ())
                .map_err(AskItError::from);
            t?;
            Ok(())
        }
        assert!(matches!(inner(), Err(AskItError::Template(_))));
    }
}
