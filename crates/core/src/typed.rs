//! Rust types as AskIt types: the [`AskType`] trait and the
//! [`json_struct!`]/[`json_enum!`] macros.
//!
//! TypeScript AskIt writes `ask<'positive' | 'negative'>(…)` and
//! `define<Book[]>(…)`; the host type *is* the output constraint. Rust has
//! no structural literal unions, so this module provides the equivalent
//! bridge: any `T: AskType` knows its AskIt [`Type`] and how to build itself
//! from validated JSON. `json_struct!` plays the role of a TS object type,
//! `json_enum!` the role of a string-literal union (Table I's
//! `union(literal('yes'), literal('no'))`).

use askit_json::{FromJson, FromJsonError, Json};
use askit_types::Type;

/// A Rust type with an AskIt type-language description.
///
/// Implemented for the primitives, `Vec<T>`, `Option<T>`, [`Json`] (as
/// `any`), `()` (as `void`), and everything declared through
/// [`json_struct!`](crate::json_struct) / [`json_enum!`](crate::json_enum).
pub trait AskType: FromJson {
    /// The AskIt type that values of `Self` inhabit.
    fn askit_type() -> Type;
}

impl AskType for i64 {
    fn askit_type() -> Type {
        askit_types::int()
    }
}

impl AskType for i32 {
    fn askit_type() -> Type {
        askit_types::int()
    }
}

impl AskType for usize {
    fn askit_type() -> Type {
        askit_types::int()
    }
}

impl AskType for f64 {
    fn askit_type() -> Type {
        askit_types::float()
    }
}

impl AskType for bool {
    fn askit_type() -> Type {
        askit_types::boolean()
    }
}

impl AskType for String {
    fn askit_type() -> Type {
        askit_types::string()
    }
}

impl AskType for Json {
    fn askit_type() -> Type {
        askit_types::any()
    }
}

impl<T: AskType> AskType for Vec<T> {
    fn askit_type() -> Type {
        askit_types::list(T::askit_type())
    }
}

impl<T: AskType> AskType for Option<T> {
    fn askit_type() -> Type {
        askit_types::union([T::askit_type(), askit_types::void()])
    }
}

/// Declares a struct that maps to an AskIt object type.
///
/// Generates the struct (plus `Debug/Clone/PartialEq`),
/// [`ToJson`](askit_json::ToJson), [`FromJson`] and [`AskType`]
/// implementations.
///
/// # Examples
///
/// ```
/// use askit_core::{json_struct, AskType};
///
/// json_struct! {
///     /// A classic book.
///     pub struct Book {
///         title: String,
///         author: String,
///         year: i64,
///     }
/// }
///
/// assert_eq!(
///     Book::askit_type().to_typescript(),
///     "{ title: string, author: string, year: number }"
/// );
/// ```
#[macro_export]
macro_rules! json_struct {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $fname:ident : $fty:ty ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, PartialEq)]
        $vis struct $name {
            $(
                #[allow(missing_docs)]
                pub $fname: $fty,
            )+
        }

        impl $crate::AskType for $name {
            fn askit_type() -> ::askit_types::Type {
                ::askit_types::dict([
                    $( (stringify!($fname), <$fty as $crate::AskType>::askit_type()), )+
                ])
            }
        }

        impl ::askit_json::ToJson for $name {
            fn to_json(&self) -> ::askit_json::Json {
                let mut map = ::askit_json::Map::new();
                $( map.insert(stringify!($fname), ::askit_json::ToJson::to_json(&self.$fname)); )+
                ::askit_json::Json::Object(map)
            }
        }

        impl ::askit_json::FromJson for $name {
            fn from_json(v: &::askit_json::Json) -> ::std::result::Result<Self, ::askit_json::FromJsonError> {
                let obj = v
                    .as_object()
                    .ok_or_else(|| ::askit_json::FromJsonError::mismatch("object", v))?;
                Ok($name {
                    $(
                        $fname: {
                            let field = obj.get(stringify!($fname)).ok_or_else(|| {
                                ::askit_json::FromJsonError::mismatch(
                                    concat!("object with field '", stringify!($fname), "'"),
                                    v,
                                )
                            })?;
                            ::askit_json::FromJson::from_json(field)
                                .map_err(|e| e.nested(stringify!($fname)))?
                        },
                    )+
                })
            }
        }
    };
}

/// Declares an enum that maps to an AskIt union of string literals.
///
/// The Rust equivalent of TypeScript's `'positive' | 'negative'` (paper
/// §III) and of the Python API's `union(literal(…), …)` (Table I).
///
/// # Examples
///
/// ```
/// use askit_core::{json_enum, AskType};
///
/// json_enum! {
///     /// Review polarity.
///     pub enum Sentiment {
///         Positive = "positive",
///         Negative = "negative",
///     }
/// }
///
/// assert_eq!(Sentiment::askit_type().to_typescript(), "'positive' | 'negative'");
/// assert_eq!(Sentiment::Positive.as_str(), "positive");
/// ```
#[macro_export]
macro_rules! json_enum {
    (
        $(#[$meta:meta])*
        $vis:vis enum $name:ident {
            $( $variant:ident = $text:literal ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        $vis enum $name {
            $(
                #[allow(missing_docs)]
                $variant,
            )+
        }

        impl $name {
            /// The literal text of this variant.
            pub fn as_str(&self) -> &'static str {
                match self {
                    $( $name::$variant => $text, )+
                }
            }

            /// All variants in declaration order.
            #[allow(dead_code)]
            pub fn all() -> &'static [$name] {
                &[ $( $name::$variant, )+ ]
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl $crate::AskType for $name {
            fn askit_type() -> ::askit_types::Type {
                ::askit_types::union([
                    $( ::askit_types::literal($text), )+
                ])
            }
        }

        impl ::askit_json::ToJson for $name {
            fn to_json(&self) -> ::askit_json::Json {
                ::askit_json::Json::Str(self.as_str().to_owned())
            }
        }

        impl ::askit_json::FromJson for $name {
            fn from_json(v: &::askit_json::Json) -> ::std::result::Result<Self, ::askit_json::FromJsonError> {
                match v.as_str() {
                    $( Some($text) => Ok($name::$variant), )+
                    _ => Err(::askit_json::FromJsonError::mismatch(
                        concat!("one of the literals of ", stringify!($name)),
                        v,
                    )),
                }
            }
        }
    };
}

/// Extracts a `T` from a JSON value that already passed type validation.
pub fn extract<T: AskType>(value: &Json) -> Result<T, FromJsonError> {
    T::from_json(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    use askit_json::ToJson;

    json_struct! {
        /// A point.
        pub struct Point {
            x: i64,
            y: f64,
        }
    }

    json_struct! {
        struct Nested {
            name: String,
            points: Vec<Point>,
            comment: Option<String>,
        }
    }

    json_enum! {
        enum YesNo {
            Yes = "yes",
            No = "no",
        }
    }

    #[test]
    fn primitive_types() {
        assert_eq!(i64::askit_type(), askit_types::int());
        assert_eq!(f64::askit_type(), askit_types::float());
        assert_eq!(String::askit_type(), askit_types::string());
        assert_eq!(
            <Vec<bool>>::askit_type(),
            askit_types::list(askit_types::boolean())
        );
        assert_eq!(Json::askit_type(), askit_types::any());
        assert_eq!(<Option<i64>>::askit_type().to_typescript(), "number | void");
    }

    #[test]
    fn struct_roundtrip_and_type() {
        let p = Point { x: 1, y: 2.5 };
        let v = p.to_json();
        assert_eq!(v.to_compact_string(), r#"{"x":1,"y":2.5}"#);
        assert_eq!(Point::from_json(&v).unwrap(), p);
        assert_eq!(
            Point::askit_type().to_typescript(),
            "{ x: number, y: number }"
        );
    }

    #[test]
    fn nested_struct_errors_carry_paths() {
        let v = Json::parse(r#"{"name": "n", "points": [{"x": 1, "y": "bad"}], "comment": null}"#)
            .unwrap();
        let err = Nested::from_json(&v).unwrap_err();
        assert_eq!(err.path(), "points.[0].y");
    }

    #[test]
    fn enum_maps_literals() {
        assert_eq!(YesNo::from_json(&Json::from("yes")).unwrap(), YesNo::Yes);
        assert!(YesNo::from_json(&Json::from("maybe")).is_err());
        assert_eq!(YesNo::No.to_json(), Json::from("no"));
        assert_eq!(YesNo::all().len(), 2);
        assert_eq!(YesNo::Yes.to_string(), "yes");
        let ty = YesNo::askit_type();
        assert!(ty.validate(&Json::from("no")).is_ok());
        assert!(ty.validate(&Json::from("nope")).is_err());
    }

    #[test]
    fn extract_helper() {
        let v = Json::parse("[1, 2, 3]").unwrap();
        let xs: Vec<i64> = extract(&v).unwrap();
        assert_eq!(xs, [1, 2, 3]);
    }
}
