//! The AskIt runtime for directly answerable tasks (paper §III-E).
//!
//! Step 1 builds the Listing 2 prompt, Step 2 calls the model, Step 3
//! extracts and validates the answer; Steps 2–3 repeat with feedback until
//! an answer of the right type is available or the retry budget runs out.
//! Each iteration appends the model's failed response plus an instruction
//! naming the violated criterion — the paper's "feedback mechanism".

use std::time::{Duration, Instant};

use askit_json::{extract, Json, Map};
use askit_llm::{
    ChatMessage, CompletionRequest, LanguageModel, ModelChoice, PreparedRequest, RequestHasher,
    RequestOptions, TokenUsage,
};
use askit_template::Template;
use askit_types::Type;

use crate::config::AskitConfig;
use crate::error::AskItError;
use crate::examples::Example;
use crate::prompt::{direct_prompt, feedback_message};

/// The result of a successful direct interaction.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectOutcome {
    /// The validated, coerced answer.
    pub value: Json,
    /// The model's chain-of-thought, when present.
    pub reason: Option<String>,
    /// Attempts used (1 = first try succeeded).
    pub attempts: usize,
    /// Aggregate token usage across attempts.
    pub usage: TokenUsage,
    /// Aggregate (simulated) model latency across attempts. This is the
    /// number Table III calls "Latency".
    pub latency: Duration,
    /// The model tier that produced the accepted answer (equals the
    /// configured model unless an [`AskitConfig::escalation`] ladder
    /// escalated past its first tier).
    pub model: ModelChoice,
    /// How many tier escalations the retry loop performed (0 with
    /// escalation off or when the first tier answered acceptably).
    pub escalations: usize,
}

/// Runs the §III-E loop for one task.
///
/// The loop is engineered for constant per-attempt engine overhead:
///
/// * **Zero-rehash fingerprints** — a [`RequestHasher`] grows in lockstep
///   with the conversation, so every attempt's cache identity is derived
///   from the previous attempt's hash plus the two new turns, never by
///   re-hashing the whole (growing) conversation. The message vector
///   itself is moved into each request and reclaimed afterwards — no
///   per-attempt conversation clone either.
/// * **Speculative retry prefetch** — with [`AskitConfig::speculate`] on,
///   the moment the verdict demands a retry the feedback turn is pushed to
///   the backend ([`LanguageModel::prefetch`]) *before* any of the retry
///   bookkeeping (rejection, conversation growth) runs, so the next round
///   trip is already in flight when the next attempt submits. Speculation
///   is withdrawable end-to-end: the loop never speculates on the last
///   attempt, and a speculatively fetched completion that later fails
///   validation is evicted through the normal
///   [`LanguageModel::reject_completion`] path — results are bit-identical
///   with speculation on or off, at any worker count.
/// * **Tiered escalation** — with an [`AskitConfig::escalation`] ladder (and
///   the model left at [`ModelChoice::Default`]), the first attempt runs on
///   the cheapest tier and each validation failure *escalates* to the next
///   tier instead of re-asking the model that just failed; the top tier
///   spends whatever retry budget remains. The routed tier leads every
///   request hash, so tiers never share cache entries, and the speculative
///   prefetch predicts the escalated request. Unlike speculation, escalation
///   intentionally changes results: a stronger tier answers differently.
///
/// # Errors
///
/// [`AskItError::AnswerRetriesExhausted`] after `1 + max_retries` bad
/// responses; [`AskItError::Llm`]/[`AskItError::Template`] as encountered.
pub fn run_direct<L: LanguageModel>(
    llm: &L,
    template: &Template,
    args: &Map,
    answer_type: &Type,
    few_shot: &[Example],
    config: &AskitConfig,
) -> Result<DirectOutcome, AskItError> {
    let prompt = direct_prompt(template, args, answer_type, few_shot)?;
    // Tiered escalation: with a ladder configured (and no explicit model
    // pinning the route), the first attempt runs on the cheapest tier and
    // each validation failure climbs one rung — re-preparing against the
    // stronger model — until the top tier spends the remaining budget. The
    // routed tier is mixed into every request hash, so tiers never collide
    // in any cache layer.
    let tiers: &[ModelChoice] = if config.model == ModelChoice::Default {
        config.escalation.tiers()
    } else {
        &[]
    };
    let model_for = |tier: usize| tiers.get(tier).copied().unwrap_or(config.model);
    let mut tier = 0usize;
    // Admission is *here*: the configured timeout becomes one monotonic
    // deadline for the whole §III-E loop — every attempt, escalation, and
    // backoff sleep below shares this single budget (downstream layers only
    // ever clip to it, never re-arm it). The trace id follows the same
    // discipline: stamped once, idempotent, so an id propagated from an
    // upstream front door (serve's `X-Askit-Trace-Id`) survives.
    let mut options = RequestOptions {
        model: model_for(tier),
        ..config.request_options()
    }
    .stamp_deadline(Instant::now());
    if config.trace {
        // An id handed down by an upstream front door (serve propagating
        // an inbound `X-Askit-Trace-Id`) beats generating a fresh one.
        let id = askit_obs::trace::propagated().unwrap_or_else(askit_obs::TraceId::generate);
        options = options.stamp_trace(id);
    }
    let mut admission = askit_obs::span(options.trace, "run_direct");
    admission.set_arg("model", options.model.tag());
    let mut hasher = RequestHasher::new(config.temperature, options.model);
    let first_turn = ChatMessage::user(prompt);
    hasher.push(&first_turn);
    let mut messages = vec![first_turn];
    let mut usage = TokenUsage::default();
    let mut latency = Duration::ZERO;
    let mut last_problem = String::new();
    let mut escalations = 0usize;

    for attempt in 1..=config.max_retries + 1 {
        let prepared = PreparedRequest::from_parts(
            CompletionRequest {
                messages,
                temperature: config.temperature,
                options,
            },
            hasher.content_hash(),
        );
        let completion = llm.complete_prepared(&prepared, 0)?;
        usage.prompt_tokens += completion.usage.prompt_tokens;
        usage.completion_tokens += completion.usage.completion_tokens;
        latency += completion.latency;

        let verdict = {
            let mut validation = askit_obs::span(options.trace, "validate");
            validation.set_arg("attempt", attempt);
            let verdict = evaluate_response(&completion.text, answer_type);
            validation.set_arg("ok", verdict.is_ok());
            verdict
        };

        // Speculative retry prefetch: the moment the verdict demands a
        // retry, push the exact feedback turn the next attempt will submit
        // to the backend, *before* any retry bookkeeping below — the round
        // trip is in flight while this thread rejects, grows the
        // conversation, and loops. Never on the last attempt (an exhausted
        // loop asks no further turn), and always withdrawable: should the
        // prefetched completion itself fail validation next iteration, the
        // normal rejection path below evicts it.
        if config.speculate && attempt <= config.max_retries {
            if let Err(problem) = &verdict {
                let mut spec_messages = prepared.request().messages.clone();
                spec_messages.push(ChatMessage::assistant(completion.text.clone()));
                spec_messages.push(ChatMessage::user(feedback_message(problem)));
                // The next attempt may run one tier up the ladder: the
                // speculation must predict *that* request — same messages,
                // escalated model, and a hash built for the new tier (a
                // full re-hash, paid only on the rare escalating turns; the
                // common path still extends the running hash by two turns).
                let next_model = model_for((tier + 1).min(tiers.len().saturating_sub(1)));
                let content_hash = if next_model == options.model {
                    let mut spec_hasher = hasher;
                    for turn in &spec_messages[spec_messages.len() - 2..] {
                        spec_hasher.push(turn);
                    }
                    spec_hasher.content_hash()
                } else {
                    let mut spec_hasher = RequestHasher::new(config.temperature, next_model);
                    for turn in &spec_messages {
                        spec_hasher.push(turn);
                    }
                    spec_hasher.content_hash()
                };
                llm.prefetch(&PreparedRequest::from_parts(
                    CompletionRequest {
                        messages: spec_messages,
                        temperature: config.temperature,
                        options: RequestOptions {
                            model: next_model,
                            ..options
                        },
                    },
                    content_hash,
                ));
            }
        }

        match verdict {
            Ok((value, reason)) => {
                admission.set_arg("attempts", attempt);
                return Ok(DirectOutcome {
                    value,
                    reason,
                    attempts: attempt,
                    usage,
                    latency,
                    model: options.model,
                    escalations,
                });
            }
            Err(problem) => {
                // The completion failed validation: tell memoizing layers to
                // forget it so a sampled backend is re-asked on the next
                // invocation instead of replaying this known-bad answer
                // (keyed by the memoized hash — no re-hash here either).
                llm.reject_prepared(&prepared, 0);
                // Criteria unmet: append the response and the corrective
                // instruction, then retry (paper: "adding the LLM's response
                // and a new instruction to the original prompt") — growing
                // the hash by exactly the two new turns. The conversation
                // built here is byte-identical to the speculated one, so a
                // landed prefetch is a cache hit on the next submission.
                let assistant = ChatMessage::assistant(completion.text);
                let feedback = ChatMessage::user(feedback_message(&problem));
                messages = prepared.into_request().messages;
                messages.push(assistant);
                messages.push(feedback);
                if tier + 1 < tiers.len() {
                    // Escalate: the next attempt re-prepares the grown
                    // conversation against the next tier. The hash restarts
                    // from the new model tag (model is the hasher's leading
                    // ingredient), so the rebuild walks the conversation
                    // once — matching the speculated request exactly.
                    tier += 1;
                    escalations += 1;
                    options.model = model_for(tier);
                    askit_obs::event(options.trace, "escalation")
                        .arg("to", options.model.tag())
                        .arg("attempt", attempt);
                    hasher = RequestHasher::new(config.temperature, options.model);
                    for turn in &messages {
                        hasher.push(turn);
                    }
                } else {
                    for turn in &messages[messages.len() - 2..] {
                        hasher.push(turn);
                    }
                }
                last_problem = problem;
            }
        }
    }
    Err(AskItError::AnswerRetriesExhausted {
        attempts: config.max_retries + 1,
        last_problem,
    })
}

/// Checks one response against the three §III-E criteria. On success returns
/// the coerced answer and the reason text.
pub fn evaluate_response(text: &str, answer_type: &Type) -> Result<(Json, Option<String>), String> {
    // Criterion 1: the response contains a JSON object.
    let Some(json) = extract::extract_json(text) else {
        return Err("the response does not contain a JSON code block".to_owned());
    };
    // Criterion 2: the JSON object includes the `answer` field.
    let Some(obj) = json.as_object() else {
        return Err(format!(
            "the JSON value is a {}, not an object",
            json.kind()
        ));
    };
    let Some(answer) = obj.get("answer") else {
        return Err("the JSON object has no 'answer' field".to_owned());
    };
    // Criterion 3: the answer matches the expected type.
    let coerced = answer_type
        .coerce(answer)
        .map_err(|e| format!("the 'answer' field does not match the expected type: {e}"))?;
    let reason = obj.get("reason").and_then(Json::as_str).map(str::to_owned);
    Ok((coerced, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use askit_json::json;
    use askit_llm::ScriptedLlm;

    fn template(src: &str) -> Template {
        Template::parse(src).unwrap()
    }

    fn args(pairs: &[(&str, Json)]) -> Map {
        pairs.iter().cloned().collect()
    }

    #[test]
    fn first_try_success() {
        let llm = ScriptedLlm::new(["```json\n{\"reason\": \"easy\", \"answer\": 56}\n```"]);
        let out = run_direct(
            &llm,
            &template("What is {{x}} times {{y}}?"),
            &args(&[("x", json!(7i64)), ("y", json!(8i64))]),
            &askit_types::int(),
            &[],
            &AskitConfig::default(),
        )
        .unwrap();
        assert_eq!(out.value, Json::Int(56));
        assert_eq!(out.reason.as_deref(), Some("easy"));
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn walks_all_three_criteria_then_succeeds() {
        let llm = ScriptedLlm::new([
            // 1: no JSON at all
            "I think the answer is fifty-six.",
            // 2: JSON but no `answer`
            "```json\n{\"reason\": \"r\", \"result\": 56}\n```",
            // 3: wrong type
            "```json\n{\"reason\": \"r\", \"answer\": \"56\"}\n```",
            // clean
            "```json\n{\"reason\": \"r\", \"answer\": 56}\n```",
        ]);
        let out = run_direct(
            &llm,
            &template("What is 7 times 8?"),
            &Map::new(),
            &askit_types::int(),
            &[],
            &AskitConfig::default(),
        )
        .unwrap();
        assert_eq!(out.value, Json::Int(56));
        assert_eq!(out.attempts, 4);
        assert_eq!(llm.served(), 4);
    }

    #[test]
    fn feedback_messages_name_each_criterion() {
        assert!(evaluate_response("no json here", &askit_types::int())
            .unwrap_err()
            .contains("JSON code block"));
        assert!(evaluate_response("```json\n[1]\n```", &askit_types::int())
            .unwrap_err()
            .contains("not an object"));
        assert!(
            evaluate_response("```json\n{\"a\": 1}\n```", &askit_types::int())
                .unwrap_err()
                .contains("no 'answer' field")
        );
        assert!(
            evaluate_response("```json\n{\"answer\": \"x\"}\n```", &askit_types::int())
                .unwrap_err()
                .contains("expected type")
        );
    }

    #[test]
    fn retries_exhaust_into_an_error() {
        let responses: Vec<String> = (0..10).map(|_| "still not json".to_owned()).collect();
        let llm = ScriptedLlm::new(responses);
        let err = run_direct(
            &llm,
            &template("Hard question"),
            &Map::new(),
            &askit_types::int(),
            &[],
            &AskitConfig::default(), // max_retries = 9 → 10 attempts
        )
        .unwrap_err();
        match err {
            AskItError::AnswerRetriesExhausted {
                attempts,
                last_problem,
            } => {
                assert_eq!(attempts, 10);
                assert!(last_problem.contains("JSON"));
            }
            other => panic!("expected retries-exhausted, got {other}"),
        }
        assert_eq!(llm.served(), 10);
    }

    #[test]
    fn conversation_grows_with_feedback() {
        use askit_llm::RecordingLlm;
        let llm = RecordingLlm::new(ScriptedLlm::new([
            "garbage",
            "```json\n{\"reason\": \"r\", \"answer\": true}\n```",
        ]));
        run_direct(
            &llm,
            &template("Is water wet?"),
            &Map::new(),
            &askit_types::boolean(),
            &[],
            &AskitConfig::default(),
        )
        .unwrap();
        let log = llm.exchanges();
        assert_eq!(log[0].request.messages.len(), 1);
        assert_eq!(
            log[1].request.messages.len(),
            3,
            "prompt + bad answer + feedback"
        );
        assert!(log[1].request.messages[2]
            .content
            .contains("not acceptable"));
    }

    #[test]
    fn rejected_completions_are_evicted_from_the_engine_cache() {
        // A scripted stand-in for a temperature-sampled backend: its three
        // responses differ, so a replayed rejected completion is detectable.
        let engine = askit_exec::Engine::new(ScriptedLlm::new([
            "not json at all",
            "```json\n{\"reason\": \"r\", \"answer\": 1}\n```",
            "```json\n{\"reason\": \"r\", \"answer\": 2}\n```",
        ]));
        let t = template("Same question");
        let config = AskitConfig::default();

        let first =
            run_direct(&engine, &t, &Map::new(), &askit_types::int(), &[], &config).unwrap();
        assert_eq!(first.value, Json::Int(1));
        assert_eq!(first.attempts, 2, "first response is rejected");

        // Re-running the same task resends a byte-identical first request.
        // The rejected completion must have been evicted, so this is a
        // cache MISS that reaches the model — not a replay of "not json".
        let second =
            run_direct(&engine, &t, &Map::new(), &askit_types::int(), &[], &config).unwrap();
        assert_eq!(
            second.value,
            Json::Int(2),
            "retry re-asks the model instead of replaying the rejected completion"
        );
        assert_eq!(second.attempts, 1);
        assert_eq!(engine.model().served(), 3);

        let stats = engine.cache_stats();
        assert_eq!(stats.invalidations, 1, "one rejected entry evicted");
        assert_eq!(
            stats.misses, 3,
            "both first-attempt submissions missed (the second because of \
             the eviction), plus the feedback turn"
        );
    }

    #[test]
    fn speculative_prefetch_changes_no_outcome() {
        // A fault-heavy mock walks the retry loop often, so speculation
        // fires (predict_feedback returns the criterion the mock violated);
        // outcomes must match the non-speculative run exactly.
        let make_engine = || {
            askit_exec::Engine::new(askit_llm::MockLlm::new(
                askit_llm::MockLlmConfig::gpt4()
                    .with_seed(2024)
                    .with_faults(askit_llm::FaultConfig {
                        direct_fault_rate: 0.8,
                        code_bug_rate: 0.0,
                        decay: 0.4,
                    }),
                askit_llm::Oracle::standard(),
            ))
        };
        let run = |speculate: bool| -> Vec<(Json, usize)> {
            let engine = make_engine();
            let config = AskitConfig::default().with_speculation(speculate);
            (0..8i64)
                .map(|i| {
                    let out = run_direct(
                        &engine,
                        &template("What is {{x}} plus {{y}}?"),
                        &args(&[("x", json!(i)), ("y", json!(100i64))]),
                        &askit_types::int(),
                        &[],
                        &config,
                    )
                    .unwrap();
                    (out.value, out.attempts)
                })
                .collect()
        };
        let plain = run(false);
        let speculative = run(true);
        assert_eq!(plain, speculative, "speculation changed an outcome");
        assert!(
            plain.iter().any(|(_, attempts)| *attempts > 1),
            "the fault rate must force retries (so speculation fires): {plain:?}"
        );
    }

    #[test]
    fn escalation_climbs_the_ladder_on_validation_failure() {
        use askit_llm::{Escalation, RecordingLlm};
        let llm = RecordingLlm::new(ScriptedLlm::new([
            // The cheap tier answers prose: validation fails.
            "That is beyond me.",
            // The strong tier answers properly.
            "```json\n{\"reason\": \"r\", \"answer\": 56}\n```",
        ]));
        let config = AskitConfig::default().with_escalation(Escalation::cheap_first());
        let out = run_direct(
            &llm,
            &template("What is 7 times 8?"),
            &Map::new(),
            &askit_types::int(),
            &[],
            &config,
        )
        .unwrap();
        assert_eq!(out.value, Json::Int(56));
        assert_eq!(out.attempts, 2);
        assert_eq!(out.escalations, 1);
        assert_eq!(out.model, askit_llm::ModelChoice::Gpt4);
        let log = llm.exchanges();
        assert_eq!(log[0].request.options.model, askit_llm::ModelChoice::Gpt35);
        assert_eq!(
            log[1].request.options.model,
            askit_llm::ModelChoice::Gpt4,
            "the retry re-prepares against the next tier"
        );
        assert_eq!(
            log[1].request.messages.len(),
            3,
            "the escalated request keeps the grown conversation"
        );
    }

    #[test]
    fn explicit_model_pins_routing_and_disables_the_ladder() {
        use askit_llm::{Escalation, ModelChoice, RecordingLlm};
        let llm = RecordingLlm::new(ScriptedLlm::new([
            "not json",
            "```json\n{\"reason\": \"r\", \"answer\": 1}\n```",
        ]));
        let config = AskitConfig::default()
            .with_model(ModelChoice::Gpt35)
            .with_escalation(Escalation::cheap_first());
        let out = run_direct(
            &llm,
            &template("Question?"),
            &Map::new(),
            &askit_types::int(),
            &[],
            &config,
        )
        .unwrap();
        assert_eq!(out.escalations, 0);
        assert_eq!(out.model, ModelChoice::Gpt35);
        for exchange in llm.exchanges() {
            assert_eq!(exchange.request.options.model, ModelChoice::Gpt35);
        }
    }

    #[test]
    fn top_tier_spends_the_remaining_retry_budget() {
        use askit_llm::{Escalation, ModelChoice, RecordingLlm};
        let llm = RecordingLlm::new(ScriptedLlm::new([
            "bad", "bad", "bad", "bad", // four attempts, all unusable
        ]));
        let config = AskitConfig::default()
            .with_max_retries(3)
            .with_escalation(Escalation::cheap_first());
        let err = run_direct(
            &llm,
            &template("Hopeless"),
            &Map::new(),
            &askit_types::int(),
            &[],
            &config,
        )
        .unwrap_err();
        assert!(matches!(err, AskItError::AnswerRetriesExhausted { .. }));
        let models: Vec<ModelChoice> = llm
            .exchanges()
            .iter()
            .map(|e| e.request.options.model)
            .collect();
        assert_eq!(
            models,
            vec![
                ModelChoice::Gpt35,
                ModelChoice::Gpt4,
                ModelChoice::Gpt4,
                ModelChoice::Gpt4
            ],
            "one rung per failure, then the top tier retries"
        );
    }

    #[test]
    fn cheap_misses_escalate_to_the_strong_tier_end_to_end() {
        use askit_llm::{Escalation, ModelChoice};
        // Every gpt35-routed task is "beyond the cheap model" (rate 1.0):
        // without escalation the whole retry budget would burn on prose.
        let llm = askit_llm::MockLlm::new(
            askit_llm::MockLlmConfig::gpt4()
                .with_faults(askit_llm::FaultConfig::none())
                .with_cheap_miss_rate(1.0),
            askit_llm::Oracle::standard(),
        );
        let config = AskitConfig::default().with_escalation(Escalation::cheap_first());
        let out = run_direct(
            &llm,
            &template("What is {{x}} times {{y}}?"),
            &args(&[("x", json!(6i64)), ("y", json!(7i64))]),
            &askit_types::int(),
            &[],
            &config,
        )
        .unwrap();
        assert_eq!(out.value, Json::Int(42));
        assert_eq!(out.attempts, 2, "one cheap miss, one strong answer");
        assert_eq!(out.escalations, 1);
        assert_eq!(llm.calls_routed(ModelChoice::Gpt35), 1);
        assert_eq!(llm.calls_routed(ModelChoice::Gpt4), 1);
    }

    #[test]
    fn speculative_prefetch_predicts_the_escalated_request() {
        use askit_llm::{Escalation, MockLlmConfig};
        // Through an engine (so prefetches land in the completion cache),
        // escalating runs must produce identical outcomes with speculation
        // on or off — the prediction covers the tier switch.
        let run = |speculate: bool| -> Vec<(Json, usize, usize)> {
            let engine = askit_exec::Engine::new(askit_llm::MockLlm::new(
                MockLlmConfig::gpt4()
                    .with_seed(5)
                    .with_faults(askit_llm::FaultConfig::none())
                    .with_cheap_miss_rate(0.6),
                askit_llm::Oracle::standard(),
            ));
            let config = AskitConfig::default()
                .with_escalation(Escalation::cheap_first())
                .with_speculation(speculate);
            (0..10i64)
                .map(|i| {
                    let out = run_direct(
                        &engine,
                        &template("What is {{x}} plus {{y}}?"),
                        &args(&[("x", json!(i)), ("y", json!(50i64))]),
                        &askit_types::int(),
                        &[],
                        &config,
                    )
                    .unwrap();
                    (out.value, out.attempts, out.escalations)
                })
                .collect()
        };
        let plain = run(false);
        let speculative = run(true);
        assert_eq!(plain, speculative, "speculation changed an outcome");
        assert!(
            plain.iter().any(|(_, _, escalations)| *escalations > 0),
            "the cheap-miss rate must force some escalations: {plain:?}"
        );
        assert!(
            plain.iter().any(|(_, _, escalations)| *escalations == 0),
            "some tasks must stay on the cheap tier: {plain:?}"
        );
    }

    #[test]
    fn answers_are_coerced() {
        let llm = ScriptedLlm::new(["```json\n{\"reason\": \"r\", \"answer\": 42.0}\n```"]);
        let out = run_direct(
            &llm,
            &template("Answer?"),
            &Map::new(),
            &askit_types::int(),
            &[],
            &AskitConfig::default(),
        )
        .unwrap();
        assert_eq!(
            out.value,
            Json::Int(42),
            "float 42.0 coerces to int under Int"
        );
    }

    #[test]
    fn mock_end_to_end_arithmetic() {
        let llm = askit_llm::MockLlm::new(
            askit_llm::MockLlmConfig::gpt4().with_faults(askit_llm::FaultConfig::none()),
            askit_llm::Oracle::standard(),
        );
        let out = run_direct(
            &llm,
            &template("What is {{x}} times {{y}}?"),
            &args(&[("x", json!(6i64)), ("y", json!(7i64))]),
            &askit_types::int(),
            &[],
            &AskitConfig::default(),
        )
        .unwrap();
        assert_eq!(out.value, Json::Int(42));
        assert!(out.latency > Duration::ZERO);
        assert!(out.usage.total() > 0);
    }

    #[test]
    fn mock_with_heavy_faults_converges_via_retries() {
        let cfg = askit_llm::MockLlmConfig::gpt4().with_faults(askit_llm::FaultConfig {
            direct_fault_rate: 0.9,
            code_bug_rate: 0.0,
            decay: 0.3,
        });
        let llm = askit_llm::MockLlm::new(cfg, askit_llm::Oracle::standard());
        let mut attempts_seen = Vec::new();
        for i in 0..12 {
            let out = run_direct(
                &llm,
                &template("What is {{x}} plus {{y}}?"),
                &args(&[("x", json!(i))])
                    .into_iter()
                    .chain(args(&[("y", json!(1i64))]))
                    .collect(),
                &askit_types::int(),
                &[],
                &AskitConfig::default(),
            )
            .unwrap();
            assert_eq!(out.value, Json::Int(i + 1));
            attempts_seen.push(out.attempts);
        }
        assert!(
            attempts_seen.iter().any(|&a| a > 1),
            "with a 90% fault rate some tasks must need retries: {attempts_seen:?}"
        );
    }
}
