//! The function registry: named, type-erased AskIt functions callable by
//! other processes.
//!
//! [`crate::TaskFunction`] borrows its [`Askit`] instance and is generic
//! over the backend — perfect for in-process use, unusable as a route
//! table. This module is the serving bridge: a [`ServedTask`] owns its
//! `Arc<Askit<L>>` plus everything a direct call needs (template, answer
//! type, examples, options), a [`ServedCompiled`] wraps a
//! [`CompiledFunction`], and both erase to `dyn` [`ServableFunction`]
//! entries in a [`FunctionRegistry`] — the route table `askit-serve`
//! dispatches HTTP requests against.
//!
//! Every entry carries a [`FunctionSignature`], so the registry can
//! validate an untrusted JSON argument object against the declared
//! parameter types *before* any prompt is rendered — the same
//! type-language contract the paper's §III-E applies to model **outputs**,
//! applied at the service boundary to caller **inputs**.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use std::time::Instant;

use askit_json::{Json, Map};
use askit_llm::LanguageModel;
use askit_template::Template;
use askit_types::Type;

use crate::error::AskItError;
use crate::examples::Example;
use crate::function::{Askit, CompiledFunction};
use crate::query::QueryOptions;
use crate::runtime::{run_direct, DirectOutcome};

/// The callable contract of one registered function: what it is named,
/// what it takes, what it returns.
#[derive(Debug, Clone)]
pub struct FunctionSignature {
    /// The route name callers invoke.
    pub name: String,
    /// Parameter names and their declared types, in template order.
    /// Undeclared parameters are `any`.
    pub params: Vec<(String, Type)>,
    /// The declared answer type.
    pub answer_type: Type,
    /// Human-readable description (the prompt template source for task
    /// functions).
    pub description: String,
}

impl FunctionSignature {
    /// Validates an untrusted argument object against the declared
    /// parameters: every declared parameter must be present, no undeclared
    /// key is accepted, and each value must coerce into its declared type.
    /// Returns the coerced argument map ready for a call.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation, suitable for a
    /// `400` response body.
    pub fn validate_args(&self, args: &Map) -> Result<Map, String> {
        for key in args.keys() {
            if !self.params.iter().any(|(name, _)| name == key) {
                return Err(format!(
                    "unknown argument {key:?} (expected: {})",
                    self.param_names().join(", ")
                ));
            }
        }
        let mut coerced = Map::with_capacity(self.params.len());
        for (name, ty) in &self.params {
            let Some(value) = args.get(name) else {
                return Err(format!(
                    "missing argument {name:?} (expected type {})",
                    ty.to_typescript()
                ));
            };
            match ty.coerce(value) {
                Ok(value) => {
                    coerced.insert(name.clone(), value);
                }
                Err(e) => {
                    return Err(format!(
                        "argument {name:?} does not inhabit {}: {e}",
                        ty.to_typescript()
                    ))
                }
            }
        }
        Ok(coerced)
    }

    /// The declared parameter names, in order.
    pub fn param_names(&self) -> Vec<&str> {
        self.params.iter().map(|(name, _)| name.as_str()).collect()
    }

    /// The signature as a JSON object (what a service's function listing
    /// returns): `{"name", "params": {name: ts_type, …}, "returns",
    /// "description"}`.
    pub fn to_json(&self) -> Json {
        let mut params = Map::with_capacity(self.params.len());
        for (name, ty) in &self.params {
            params.insert(name.clone(), Json::Str(ty.to_typescript()));
        }
        let mut object = Map::new();
        object.insert("name", Json::Str(self.name.clone()));
        object.insert("params", Json::Object(params));
        object.insert("returns", Json::Str(self.answer_type.to_typescript()));
        object.insert("description", Json::Str(self.description.clone()));
        Json::Object(object)
    }
}

/// A named function a service can dispatch to: validated typed arguments
/// in, a full [`DirectOutcome`] out. Implementations are `Send + Sync`
/// because a server invokes them concurrently from its accept threads.
pub trait ServableFunction: Send + Sync {
    /// The function's callable contract.
    fn signature(&self) -> &FunctionSignature;

    /// Invokes the function with already-validated arguments and
    /// per-invocation option overrides.
    ///
    /// # Errors
    ///
    /// See [`AskItError`].
    fn call_with(&self, args: Map, options: &QueryOptions) -> Result<DirectOutcome, AskItError>;
}

/// A direct-mode task function registered for serving: owns its runtime
/// (`Arc<Askit<L>>`) and pre-parsed template, so calls go straight into
/// [`run_direct`] — the full §III-E loop under the engine's cache,
/// scheduler, and speculation, shared with every other caller of the same
/// instance.
pub struct ServedTask<L> {
    askit: Arc<Askit<L>>,
    template: Template,
    signature: FunctionSignature,
    few_shot: Vec<Example>,
    options: QueryOptions,
}

impl<L: LanguageModel + 'static> ServedTask<L> {
    /// Defines a servable task from a prompt template. Parameters default
    /// to `any` until [`ServedTask::with_param_types`] declares them.
    ///
    /// # Errors
    ///
    /// [`AskItError::Template`] if the template is malformed.
    pub fn new(
        askit: Arc<Askit<L>>,
        name: impl Into<String>,
        answer_type: Type,
        template: &str,
    ) -> Result<Self, AskItError> {
        let parsed = Template::parse(template)?;
        let params = parsed
            .params()
            .into_iter()
            .map(|p| (p.to_owned(), askit_types::any()))
            .collect();
        Ok(ServedTask {
            askit,
            signature: FunctionSignature {
                name: name.into(),
                params,
                answer_type,
                description: template.to_owned(),
            },
            template: parsed,
            few_shot: Vec::new(),
            options: QueryOptions::default(),
        })
    }

    /// Declares parameter types; undeclared parameters stay `any`. With a
    /// declared type, the service boundary rejects non-inhabiting
    /// arguments with a client error instead of rendering them into a
    /// prompt.
    #[must_use]
    pub fn with_param_types<K: Into<String>>(
        mut self,
        types: impl IntoIterator<Item = (K, Type)>,
    ) -> Self {
        for (name, ty) in types {
            let name = name.into();
            if let Some(slot) = self.signature.params.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = ty;
            }
        }
        self
    }

    /// Adds few-shot examples included in every call's prompt.
    #[must_use]
    pub fn with_examples(mut self, examples: impl IntoIterator<Item = Example>) -> Self {
        self.few_shot.extend(examples);
        self
    }

    /// Attaches option overrides (model, temperature, retries, cache
    /// policy) every call of this function runs under; per-invocation
    /// options layer on top.
    #[must_use]
    pub fn with_options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the description exposed in the signature (defaults to the
    /// template source).
    #[must_use]
    pub fn describe(mut self, description: impl Into<String>) -> Self {
        self.signature.description = description.into();
        self
    }
}

impl<L> std::fmt::Debug for ServedTask<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedTask")
            .field("name", &self.signature.name)
            .field("template", &self.template.source())
            .finish()
    }
}

impl<L: LanguageModel + 'static> ServableFunction for ServedTask<L> {
    fn signature(&self) -> &FunctionSignature {
        &self.signature
    }

    fn call_with(&self, args: Map, options: &QueryOptions) -> Result<DirectOutcome, AskItError> {
        let config = options
            .layered_over(&self.options)
            .resolve(self.askit.config());
        run_direct(
            self.askit.engine(),
            &self.template,
            &args,
            &self.signature.answer_type,
            &self.few_shot,
            &config,
        )
    }
}

/// A compiled function registered for serving: calls run the generated
/// code locally — no model round trip — but present the same
/// [`ServableFunction`] face, so a route can be flipped from direct to
/// compiled without clients noticing anything but latency.
#[derive(Debug, Clone)]
pub struct ServedCompiled {
    compiled: CompiledFunction,
    signature: FunctionSignature,
}

impl ServedCompiled {
    /// Wraps a compiled function under `name`. Parameter types default to
    /// `any` (generated code coerces its own inputs);
    /// [`ServedCompiled::with_param_types`] tightens them.
    pub fn new(
        name: impl Into<String>,
        params: impl IntoIterator<Item = impl Into<String>>,
        answer_type: Type,
        compiled: CompiledFunction,
    ) -> Self {
        let signature = FunctionSignature {
            name: name.into(),
            params: params
                .into_iter()
                .map(|p| (p.into(), askit_types::any()))
                .collect(),
            answer_type,
            description: format!("compiled ({} LoC)", compiled.loc()),
        };
        ServedCompiled {
            compiled,
            signature,
        }
    }

    /// Declares parameter types; see [`ServedTask::with_param_types`].
    #[must_use]
    pub fn with_param_types<K: Into<String>>(
        mut self,
        types: impl IntoIterator<Item = (K, Type)>,
    ) -> Self {
        for (name, ty) in types {
            let name = name.into();
            if let Some(slot) = self.signature.params.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = ty;
            }
        }
        self
    }
}

impl ServableFunction for ServedCompiled {
    fn signature(&self) -> &FunctionSignature {
        &self.signature
    }

    fn call_with(&self, args: Map, options: &QueryOptions) -> Result<DirectOutcome, AskItError> {
        let started = Instant::now();
        let value = self.compiled.call_with(args, options)?;
        Ok(DirectOutcome {
            value,
            reason: None,
            attempts: 0,
            usage: Default::default(),
            latency: started.elapsed(),
            model: Default::default(),
            escalations: 0,
        })
    }
}

/// A thread-safe name → function route table.
///
/// Registration usually happens once at startup, but the table tolerates
/// live mutation (swap a direct route for its compiled twin while
/// serving); lookups clone the `Arc`, so an in-flight call keeps the entry
/// it resolved even if the route is replaced mid-call.
#[derive(Default)]
pub struct FunctionRegistry {
    entries: RwLock<HashMap<String, Arc<dyn ServableFunction>>>,
}

impl FunctionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// Registers a function under its signature's name, replacing any
    /// previous entry with that name. Returns the name registered under.
    pub fn register(&self, function: impl ServableFunction + 'static) -> String {
        self.register_arc(Arc::new(function))
    }

    /// [`FunctionRegistry::register`] for an already-shared function.
    pub fn register_arc(&self, function: Arc<dyn ServableFunction>) -> String {
        let name = function.signature().name.clone();
        self.write().insert(name.clone(), function);
        name
    }

    /// Removes a route; returns whether it existed.
    pub fn deregister(&self, name: &str) -> bool {
        self.write().remove(name).is_some()
    }

    /// Resolves a route.
    pub fn get(&self, name: &str) -> Option<Arc<dyn ServableFunction>> {
        self.read().get(name).cloned()
    }

    /// Registered route names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Every registered signature, sorted by name.
    pub fn signatures(&self) -> Vec<FunctionSignature> {
        let entries = self.read();
        let mut signatures: Vec<FunctionSignature> = entries
            .values()
            .map(|function| function.signature().clone())
            .collect();
        signatures.sort_by(|a, b| a.name.cmp(&b.name));
        signatures
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<dyn ServableFunction>>> {
        self.entries
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<dyn ServableFunction>>> {
        self.entries
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("routes", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;
    use askit_llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};

    fn shared_askit() -> Arc<Askit<MockLlm>> {
        Arc::new(Askit::new(MockLlm::new(
            MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
            Oracle::standard(),
        )))
    }

    fn add_task(askit: &Arc<Askit<MockLlm>>) -> ServedTask<MockLlm> {
        ServedTask::new(
            Arc::clone(askit),
            "add",
            askit_types::int(),
            "What is {{x}} plus {{y}}?",
        )
        .unwrap()
        .with_param_types([("x", askit_types::int()), ("y", askit_types::int())])
    }

    #[test]
    fn registered_task_serves_typed_calls() {
        let askit = shared_askit();
        let registry = FunctionRegistry::new();
        assert!(registry.is_empty());
        let name = registry.register(add_task(&askit));
        assert_eq!(name, "add");
        assert_eq!(registry.names(), vec!["add"]);
        let function = registry.get("add").unwrap();
        let outcome = function
            .call_with(args! { x: 19, y: 23 }, &QueryOptions::default())
            .unwrap();
        assert_eq!(outcome.value, Json::Int(42));
        assert!(outcome.attempts >= 1);
        assert!(registry.get("missing").is_none());
    }

    #[test]
    fn signature_validation_rejects_bad_arguments() {
        let askit = shared_askit();
        let task = add_task(&askit);
        let signature = task.signature();
        // The happy path coerces and keeps declared order.
        let ok = signature.validate_args(&args! { y: 2, x: 1 }).unwrap();
        assert_eq!(ok.keys().collect::<Vec<_>>(), vec!["x", "y"]);
        // Missing, unknown, and mistyped arguments all fail with a
        // description naming the problem.
        let missing = signature.validate_args(&args! { x: 1 }).unwrap_err();
        assert!(missing.contains("missing argument \"y\""), "{missing}");
        let unknown = signature
            .validate_args(&args! { x: 1, y: 2, z: 3 })
            .unwrap_err();
        assert!(unknown.contains("unknown argument \"z\""), "{unknown}");
        let mistyped = signature
            .validate_args(&args! { x: "one", y: 2 })
            .unwrap_err();
        assert!(mistyped.contains("\"x\""), "{mistyped}");
        // The JSON rendering names the contract.
        let json = signature.to_json();
        assert_eq!(json.pointer("/name").and_then(Json::as_str), Some("add"));
        assert_eq!(
            json.pointer("/params/x").and_then(Json::as_str),
            Some("number")
        );
        assert_eq!(
            json.pointer("/returns").and_then(Json::as_str),
            Some("number")
        );
    }

    #[test]
    fn replacing_a_route_keeps_in_flight_handles_valid() {
        let askit = shared_askit();
        let registry = FunctionRegistry::new();
        registry.register(add_task(&askit));
        let held = registry.get("add").unwrap();
        // Re-register under the same name (e.g. the compiled twin).
        registry.register(add_task(&askit));
        assert_eq!(registry.len(), 1);
        // The held entry still answers.
        let outcome = held
            .call_with(args! { x: 1, y: 2 }, &QueryOptions::default())
            .unwrap();
        assert_eq!(outcome.value, Json::Int(3));
        assert!(registry.deregister("add"));
        assert!(!registry.deregister("add"));
    }
}
