//! A minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! workspace vendors the subset of the proptest API its property suites are
//! written against: the [`Strategy`] trait with `prop_map` / `prop_recursive`
//! / `boxed`, `any`, `Just`, ranges and string-pattern strategies,
//! `prop::collection::vec`, `prop::sample::select`, weighted `prop_oneof!`,
//! and the `proptest!` test harness macro.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed, and failing cases are **not shrunk** — the failing case
//! number and a `Debug` dump (when available) are reported instead.

#![forbid(unsafe_code)]

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy;
pub mod string;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Runner configuration accepted by `proptest!`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies, seeded per (test, case).
pub type TestRng = StdRng;

/// Derives the deterministic RNG for one test case.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    StdRng::seed_from_u64(h)
}

/// A uniformly random value of type `T` (the `any::<T>()` strategy).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Types with a canonical uniform strategy.
pub trait Arbitrary: Sized + 'static {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` namespace (`collection`, `sample`, `num`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::strategy::Strategy;
        use super::super::TestRng;
        use rand::Rng;

        /// A `Vec` strategy with uniformly drawn length in `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// Strategy returned by [`vec()`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start >= self.len.end {
                    self.len.start
                } else {
                    rng.gen_range(self.len.clone())
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::strategy::Strategy;
        use super::super::TestRng;
        use rand::Rng;

        /// Uniform selection from a fixed set of items.
        pub fn select<S: Selectable>(items: S) -> Select<S::Item> {
            Select {
                items: items.into_items(),
            }
        }

        /// Sources [`select`] accepts.
        pub trait Selectable {
            /// Element type yielded by the strategy.
            type Item: Clone;
            /// Converts the source into an owned item list.
            fn into_items(self) -> Vec<Self::Item>;
        }

        impl<T: Clone> Selectable for Vec<T> {
            type Item = T;
            fn into_items(self) -> Vec<T> {
                self
            }
        }

        impl<T: Clone> Selectable for &[T] {
            type Item = T;
            fn into_items(self) -> Vec<T> {
                self.to_vec()
            }
        }

        impl<T: Clone, const N: usize> Selectable for &[T; N] {
            type Item = T;
            fn into_items(self) -> Vec<T> {
                self.to_vec()
            }
        }

        /// Strategy returned by [`select`].
        #[derive(Clone)]
        pub struct Select<T> {
            items: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                assert!(!self.items.is_empty(), "select over an empty set");
                self.items[rng.gen_range(0..self.items.len())].clone()
            }
        }
    }

    /// Numeric strategies.
    pub mod num {
        /// `f64` strategies.
        pub mod f64 {
            use super::super::super::strategy::Strategy;
            use super::super::super::TestRng;
            use rand::Rng;

            /// Strategy over normal (non-zero, non-subnormal, finite) floats.
            pub struct NormalF64;

            /// Uniformly random normal `f64` bit patterns.
            pub const NORMAL: NormalF64 = NormalF64;

            impl Strategy for NormalF64 {
                type Value = f64;

                fn generate(&self, rng: &mut TestRng) -> f64 {
                    loop {
                        let candidate = f64::from_bits(rng.next_u64());
                        if candidate.is_normal() {
                            return candidate;
                        }
                    }
                }
            }
        }
    }
}

/// The prelude the property suites import.
pub mod prelude {
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::{any, prop, Arbitrary, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// One weighted branch of a [`prop_oneof!`] union.
pub struct WeightedBranch<T> {
    /// Relative selection weight.
    pub weight: u32,
    /// The branch strategy, boxed.
    pub strategy: BoxedStrategy<T>,
}

/// Builds a weighted-union strategy (used by `prop_oneof!`).
pub fn one_of<T: 'static>(branches: Vec<WeightedBranch<T>>) -> BoxedStrategy<T> {
    assert!(
        !branches.is_empty(),
        "prop_oneof! needs at least one branch"
    );
    let total: u64 = branches.iter().map(|b| u64::from(b.weight)).sum();
    let branches = Rc::new(branches);
    BoxedStrategy::from_fn(move |rng| {
        let mut draw = rng.gen_range(0..total.max(1));
        for branch in branches.iter() {
            let w = u64::from(branch.weight);
            if draw < w {
                return branch.strategy.generate(rng);
            }
            draw -= w;
        }
        branches[branches.len() - 1].strategy.generate(rng)
    })
}

/// Weighted or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![
            $( $crate::WeightedBranch {
                weight: $weight,
                strategy: $crate::Strategy::boxed($strategy),
            } ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![
            $( $crate::WeightedBranch {
                weight: 1,
                strategy: $crate::Strategy::boxed($strategy),
            } ),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` generating `cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $(let $arg = $crate::Strategy::boxed($strategy);)+
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {case}/{} of {} failed (no shrinking in the offline shim)",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}
