//! The [`Strategy`] trait and core combinators.

use std::rc::Rc;

use rand::Rng;

use crate::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves and `branch`
    /// wraps an inner strategy into the recursive case. `depth` bounds the
    /// nesting; the size hints are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let branched = branch(current.clone()).boxed();
            let leaf = base.clone();
            current = BoxedStrategy::from_fn(move |rng| {
                // Descend with fixed probability so deep nests stay rare but
                // reachable, like upstream's probabilistic recursion.
                if rng.gen_bool(0.65) {
                    branched.generate(rng)
                } else {
                    leaf.generate(rng)
                }
            });
        }
        current
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| inner.generate(rng))
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation closure.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen_fn: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::SampleUniform + Clone> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// String literals act as generation patterns (a small regex subset: char
/// classes, `{m,n}` / `?` repetition, optional groups, `\PC`).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}
