//! Generation of strings matching the small regex subset the workspace's
//! property suites use as string strategies.
//!
//! Supported syntax: literal characters, character classes `[a-z0-9_]` with
//! ranges and `\`-escapes, the printable-character class `\PC`, groups
//! `( ... )`, and the quantifiers `{m,n}`, `{n}`, and `?` on any atom.

use rand::Rng;

use crate::TestRng;

/// One parsed pattern element.
enum Atom {
    /// A fixed character.
    Literal(char),
    /// A set of candidate characters.
    Class(Vec<char>),
    /// Any printable (non-control) character (`\PC`).
    Printable,
    /// A parenthesised sub-pattern.
    Group(Vec<(Atom, Repeat)>),
}

/// Repetition bounds for an atom.
struct Repeat {
    min: u32,
    max: u32,
}

impl Repeat {
    fn once() -> Self {
        Repeat { min: 1, max: 1 }
    }
}

/// Characters `\PC` draws from: ASCII printable plus a few multibyte
/// code points so Unicode handling is exercised.
const PRINTABLE_EXTRA: &[char] = &['é', 'ß', 'λ', '中', '😀'];

/// Generates a string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset (a test-authoring error).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut rest = chars.as_slice();
    let atoms = parse_sequence(&mut rest);
    assert!(rest.is_empty(), "unbalanced ')' in pattern {pattern:?}");
    let mut out = String::new();
    for (atom, repeat) in &atoms {
        emit(atom, repeat, rng, &mut out);
    }
    out
}

fn emit(atom: &Atom, repeat: &Repeat, rng: &mut TestRng, out: &mut String) {
    let n = if repeat.min == repeat.max {
        repeat.min
    } else {
        rng.gen_range(repeat.min..=repeat.max)
    };
    for _ in 0..n {
        match atom {
            Atom::Literal(c) => out.push(*c),
            Atom::Class(set) => {
                assert!(!set.is_empty(), "empty character class");
                out.push(set[rng.gen_range(0..set.len())]);
            }
            Atom::Printable => {
                // Mostly ASCII printable, occasionally a multibyte char.
                if rng.gen_bool(0.9) {
                    out.push(char::from(rng.gen_range(0x20u8..0x7f)));
                } else {
                    out.push(PRINTABLE_EXTRA[rng.gen_range(0..PRINTABLE_EXTRA.len())]);
                }
            }
            Atom::Group(parts) => {
                for (inner, inner_repeat) in parts {
                    emit(inner, inner_repeat, rng, out);
                }
            }
        }
    }
}

/// Parses atoms until the input (or the enclosing group) ends.
fn parse_sequence(input: &mut &[char]) -> Vec<(Atom, Repeat)> {
    let mut atoms = Vec::new();
    while let Some(&c) = input.first() {
        if c == ')' {
            break;
        }
        *input = &input[1..];
        let atom = match c {
            '[' => parse_class(input),
            '(' => {
                let inner = parse_sequence(input);
                assert_eq!(input.first(), Some(&')'), "unterminated group");
                *input = &input[1..];
                Atom::Group(inner)
            }
            '\\' => {
                let next = take(input);
                if next == 'P' {
                    let category = take(input);
                    assert_eq!(category, 'C', "only \\PC is supported");
                    Atom::Printable
                } else {
                    Atom::Literal(unescape(next))
                }
            }
            other => Atom::Literal(other),
        };
        atoms.push((atom, parse_repeat(input)));
    }
    atoms
}

/// Parses an optional `{m,n}` / `{n}` / `?` quantifier.
fn parse_repeat(input: &mut &[char]) -> Repeat {
    match input.first() {
        Some('?') => {
            *input = &input[1..];
            Repeat { min: 0, max: 1 }
        }
        Some('{') => {
            *input = &input[1..];
            let mut spec = String::new();
            loop {
                let c = take(input);
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => Repeat {
                    min: lo.trim().parse().expect("repeat lower bound"),
                    max: hi.trim().parse().expect("repeat upper bound"),
                },
                None => {
                    let n = spec.trim().parse().expect("repeat count");
                    Repeat { min: n, max: n }
                }
            }
        }
        _ => Repeat::once(),
    }
}

/// Parses a `[...]` class body (the `[` is already consumed).
fn parse_class(input: &mut &[char]) -> Atom {
    let mut set = Vec::new();
    loop {
        let c = take(input);
        match c {
            ']' => break,
            '\\' => set.push(unescape(take(input))),
            _ => {
                // A `-` between two chars forms a range (unless last-in-class).
                if input.first() == Some(&'-') && input.get(1).is_some_and(|&n| n != ']') {
                    *input = &input[1..];
                    let end = match take(input) {
                        '\\' => unescape(take(input)),
                        e => e,
                    };
                    let (lo, hi) = (c as u32, end as u32);
                    assert!(lo <= hi, "inverted class range");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                } else {
                    set.push(c);
                }
            }
        }
    }
    Atom::Class(set)
}

fn take(input: &mut &[char]) -> char {
    let c = *input.first().expect("unterminated pattern");
    *input = &input[1..];
    c
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_rng;

    fn sample(pattern: &str, case: u32) -> String {
        generate_matching(pattern, &mut case_rng("string-shim", case))
    }

    #[test]
    fn classes_and_bounds() {
        for case in 0..200 {
            let s = sample("[a-z]{1,8}", case);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn identifier_shape() {
        for case in 0..100 {
            let s = sample("[a-z][a-z0-9_]{0,6}", case);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().count() <= 7);
        }
    }

    #[test]
    fn printable_class() {
        for case in 0..100 {
            let s = sample("\\PC{0,48}", case);
            assert!(s.chars().count() <= 48);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn escapes_in_classes() {
        let mut saw_dash = false;
        let mut saw_backslash = false;
        for case in 0..400 {
            let s = sample("[a\\-\\\\\n]{4}", case);
            assert_eq!(s.chars().count(), 4);
            saw_dash |= s.contains('-');
            saw_backslash |= s.contains('\\');
            assert!(
                s.chars().all(|c| matches!(c, 'a' | '-' | '\\' | '\n')),
                "{s:?}"
            );
        }
        assert!(saw_dash && saw_backslash);
    }

    #[test]
    fn optional_groups() {
        let mut empty = 0;
        for case in 0..200 {
            let s = sample("( [a-z]{0,8})?", case);
            if s.is_empty() {
                empty += 1;
            } else {
                assert!(s.starts_with(' '), "{s:?}");
            }
        }
        assert!(empty > 20, "optional group never empty");
    }
}
