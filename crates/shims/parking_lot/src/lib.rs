//! A minimal, dependency-free stand-in for the parts of `parking_lot` this
//! workspace uses. Locks are backed by `std::sync` and ignore poisoning (a
//! panicking holder does not wedge later users), which matches the
//! `parking_lot` API this code was written against.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_stays_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
