//! A minimal, dependency-free stand-in for the parts of `criterion` this
//! workspace's benches use. It times each benchmark closure over a bounded
//! number of iterations and prints mean wall-clock per iteration — no
//! statistical analysis, no reports. The bench *sources* stay compatible with
//! upstream criterion, so swapping the real crate back in is a manifest edit.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration time budget guard: a sample run stops early once it has
/// consumed this much wall-clock.
const SAMPLE_BUDGET: Duration = Duration::from_secs(3);

/// Prevents the optimizer from eliding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_bench(&format!("{id}"), 10, &mut f);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the throughput basis for subsequent benchmarks (recorded for
    /// API compatibility; the shim does not report throughput).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_bench(&format!("{}/{id}", self.name), self.sample_size, &mut f);
    }

    /// Benchmarks a closure parameterised by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_bench(&format!("{}/{id}", self.name), self.sample_size, &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    // One warm-up pass, untimed.
    f(&mut bencher);
    bencher.iterations = 0;
    bencher.elapsed = Duration::ZERO;
    let started = Instant::now();
    for _ in 0..sample_size {
        f(&mut bencher);
        if started.elapsed() > SAMPLE_BUDGET {
            break;
        }
    }
    let mean = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / u32::try_from(bencher.iterations.min(u64::from(u32::MAX))).unwrap_or(1)
    };
    println!(
        "bench {label}: mean {mean:?} over {} iterations",
        bencher.iterations
    );
}

/// Times closures handed to it by a benchmark.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times one closure invocation (called repeatedly by the harness).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let started = Instant::now();
        let out = routine();
        self.elapsed += started.elapsed();
        self.iterations += 1;
        drop(black_box(out));
    }
}

/// A benchmark identifier: function name plus parameter value.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: format!("{function}"),
            parameter: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Throughput basis for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Collects benchmark functions into one runner, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
