//! A minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`].
//!
//! The container this workspace builds in has no access to crates.io, so the
//! workspace vendors the small API surface it needs. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for test and
//! simulation workloads, deterministic per seed, and stable across platforms.
//! It makes no attempt to match upstream `rand`'s exact streams.

#![forbid(unsafe_code)]

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value trait: everything is derived from [`Rng::next_u64`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            // Still consume a draw so streams stay aligned with p < 1 paths.
            let _ = self.next_u64();
            return true;
        }
        if p <= 0.0 {
            let _ = self.next_u64();
            return false;
        }
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut |_| self.next_u64())
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly samplable with [`Rng::gen`].
pub trait Standard {
    /// Draws a uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Types drawable uniformly from a range.
pub trait SampleUniform: Sized {
    /// A uniform value in `[start, end)` from one 64-bit draw.
    fn from_half_open(start: Self, end: Self, draw: u64) -> Self;
    /// A uniform value in `[start, end]` from one 64-bit draw.
    fn from_inclusive(start: Self, end: Self, draw: u64) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_half_open(start: Self, end: Self, draw: u64) -> Self {
                assert!(start < end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128;
                let offset = ((draw as u128) % span) as i128;
                (start as i128 + offset) as $t
            }
            fn from_inclusive(start: Self, end: Self, draw: u64) -> Self {
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = ((draw as u128) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn from_half_open(start: Self, end: Self, draw: u64) -> Self {
        assert!(start < end, "gen_range called with empty range");
        start + unit_f64(draw) * (end - start)
    }
    fn from_inclusive(start: Self, end: Self, draw: u64) -> Self {
        assert!(start <= end, "gen_range called with empty range");
        // 53-bit draw mapped onto [0, 1] inclusive.
        let unit = (draw >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range; `next` yields raw 64-bit draws.
    fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> T {
        T::from_half_open(self.start, self.end, next(()))
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> T {
        T::from_inclusive(*self.start(), *self.end(), next(()))
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = rng.gen_range(0..self.len());
                self.get(idx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = rng.gen_range(-100i64..1000);
            assert!((-100..1000).contains(&v));
            let f = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let u = rng.gen_range(0usize..4);
            assert!(u < 4);
        }
    }

    #[test]
    fn range_values_cover_small_spans() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(rng.gen_range(0i32..4));
        }
        assert_eq!(seen.len(), 4, "{seen:?}");
    }

    #[test]
    fn choose_is_total() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let xs = [1, 2, 3];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
