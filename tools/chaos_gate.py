#!/usr/bin/env python3
"""Deterministic chaos gate for the resilience layer.

Runs the ``chaos_sweep`` example — two loopback endpoints, a scripted
fault timeline on the primary (blackout, 429 storm, slow-loris,
mid-stream disconnect, flapping), and an expired-deadline probe — and
gates on its ``CHAOS_SWEEP`` JSON line:

* **zero user-visible errors**: every retryable fault class must be
  absorbed by retry, circuit-breaker failover, or hedging;
* **bit-identical results**: each faulted run must return exactly the
  bytes of its no-fault baseline (endpoints are service advice, not part
  of the request identity);
* **bounded failover**: the worst request in the dead-primary scenario
  must settle inside ``--max-failover-ms``;
* **fault coverage**: the sweep must actually have failed over, tripped a
  breaker, won a hedge, and shed an expired deadline — a sweep that
  observed none of those tested nothing.

Fault windows key on request ordinals, not clocks, so reruns replay the
exact same timeline. The observed numbers land in
``BENCH_chaos_resilience.json`` for the trends dashboard.

Usage:
    python3 tools/chaos_gate.py [--bin PATH] [--max-failover-ms MS]
                                [--out PATH]
"""

import argparse
import json
import sys
import time
from pathlib import Path

from shared_cache_gate import digest_line, run


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bin",
        default="target/release/examples/chaos_sweep",
        help="chaos_sweep example binary "
        "(default: target/release/examples/chaos_sweep)",
    )
    parser.add_argument(
        "--max-failover-ms",
        type=int,
        default=2000,
        help="ceiling on the slowest request in the blackout scenario",
    )
    parser.add_argument("--out", default="BENCH_chaos_resilience.json")
    args = parser.parse_args()

    started = time.monotonic()
    sweep = run([str(Path(args.bin).resolve())], "chaos sweep")
    elapsed = time.monotonic() - started
    report = json.loads(digest_line("CHAOS_SWEEP", sweep.stdout, "chaos sweep"))
    totals = report["totals"]
    deadline = report["deadline"]

    failures = []
    if totals["user_visible_errors"] != 0:
        failures.append(
            f"{totals['user_visible_errors']} request(s) surfaced an error "
            f"under retryable faults"
        )
    if not totals["bit_identical"]:
        diverged = [
            s["name"] for s in report["scenarios"] if not s["bit_identical"]
        ]
        failures.append(
            f"faulted runs diverged from their no-fault baselines: {diverged}"
        )
    if totals["failover_latency_ms"] > args.max_failover_ms:
        failures.append(
            f"blackout failover took {totals['failover_latency_ms']}ms "
            f"(ceiling {args.max_failover_ms}ms)"
        )
    coverage = {
        "failovers": totals["failovers"],
        "breaker_trips": totals["breaker_trips"],
        "hedge_wins": totals["hedge_wins"],
        "deadline_sheds": deadline["deadline_sheds"],
    }
    for event, count in coverage.items():
        if count < 1:
            failures.append(f"the sweep never exercised {event} — it tested nothing")
    if not deadline["shed_before_wire"]:
        failures.append("an expired deadline reached the wire")

    stats = {
        "elapsed_secs": round(elapsed, 3),
        "requests": totals["requests"],
        "user_visible_errors": totals["user_visible_errors"],
        "bit_identical": totals["bit_identical"],
        "failover_latency_ms": totals["failover_latency_ms"],
        "failovers": totals["failovers"],
        "breaker_trips": totals["breaker_trips"],
        "hedges": totals["hedges"],
        "hedge_wins": totals["hedge_wins"],
        "hedge_win_rate": totals["hedge_win_rate"],
        "deadline_shed_before_wire": deadline["shed_before_wire"],
        "scenarios": report["scenarios"],
    }
    Path(args.out).write_text(json.dumps(stats, indent=2) + "\n")
    print(
        f"{totals['requests']} requests under 5 fault classes: "
        f"{totals['user_visible_errors']} user-visible errors, results "
        f"{'bit-identical' if totals['bit_identical'] else 'DIVERGED'}; "
        f"failover worst-case {totals['failover_latency_ms']}ms, "
        f"{totals['failovers']} failovers, {totals['breaker_trips']} breaker "
        f"trips, {totals['hedge_wins']}/{totals['hedges']} hedges won"
    )
    if failures:
        sys.exit("\n".join(failures))


if __name__ == "__main__":
    main()
