#!/usr/bin/env python3
"""Collect BENCH_*.json artifacts into a single BENCH_TRENDS.md.

Every bench job in CI emits one JSON object as a ``BENCH_<name>.json``
artifact. This script scans a directory tree for those files (artifact
downloads unpack each one into its own subdirectory), flattens each object
into dotted key/value rows, and renders one markdown section per bench so a
whole run's numbers can be read — and diffed against a previous run — in one
place.

Usage:
    python3 tools/bench_trends.py [--dir DIR] [--out BENCH_TRENDS.md]

The script is deliberately generic: new benches need no changes here, they
just have to emit a single JSON object and follow the naming convention.
"""

import argparse
import json
import sys
from pathlib import Path


def flatten(value, prefix=""):
    """Yields (dotted_key, scalar) rows for one JSON value, depth-first.

    Lists of objects become ``key[i].field`` rows so static-width sweeps and
    similar arrays stay readable; scalar lists render inline.
    """
    if isinstance(value, dict):
        for key, child in value.items():
            yield from flatten(child, f"{prefix}{key}." if prefix or key else "")
    elif isinstance(value, list):
        if all(not isinstance(item, (dict, list)) for item in value):
            yield prefix.rstrip("."), ", ".join(str(item) for item in value)
        else:
            for i, item in enumerate(value):
                yield from flatten(item, f"{prefix.rstrip('.')}[{i}].")
    else:
        yield prefix.rstrip("."), value


def render_section(name, data):
    lines = [f"## {name}", "", "| metric | value |", "|---|---|"]
    for key, value in flatten(data):
        if isinstance(value, float):
            value = f"{value:.4g}"
        lines.append(f"| `{key}` | {value} |")
    lines.append("")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir",
        default=".",
        help="directory tree to scan for BENCH_*.json (default: cwd)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_TRENDS.md",
        help="markdown file to write (default: BENCH_TRENDS.md)",
    )
    args = parser.parse_args()

    found = sorted(Path(args.dir).rglob("BENCH_*.json"), key=lambda p: p.name)
    sections = []
    seen = set()
    for path in found:
        if path.name in seen:
            continue  # artifact directories can duplicate a file
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"skipping {path}: {error}", file=sys.stderr)
            continue
        seen.add(path.name)
        name = path.stem.removeprefix("BENCH_")
        sections.append(render_section(name, data))

    if not sections:
        sys.exit(f"no readable BENCH_*.json files under {args.dir}")

    body = "\n".join(
        [
            "# Bench trends",
            "",
            "One section per `BENCH_*.json` artifact emitted by this run's",
            "bench jobs. Compare against the previous run's artifact to spot",
            "regressions the hard gates are too tolerant to catch.",
            "",
            *sections,
        ]
    )
    Path(args.out).write_text(body)
    print(f"wrote {args.out} ({len(seen)} benches)")


if __name__ == "__main__":
    main()
