#!/usr/bin/env python3
"""Render BENCH_*.json artifacts into a BENCH_TRENDS.md dashboard.

Every bench job in CI emits one JSON object as a ``BENCH_<name>.json``
artifact. This script scans a directory tree for those files (artifact
downloads unpack each one into its own subdirectory) and renders one
markdown section per bench. When several snapshots of the *same* bench are
present — e.g. artifacts downloaded from a run plus one or more previous
runs — each metric row grows a history: the raw values oldest→newest and a
sparkline (``▁▂▃▄▅▆▇█``) so a drifting metric is visible at a glance
without diffing JSON by hand.

Snapshots of one bench are ordered by file modification time (artifact
extraction preserves the run order when older runs are downloaded first);
with a single snapshot per bench the dashboard degrades to plain
latest-value tables.

The dashboard header documents what each CI gate measures and where its
threshold lives, so a red gate can be read without opening the workflow.

Usage:
    python3 tools/bench_trends.py [--dir DIR] [--out BENCH_TRENDS.md]

New benches need no changes here: emit a single JSON object, follow the
``BENCH_<name>.json`` naming convention, and (optionally) add a gate
description to ``GATES`` below.
"""

import argparse
import json
import sys
from pathlib import Path

# How to read each gate: bench name -> (what the number is, what failing
# means). Kept here, next to the renderer, so the dashboard and the gate
# travel together; thresholds live in .github/workflows/ci.yml.
GATES = {
    "engine_throughput": (
        "serial vs batched GSM8K submission through the engine pool",
        "no hard gate — a trends-only artifact; watch problems/sec",
    ),
    "engine_overhead": (
        "100k-problem warm-cache sweep: pooled vs spawn-per-call, plus the "
        "prepared-fingerprint fast path",
        "fails when pooled speedup < 1.5x or the fingerprint path < 10x — "
        "the engine's bookkeeping started to cost more than it saves",
    ),
    "cache_warmstart": (
        "gsm8k_speedup example cold then warm against one --cache-dir",
        "fails when the warm run hits < 90% or is not faster — persistence "
        "stopped replaying the cold run",
    ),
    "mixed_model_routing": (
        "AIMD width adaptation vs the best static width; escalation ladder "
        "vs expensive-only routing",
        "fails when adaptive < 0.95x best-static, escalation loses solved "
        "problems, or stops reducing expensive-model calls",
    ),
    "serve_loadtest": (
        "8 client threads through the HTTP/SSE front-end to the loopback "
        "server, cold then warm",
        "fails on any dropped request, no coalescing, warm-pass wire "
        "requests, or a misbehaving drain",
    ),
    "shared_cache": (
        "N concurrent table3 shard processes over one --shared-cache dir, "
        "merged and compared against a single-process run",
        "fails when the merged digest is not bit-identical to the "
        "reference or the warm sweep's aggregate hit rate < 90% — the "
        "store corrupted, dropped, or stopped serving entries",
    ),
    "chaos_resilience": (
        "two-endpoint chaos sweep: scripted blackout/429/slow-loris/"
        "cut/flapping windows on the primary, plus an expired-deadline "
        "probe",
        "fails on any user-visible error under a retryable fault, a "
        "result diverging from the no-fault baseline, unbounded failover "
        "latency, or a sweep that never exercised failover, breakers, "
        "hedging, and deadline shedding",
    ),
    "obs_overhead": (
        "observability layer end to end: serve_loadtest's mid-run "
        "/metrics scrape, a chaos_sweep --trace-out Chrome-trace export, "
        "and in-process alternating obs-off/obs-on warm probe rounds",
        "fails when a required metric series or trace span is missing, "
        "the trace never crosses endpoints, or obs-on probes run more "
        "than 5% behind obs-off — instrumentation started to cost more "
        "than it observes",
    ),
}

SPARKS = "▁▂▃▄▅▆▇█"


def flatten(value, prefix=""):
    """Yields (dotted_key, scalar) rows for one JSON value, depth-first.

    Lists of objects become ``key[i].field`` rows so static-width sweeps and
    similar arrays stay readable; scalar lists render inline.
    """
    if isinstance(value, dict):
        for key, child in value.items():
            yield from flatten(child, f"{prefix}{key}." if prefix or key else "")
    elif isinstance(value, list):
        if all(not isinstance(item, (dict, list)) for item in value):
            yield prefix.rstrip("."), ", ".join(str(item) for item in value)
        else:
            for i, item in enumerate(value):
                yield from flatten(item, f"{prefix.rstrip('.')}[{i}].")
    else:
        yield prefix.rstrip("."), value


def sparkline(values):
    """One spark character per numeric snapshot, min..max scaled."""
    numeric = [v for v in values if isinstance(v, (int, float))]
    if len(numeric) != len(values) or len(values) < 2:
        return ""
    low, high = min(numeric), max(numeric)
    if high == low:
        return SPARKS[3] * len(numeric)
    scale = (len(SPARKS) - 1) / (high - low)
    return "".join(SPARKS[round((v - low) * scale)] for v in numeric)


def fmt(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_section(name, snapshots):
    """One bench's markdown: gate doc + metric table over its snapshots."""
    lines = [f"## {name}", ""]
    if name in GATES:
        measures, failing = GATES[name]
        lines += [f"*Measures:* {measures}.", "", f"*Gate:* {failing}.", ""]
    history = len(snapshots) > 1
    if history:
        lines += [
            f"{len(snapshots)} snapshots, oldest → newest.",
            "",
            "| metric | history | trend | latest |",
            "|---|---|---|---|",
        ]
    else:
        lines += ["| metric | value |", "|---|---|"]

    # Row order follows the latest snapshot; older snapshots may lack keys.
    keys = [key for key, _ in flatten(snapshots[-1])]
    per_snapshot = [dict(flatten(snap)) for snap in snapshots]
    for key in keys:
        if history:
            values = [snap.get(key) for snap in per_snapshot if key in snap]
            shown = ", ".join(fmt(v) for v in values[:-1]) or "—"
            lines.append(
                f"| `{key}` | {shown} | {sparkline(values)} "
                f"| {fmt(values[-1])} |"
            )
        else:
            lines.append(f"| `{key}` | {fmt(per_snapshot[-1][key])} |")
    lines.append("")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir",
        default=".",
        help="directory tree to scan for BENCH_*.json (default: cwd)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_TRENDS.md",
        help="markdown file to write (default: BENCH_TRENDS.md)",
    )
    args = parser.parse_args()

    # Group every copy of each bench name; order copies oldest-first.
    benches = {}
    for path in sorted(
        Path(args.dir).rglob("BENCH_*.json"),
        key=lambda p: (p.stat().st_mtime, str(p)),
    ):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"skipping {path}: {error}", file=sys.stderr)
            continue
        name = path.stem.removeprefix("BENCH_")
        snapshots = benches.setdefault(name, [])
        # Identical re-downloads of one artifact are not history.
        if not any(data == seen for seen in snapshots):
            snapshots.append(data)

    if not benches:
        sys.exit(f"no readable BENCH_*.json files under {args.dir}")

    sections = [
        render_section(name, snaps) for name, snaps in sorted(benches.items())
    ]
    body = "\n".join(
        [
            "# Bench trends",
            "",
            "One section per `BENCH_*.json` artifact emitted by the bench",
            "jobs. Each section states what the bench measures and what its",
            "CI gate catches (thresholds live in `.github/workflows/ci.yml`).",
            "Drop previous runs' artifacts into the same scan directory to",
            "grow per-metric histories with sparklines — a slow drift shows",
            "up there long before it trips a hard gate.",
            "",
            *sections,
        ]
    )
    Path(args.out).write_text(body)
    total = sum(len(s) for s in benches.values())
    print(f"wrote {args.out} ({len(benches)} benches, {total} snapshots)")


if __name__ == "__main__":
    main()
