#!/usr/bin/env python3
"""Fail CI when ARCHITECTURE.md's crate map drifts from the workspace.

ARCHITECTURE.md carries a hand-written crate table (one ``| `name` | ... |``
row per workspace member). Docs rot silently; Cargo.toml does not. This
script reads the real member list from ``cargo metadata --no-deps`` and
diffs it against the names mentioned in the table, so adding or removing a
crate without touching the docs fails the docs step.

The check is deliberately name-level only: descriptions, layering prose,
and diagrams stay human-judged. It just refuses to let the map lose (or
invent) a crate.

Usage:
    python3 tools/check_architecture.py [--doc ARCHITECTURE.md]
"""

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path


def workspace_crates():
    metadata = json.loads(
        subprocess.run(
            ["cargo", "metadata", "--no-deps", "--format-version", "1"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    )
    return {package["name"] for package in metadata["packages"]}


def documented_crates(doc_path):
    """Crate names from the doc's table rows: ``| `name` | ... |``."""
    crates = set()
    for line in Path(doc_path).read_text().splitlines():
        match = re.match(r"\|\s*`([A-Za-z0-9_-]+)`\s*\|", line)
        if match:
            crates.add(match.group(1))
    return crates


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--doc", default="ARCHITECTURE.md")
    args = parser.parse_args()

    if not Path(args.doc).exists():
        sys.exit(f"{args.doc} does not exist")
    actual = workspace_crates()
    documented = documented_crates(args.doc)

    failures = []
    missing = sorted(actual - documented)
    if missing:
        failures.append(
            f"{args.doc} is missing workspace crate(s): {', '.join(missing)}"
        )
    stale = sorted(documented - actual)
    if stale:
        failures.append(
            f"{args.doc} documents crate(s) that no longer exist: "
            f"{', '.join(stale)}"
        )
    if failures:
        sys.exit("\n".join(failures))
    print(f"{args.doc} crate map matches the workspace ({len(actual)} crates)")


if __name__ == "__main__":
    main()
