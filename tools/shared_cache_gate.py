#!/usr/bin/env python3
"""Multi-process shared-cache gate for the table3 sweep.

Drives the scenario the content-addressed store exists for: several eval
processes pointing at ONE ``--cache-dir`` in ``--shared-cache`` mode, each
running a disjoint ``--shard`` of the problem list, with their flushes
merging through per-shard file locks instead of overwriting each other.

Three phases, all against the same binary:

1. **Reference** — one full single-process run, no cache. Its
   ``TABLE3_DIGEST`` line is the ground truth the shards must reproduce.
2. **Cold** — N concurrent shard processes share a fresh cache directory
   and each write a JSON fragment; ``merge-table3`` unions the fragments.
   The merged ``TABLE3_MERGE`` digest must equal the reference digest
   bit-for-bit.
3. **Warm** — the same N shards rerun against the now-populated directory.
   The merge must again be bit-identical, and the aggregate hit rate
   across every fragment's cache counters must reach the threshold
   (default 0.90): a warm sweep is supposed to be served from the store,
   not re-derived.

Any nonzero exit, missing digest line, or load error fails the gate — a
corrupted index or object would surface as one of those. The observed
numbers land in ``BENCH_shared_cache.json`` for the trends dashboard.

Usage:
    python3 tools/shared_cache_gate.py [--bin PATH] [--shards N]
                                       [--count N] [--seed S]
                                       [--min-hit-rate R] [--out PATH]
"""

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def digest_line(tag, output, context):
    """The JSON payload of the single ``tag`` line in ``output``."""
    found = [line for line in output.splitlines() if line.startswith(tag + " ")]
    if len(found) != 1:
        sys.exit(f"{context}: expected exactly one {tag} line, got {len(found)}")
    return found[0].split(" ", 1)[1]


def run(cmd, context, **kwargs):
    proc = subprocess.run(
        cmd, capture_output=True, text=True, check=False, **kwargs
    )
    if proc.returncode != 0:
        sys.exit(
            f"{context} exited {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
    return proc


def sweep(args, workdir, phase):
    """One N-process concurrent shard sweep + merge; returns (digest, frags)."""
    procs = []
    for shard in range(args.shards):
        fragment = workdir / f"{phase}{shard}.json"
        procs.append(
            (
                shard,
                fragment,
                subprocess.Popen(
                    [
                        args.bin,
                        "table3",
                        "--count", str(args.count),
                        "--seed", str(args.seed),
                        "--threads", "2",
                        "--cache-dir", str(workdir / "cache"),
                        "--shared-cache",
                        "--shard", f"{shard}/{args.shards}",
                        "--fragment", str(fragment),
                    ],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                    cwd=workdir,
                ),
            )
        )
    fragments = []
    for shard, fragment, proc in procs:
        stdout, stderr = proc.communicate()
        context = f"{phase} shard {shard}/{args.shards}"
        if proc.returncode != 0:
            sys.exit(
                f"{context} exited {proc.returncode}\n"
                f"stdout:\n{stdout}\nstderr:\n{stderr}"
            )
        # Every run prints its own digest even in fragment mode; its absence
        # (or duplication) means the run did not finish cleanly.
        digest_line("TABLE3_DIGEST", stdout, context)
        fragments.append(json.loads(fragment.read_text()))
    merge = run(
        [args.bin, "merge-table3"]
        + [str(workdir / f"{phase}{s}.json") for s in range(args.shards)],
        f"{phase} merge",
        cwd=workdir,
    )
    return digest_line("TABLE3_MERGE", merge.stdout, f"{phase} merge"), fragments


def hit_stats(fragments):
    hits = sum(c["cache"]["hits"] for f in fragments for c in f["columns"])
    misses = sum(c["cache"]["misses"] for f in fragments for c in f["columns"])
    return hits, misses, hits / max(hits + misses, 1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bin",
        default="target/release/askit-eval",
        help="askit-eval binary (default: target/release/askit-eval)",
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--count", type=int, default=60)
    parser.add_argument("--seed", type=int, default=20240302)
    parser.add_argument("--min-hit-rate", type=float, default=0.9)
    parser.add_argument("--out", default="BENCH_shared_cache.json")
    args = parser.parse_args()
    # The shard processes run inside a temp dir; the binary path must
    # survive that cwd change.
    args.bin = str(Path(args.bin).resolve())
    if args.shards < 2:
        sys.exit("--shards must be >= 2: the gate exists to test concurrency")

    with tempfile.TemporaryDirectory(prefix="askit-shared-gate-") as tmp:
        workdir = Path(tmp)
        started = time.monotonic()
        reference = run(
            [
                args.bin, "table3",
                "--count", str(args.count),
                "--seed", str(args.seed),
                "--threads", "2",
            ],
            "reference run",
            cwd=workdir,
        )
        ref_digest = digest_line("TABLE3_DIGEST", reference.stdout, "reference")
        ref_secs = time.monotonic() - started

        started = time.monotonic()
        cold_digest, cold_frags = sweep(args, workdir, "cold")
        cold_secs = time.monotonic() - started
        started = time.monotonic()
        warm_digest, warm_frags = sweep(args, workdir, "warm")
        warm_secs = time.monotonic() - started

    cold_hits, cold_misses, cold_rate = hit_stats(cold_frags)
    warm_hits, warm_misses, warm_rate = hit_stats(warm_frags)
    digests_identical = cold_digest == ref_digest and warm_digest == ref_digest
    failures = []
    if cold_digest != ref_digest:
        failures.append(
            f"cold merged digest diverged from the single-process run:\n"
            f"  reference: {ref_digest}\n  merged:    {cold_digest}"
        )
    if warm_digest != ref_digest:
        failures.append(
            f"warm merged digest diverged from the single-process run:\n"
            f"  reference: {ref_digest}\n  merged:    {warm_digest}"
        )
    if warm_rate < args.min_hit_rate:
        failures.append(
            f"warm sweep was re-derived, not served: aggregate hit rate "
            f"{warm_rate:.4f} ({warm_hits} hits / {warm_misses} misses) "
            f"< {args.min_hit_rate}"
        )

    stats = {
        "shards": args.shards,
        "count": args.count,
        "seed": args.seed,
        "digest": json.loads(ref_digest),
        "digests_identical": digests_identical,
        "reference_secs": round(ref_secs, 3),
        "cold": {
            "secs": round(cold_secs, 3),
            "hits": cold_hits,
            "misses": cold_misses,
            "hit_rate": round(cold_rate, 4),
        },
        "warm": {
            "secs": round(warm_secs, 3),
            "hits": warm_hits,
            "misses": warm_misses,
            "hit_rate": round(warm_rate, 4),
        },
    }
    Path(args.out).write_text(json.dumps(stats, indent=2) + "\n")
    print(
        f"{args.shards} concurrent shards over one cache dir: digests "
        f"{'identical' if stats['digests_identical'] else 'DIVERGED'}; "
        f"cold {cold_secs:.1f}s ({cold_rate:.0%} hits) -> warm "
        f"{warm_secs:.1f}s ({warm_rate:.1%} hits)"
    )
    if failures:
        sys.exit("\n".join(failures))


if __name__ == "__main__":
    main()
