#!/usr/bin/env python3
"""Observability gate: the obs layer must observe, export, and cost ~nothing.

Three phases, all against binaries the workspace already builds:

1. **Metrics exposition** — reruns ``serve_loadtest`` with
   ``ASKIT_METRICS_OUT`` set, so the example writes the exact ``/metrics``
   body it scraped mid-run. The gate re-parses that exposition here (an
   independent parser from the workspace's own) and requires the
   per-model latency quantiles plus the cache, wire, breaker, and
   failover series.
2. **Trace export** — reruns ``chaos_sweep`` with ``--trace-out``: the
   emitted Chrome-trace JSON must load, carry complete events
   (``"ph": "X"``), and include ``wire_attempt`` spans on *both*
   endpoints — proof the trace followed a request across a failover.
3. **Overhead** — runs ``engine_overhead`` with ``ASKIT_OBS=on``, which
   makes the bench itself time alternating in-process rounds of the warm
   probe loop: obs-off (no sink, untraced requests) vs obs-on (a sampled
   TraceSink installed and a trace id on every request, so each probe
   pays the full span fast path). The bench reports the best round of
   each mode as ``obs_overhead``; its ``overhead_pct`` must stay under
   ``--max-overhead-pct`` (default 5%). The comparison is in-process
   because separate cargo invocations jitter by ±10% on shared runners —
   more than the effect being gated.

The observed numbers land in ``BENCH_obs_overhead.json`` for the trends
dashboard.

Usage:
    python3 tools/obs_gate.py [--problems N] [--runs N]
                              [--max-overhead-pct PCT] [--out PATH]
                              [--skip-loadtest] [--skip-trace]
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from shared_cache_gate import run

REQUIRED_SERIES = [
    "askit_request_latency_us",
    "askit_cache_hits_total",
    "askit_cache_misses_total",
    "askit_wire_attempts_total",
    "askit_breaker_state",
    "askit_http_failovers_total",
    "askit_http_retries_total",
]


def parse_exposition(text):
    """Prometheus text exposition -> list of (name, labels_dict, value).

    Deliberately a second implementation: the serve_loadtest example
    already validates the body with ``askit_obs``'s parser, so parsing it
    again here catches the case where exposition and parser share a bug.
    """
    samples = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            sys.exit(f"exposition line {lineno} has no value: {line!r}")
        try:
            value = float(value_part)
        except ValueError:
            sys.exit(f"exposition line {lineno} value not a float: {line!r}")
        labels = {}
        name = name_part
        if "{" in name_part:
            if not name_part.endswith("}"):
                sys.exit(f"exposition line {lineno} has unclosed labels: {line!r}")
            name, _, label_body = name_part[:-1].partition("{")
            for pair in filter(None, label_body.split(",")):
                key, eq, raw = pair.partition("=")
                if eq != "=" or not (raw.startswith('"') and raw.endswith('"')):
                    sys.exit(f"exposition line {lineno} has a bad label: {line!r}")
                labels[key] = raw[1:-1]
        samples.append((name, labels, value))
    return samples


def gate_exposition(workdir, failures):
    """Phase 1: serve_loadtest's mid-run /metrics scrape must be complete."""
    metrics_path = workdir / "metrics.prom"
    env = dict(os.environ, ASKIT_METRICS_OUT=str(metrics_path))
    run(
        [
            "cargo", "run", "--release", "--features", "serve",
            "--example", "serve_loadtest",
        ],
        "serve_loadtest (metrics scrape)",
        env=env,
    )
    if not metrics_path.exists():
        sys.exit("serve_loadtest did not write ASKIT_METRICS_OUT")
    samples = parse_exposition(metrics_path.read_text())
    names = {name for name, _, _ in samples}
    for series in REQUIRED_SERIES:
        if series not in names:
            failures.append(f"/metrics is missing the {series} series")
    quantiles = {
        labels.get("quantile")
        for name, labels, _ in samples
        if name == "askit_request_latency_us" and "model" in labels
    }
    for q in ("0.5", "0.9", "0.99"):
        if q not in quantiles:
            failures.append(f"per-model latency quantile {q} missing from /metrics")
    return {"series": len(samples), "names": len(names)}


def gate_trace_export(workdir, failures):
    """Phase 2: chaos_sweep --trace-out must yield a cross-endpoint trace."""
    trace_path = workdir / "chaos_trace.json"
    run(
        [
            "cargo", "run", "--release", "--features", "http",
            "--example", "chaos_sweep", "--", "--trace-out", str(trace_path),
        ],
        "chaos_sweep (trace export)",
    )
    if not trace_path.exists():
        sys.exit("chaos_sweep did not write --trace-out")
    trace = json.loads(trace_path.read_text())
    events = trace.get("traceEvents", [])
    if not events:
        failures.append("trace export has no traceEvents")
    attempts = [
        e for e in events
        if e.get("name") == "wire_attempt" and e.get("ph") == "X"
    ]
    endpoints = {e.get("args", {}).get("endpoint") for e in attempts}
    if not {"0", "1"} <= endpoints:
        failures.append(
            f"wire_attempt spans cover endpoints {sorted(endpoints)}, "
            f"not both 0 and 1 — the trace lost the failover"
        )
    instants = {e["name"] for e in events if e.get("ph") == "i"}
    for expected in ("failover", "breaker", "hedge_win", "deadline_shed"):
        if expected not in instants:
            failures.append(f"trace export has no {expected} instant event")
    return {
        "events": len(events),
        "wire_attempts": len(attempts),
        "endpoints": sorted(e for e in endpoints if e is not None),
    }


def gate_overhead(args, failures):
    """Phase 3: obs-on must stay within --max-overhead-pct of obs-off."""
    env = dict(
        os.environ,
        ASKIT_BENCH_PROBLEMS=str(args.problems),
        ASKIT_OBS="on",
        ASKIT_OBS_ROUNDS=str(args.runs),
    )
    proc = run(
        ["cargo", "bench", "--bench", "engine_overhead"],
        "engine_overhead (obs comparison)",
        env=env,
    )
    bench = None
    for line in proc.stdout.splitlines():
        if line.startswith('{"bench": "engine_overhead"'):
            bench = json.loads(line)
    if bench is None:
        sys.exit("engine_overhead printed no JSON line")
    overhead = bench.get("obs_overhead")
    if not isinstance(overhead, dict):
        sys.exit(f"engine_overhead reported no obs_overhead section: {bench}")
    pct = overhead["overhead_pct"]
    if pct > args.max_overhead_pct:
        failures.append(
            f"obs-on warm probes are {pct:.1f}% slower than obs-off "
            f"({overhead['off']['problems_per_sec']:.0f}/s -> "
            f"{overhead['on']['problems_per_sec']:.0f}/s; "
            f"ceiling {args.max_overhead_pct}%)"
        )
    return {
        "problems": args.problems,
        "rounds": overhead["rounds"],
        "sample_one_in": overhead["sample_one_in"],
        "off_problems_per_sec": round(overhead["off"]["problems_per_sec"]),
        "on_problems_per_sec": round(overhead["on"]["problems_per_sec"]),
        "overhead_pct": pct,
        "ceiling_pct": args.max_overhead_pct,
        "bench": bench,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--problems",
        type=int,
        default=100_000,
        help="sweep size for the overhead comparison (default 100000)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=5,
        help="alternating off/on rounds inside the bench; best-of wins "
        "(default 5)",
    )
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=5.0,
        help="ceiling on obs-on vs obs-off pooled throughput loss",
    )
    parser.add_argument("--out", default="BENCH_obs_overhead.json")
    parser.add_argument(
        "--skip-loadtest",
        action="store_true",
        help="skip the serve_loadtest exposition phase",
    )
    parser.add_argument(
        "--skip-trace",
        action="store_true",
        help="skip the chaos_sweep trace-export phase",
    )
    args = parser.parse_args()

    started = time.monotonic()
    failures = []
    stats = {}
    with tempfile.TemporaryDirectory(prefix="obs-gate-") as tmp:
        workdir = Path(tmp)
        if not args.skip_loadtest:
            stats["exposition"] = gate_exposition(workdir, failures)
        if not args.skip_trace:
            stats["trace_export"] = gate_trace_export(workdir, failures)
        stats["overhead"] = gate_overhead(args, failures)
    stats["elapsed_secs"] = round(time.monotonic() - started, 3)

    Path(args.out).write_text(json.dumps(stats, indent=2) + "\n")
    overhead = stats["overhead"]
    exposition = stats.get("exposition", {})
    trace = stats.get("trace_export", {})
    print(
        f"exposition: {exposition.get('series', 'skipped')} samples; "
        f"trace export: {trace.get('wire_attempts', 'skipped')} wire attempts "
        f"over endpoints {trace.get('endpoints', '-')}; "
        f"overhead: obs-off {overhead['off_problems_per_sec']}/s vs obs-on "
        f"{overhead['on_problems_per_sec']}/s "
        f"({overhead['overhead_pct']:+.1f}%, ceiling {overhead['ceiling_pct']}%)"
    )
    if failures:
        sys.exit("\n".join(failures))


if __name__ == "__main__":
    main()
